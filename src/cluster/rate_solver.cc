#include "cluster/rate_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"

namespace dagperf {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Exact water-fill: the per-task level L such that
///   sum_i n_i * min(want_i, L) = capacity,
/// or +infinity when the total want fits under the capacity.
double WaterFill(double capacity, const std::vector<double>& populations,
                 const std::vector<double>& wants) {
  DAGPERF_CHECK(populations.size() == wants.size());
  double total = 0.0;
  for (size_t i = 0; i < wants.size(); ++i) {
    total += populations[i] * std::min(wants[i], kInf);
    if (total == kInf) break;
  }
  if (total <= capacity) return kInf;

  // Raise L through the sorted wants until the running sum hits capacity.
  // Thread-local scratch: the solver sits on the estimation hot path, where
  // warm calls must not touch the heap (see tests/alloc_regression_test.cc).
  static thread_local std::vector<size_t> order;
  order.resize(wants.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return wants[a] < wants[b]; });

  double consumed = 0.0;   // By flows already below the level.
  double above_weight = 0.0;
  for (size_t i : order) above_weight += populations[i];
  for (size_t k = 0; k < order.size(); ++k) {
    const size_t i = order[k];
    // Candidate: level between wants[order[k-1]] and wants[i].
    const double level = (capacity - consumed) / above_weight;
    if (level <= wants[i]) return std::max(level, 0.0);
    consumed += populations[i] * wants[i];
    above_weight -= populations[i];
  }
  // All wants below capacity — contradiction with total > capacity.
  DAGPERF_CHECK_MSG(false, "water-fill found no level");
  return 0.0;
}

}  // namespace

/// Iterative water-filling for per-resource equal-bandwidth max-min
/// fairness with per-task rate caps.
///
/// Equilibrium conditions (the paper's resource usage model, §III-A2/3):
///  * every saturated resource r has a per-task bandwidth level L_r such
///    that each user draws min(its demand-limited draw, L_r) and the total
///    equals the capacity;
///  * unsaturated resources impose no constraint (L_r = +inf);
///  * each flow's rate is v_f = min(capv_f, min_r L_r / d_fr).
///
/// A flow's *want* on r — what it would draw if r imposed no limit — is
/// d_fr * min(capv_f, min_{r' != r} L_r' / d_fr'). Gauss-Seidel iteration:
/// re-water-fill each resource's level given current wants until the rates
/// are stable. The iteration is monotone-contractive in practice and the
/// exactness of each water-fill makes fixed points exact equilibria;
/// convergence is verified by the property-test suite.
std::vector<FlowRate> SolveRates(const ResourceVector& capacities,
                                 const std::vector<Flow>& flows) {
  std::vector<FlowRate> out;
  SolveRates(capacities, flows, &out);
  return out;
}

void SolveRates(const ResourceVector& capacities, const std::vector<Flow>& flows,
                std::vector<FlowRate>* result) {
  const size_t n = flows.size();
  std::vector<FlowRate>& out = *result;
  out.assign(n, FlowRate{});

  // Thread-local scratch, capacity reused across calls: a warm solve (same
  // or smaller flow count) performs no heap allocation. Values are fully
  // re-assigned below, so reuse never changes the arithmetic.
  struct Scratch {
    std::vector<double> cap_rate;
    std::vector<unsigned char> trivial;
    std::vector<double> prev_rates;
    std::vector<double> populations;
    std::vector<double> wants;
    std::vector<size_t> users;
  };
  static thread_local Scratch scratch;
  std::vector<double>& cap_rate = scratch.cap_rate;
  std::vector<unsigned char>& trivial = scratch.trivial;
  cap_rate.assign(n, kInf);  // min_r per_task_cap_r / d_fr.
  trivial.assign(n, 0);
  for (size_t f = 0; f < n; ++f) {
    DAGPERF_CHECK(flows[f].population > 0);
    bool any = false;
    for (int r = 0; r < kNumResources; ++r) {
      const double d = flows[f].demand.values[r];
      if (d <= 0) continue;
      any = true;
      DAGPERF_CHECK_MSG(capacities.values[r] > 0,
                        "demand on a zero-capacity resource");
      const double task_cap = flows[f].per_task_cap.values[r];
      if (task_cap > 0) cap_rate[f] = std::min(cap_rate[f], task_cap / d);
    }
    if (!any) {
      trivial[f] = 1;
      out[f].progress_rate = kInf;
      out[f].bottleneck = -1;
    }
  }

  std::array<double, kNumResources> level;
  level.fill(kInf);

  // Rate of flow f under the current levels, optionally excluding one
  // resource's constraint (for want computation) and reporting the binding.
  const auto rate_under = [&](size_t f, int exclude, int* binding) -> double {
    double v = cap_rate[f];
    int b = -1;
    for (int r = 0; r < kNumResources; ++r) {
      if (r == exclude) continue;
      const double d = flows[f].demand.values[r];
      if (d <= 0) continue;
      const double limit = std::min(level[r], capacities.values[r]) / d;
      if (limit < v) {
        v = limit;
        b = r;
      }
    }
    if (binding != nullptr) *binding = b;
    return v;
  };

  constexpr int kMaxIterations = 300;
  constexpr double kTolerance = 1e-13;
  std::vector<double>& prev_rates = scratch.prev_rates;
  prev_rates.assign(n, 0.0);
  std::vector<double>& populations = scratch.populations;
  std::vector<double>& wants = scratch.wants;
  std::vector<size_t>& users = scratch.users;
  for (int iter = 0; iter < kMaxIterations; ++iter) {
    for (int r = 0; r < kNumResources; ++r) {
      if (capacities.values[r] <= 0) continue;
      populations.clear();
      wants.clear();
      users.clear();
      for (size_t f = 0; f < n; ++f) {
        if (trivial[f]) continue;
        const double d = flows[f].demand.values[r];
        if (d <= 0) continue;
        double want = d * rate_under(f, r, nullptr);
        const double task_cap = flows[f].per_task_cap.values[r];
        if (task_cap > 0) want = std::min(want, task_cap);
        populations.push_back(flows[f].population);
        wants.push_back(want);
        users.push_back(f);
      }
      level[r] = users.empty() ? kInf
                               : WaterFill(capacities.values[r], populations, wants);
    }

    double delta = 0.0;
    for (size_t f = 0; f < n; ++f) {
      if (trivial[f]) continue;
      const double v = rate_under(f, -1, nullptr);
      delta = std::max(delta, std::fabs(v - prev_rates[f]) /
                                  std::max(std::fabs(v), 1e-300));
      prev_rates[f] = v;
    }
    if (delta < kTolerance) break;
  }

  // Equal-share denominator per resource, for reporting the offered share
  // of unsaturated resources (the paper's mu_X(Delta) * theta_X).
  std::array<double, kNumResources> demanders;
  demanders.fill(0.0);
  for (size_t f = 0; f < n; ++f) {
    if (trivial[f]) continue;
    for (int r = 0; r < kNumResources; ++r) {
      if (flows[f].demand.values[r] > 0) demanders[r] += flows[f].population;
    }
  }

  for (size_t f = 0; f < n; ++f) {
    if (trivial[f]) continue;
    int binding = -1;
    const double v = rate_under(f, -1, &binding);
    DAGPERF_CHECK_MSG(v < kInf, "unbounded rate for a demanding flow");
    out[f].progress_rate = v;
    out[f].bottleneck = binding;
    if (binding == -1) {
      // The flow's own per-task cap binds: report the capped resource.
      for (int r = 0; r < kNumResources; ++r) {
        const double d = flows[f].demand.values[r];
        const double task_cap = flows[f].per_task_cap.values[r];
        if (d > 0 && task_cap > 0 && task_cap / d <= cap_rate[f] * (1 + 1e-12)) {
          out[f].bottleneck = r;
          break;
        }
      }
    }
    // Offered per-task bandwidth: the water-fill level when the resource is
    // saturated, else the equal split among its demanders (the paper's
    // mu_X(Delta) * theta_X), clipped by the per-task cap and never below
    // actual consumption.
    for (int r = 0; r < kNumResources; ++r) {
      const double d = flows[f].demand.values[r];
      if (d <= 0) continue;
      double offer = level[r] < kInf ? level[r]
                                     : capacities.values[r] / demanders[r];
      offer = std::min(offer, capacities.values[r]);
      const double task_cap = flows[f].per_task_cap.values[r];
      if (task_cap > 0) offer = std::min(offer, task_cap);
      offer = std::max(offer, d * v);
      out[f].offered.values[r] = offer;
    }
  }
}

ResourceVector SolutionUtilization(const ResourceVector& capacities,
                                   const std::vector<Flow>& flows,
                                   const std::vector<FlowRate>& rates) {
  DAGPERF_CHECK(flows.size() == rates.size());
  ResourceVector used;
  for (size_t f = 0; f < flows.size(); ++f) {
    if (rates[f].progress_rate == kInf) continue;
    for (int r = 0; r < kNumResources; ++r) {
      used.values[r] +=
          flows[f].population * flows[f].demand.values[r] * rates[f].progress_rate;
    }
  }
  ResourceVector util;
  for (int r = 0; r < kNumResources; ++r) {
    util.values[r] =
        capacities.values[r] > 0 ? used.values[r] / capacities.values[r] : 0.0;
  }
  return util;
}

}  // namespace dagperf
