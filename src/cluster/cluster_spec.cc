#include "cluster/cluster_spec.h"

namespace dagperf {

ResourceVector NodeSpec::Capacities() const {
  ResourceVector caps;
  caps[Resource::kDiskRead] = disk_read_bw.bytes_per_sec();
  caps[Resource::kDiskWrite] = disk_write_bw.bytes_per_sec();
  caps[Resource::kNetwork] = network_bw.bytes_per_sec();
  caps[Resource::kCpu] = static_cast<double>(cores);
  return caps;
}

ClusterSpec ClusterSpec::PaperCluster() {
  ClusterSpec spec;
  spec.node.cores = 6;
  spec.node.disk_read_bw = Rate::MBps(240);   // 2 drives x ~120 MB/s sequential.
  spec.node.disk_write_bw = Rate::MBps(240);
  spec.node.network_bw = Rate::Gbps(1);       // 125 MB/s.
  spec.node.memory = Bytes::FromGB(32);
  spec.num_nodes = 11;
  return spec;
}

Status ClusterSpec::Validate() const {
  if (num_nodes <= 0) return Status::InvalidArgument("num_nodes must be positive");
  if (node.cores <= 0) return Status::InvalidArgument("cores must be positive");
  if (node.disk_read_bw.bytes_per_sec() <= 0 ||
      node.disk_write_bw.bytes_per_sec() <= 0 ||
      node.network_bw.bytes_per_sec() <= 0) {
    return Status::InvalidArgument("bandwidths must be positive");
  }
  if (node.memory.value() <= 0) {
    return Status::InvalidArgument("memory must be positive");
  }
  return Status::Ok();
}

}  // namespace dagperf
