#ifndef DAGPERF_CLUSTER_RESOURCES_H_
#define DAGPERF_CLUSTER_RESOURCES_H_

#include <array>
#include <string>

#include "common/units.h"

namespace dagperf {

/// The preemptable/schedulable resources of a worker node, mirroring the
/// paper's operation taxonomy (read / transfer / compute / write):
///
///  * kDiskRead / kDiskWrite — aggregate disk bandwidth; always preemptable
///    (fair-shared among concurrent tasks).
///  * kNetwork — NIC bandwidth; always preemptable.
///  * kCpu — measured in cores. Preemptable only once the number of
///    compute-demanding tasks exceeds the core count; below saturation each
///    task simply owns one core (enforced by a per-task cap of 1 core).
///
/// Demand amounts are expressed in *resource units*: bytes for the three I/O
/// resources and core-seconds for CPU (a job profile converts "process D
/// bytes at throughput theta per core" into D / theta core-seconds), so the
/// allocation math is uniform across resource kinds.
enum class Resource : int {
  kDiskRead = 0,
  kDiskWrite = 1,
  kNetwork = 2,
  kCpu = 3,
};

inline constexpr int kNumResources = 4;

inline constexpr std::array<Resource, kNumResources> kAllResources = {
    Resource::kDiskRead, Resource::kDiskWrite, Resource::kNetwork, Resource::kCpu};

const char* ResourceName(Resource r);

/// A per-resource vector of doubles (capacities, demands, rates, ...).
struct ResourceVector {
  std::array<double, kNumResources> values{};

  double& operator[](Resource r) { return values[static_cast<int>(r)]; }
  double operator[](Resource r) const { return values[static_cast<int>(r)]; }

  ResourceVector operator+(const ResourceVector& o) const;
  ResourceVector operator*(double s) const;
  bool operator==(const ResourceVector&) const = default;

  std::string ToString() const;
};

/// Scheduling-time demand of one task, the two dimensions YARN's Dominant
/// Resource Fairness operates over.
struct SlotDemand {
  double vcores = 1.0;
  Bytes memory = Bytes::FromGB(2.0);

  bool operator==(const SlotDemand&) const = default;
};

}  // namespace dagperf

#endif  // DAGPERF_CLUSTER_RESOURCES_H_
