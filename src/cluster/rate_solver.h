#ifndef DAGPERF_CLUSTER_RATE_SOLVER_H_
#define DAGPERF_CLUSTER_RATE_SOLVER_H_

#include <vector>

#include "cluster/resources.h"

namespace dagperf {

/// A class of identical concurrent tasks ("flow") competing for one node's
/// resources.
///
/// `demand[r]` is the amount of resource r (bytes, or core-seconds for CPU)
/// consumed per unit of task progress; a task progressing at rate v uses
/// resource r at rate demand[r] * v. `per_task_cap[r]` bounds one task's
/// usage rate of r regardless of contention — the library uses it to encode
/// the paper's CPU-preemptability rule: a (single-threaded) task can use at
/// most one core, so CPU only becomes a shared bottleneck once the demanding
/// task population exceeds the core count.
struct Flow {
  /// Number of concurrent tasks in this class. May be fractional: the
  /// analytical models reason about average task populations per node.
  double population = 1.0;
  ResourceVector demand;
  /// 0 entries mean "no per-task cap" (the device capacity still applies).
  ResourceVector per_task_cap;
};

/// Per-flow solution of the sharing problem.
struct FlowRate {
  /// Task progress rate (progress units per second). Infinity when the flow
  /// demands nothing.
  double progress_rate = 0.0;
  /// The resource that froze this flow (its bottleneck), or -1 when the flow
  /// is limited only by its own per-task cap / demands nothing.
  int bottleneck = -1;
  /// Per-task share each demanded resource offered this flow when it froze
  /// (equal-share level capped by the per-task cap). On the bottleneck the
  /// flow consumes all of it; elsewhere it runs below the offer — the
  /// utilisation p_X < 1 of the paper's §III-A3.
  ResourceVector offered;
};

/// Computes the equilibrium progress rate of each flow under per-resource
/// equal-bandwidth max-min fair sharing with surplus redistribution.
///
/// Semantics (matching the paper's resource usage model, §III-A2):
///  * Every saturated resource is divided equally per task among the tasks
///    that still demand it; tasks bottlenecked elsewhere use less than their
///    share and the surplus is redistributed (progressive filling).
///  * A flow's progress rate is set by its most constraining resource:
///    v_f = min_r alloc_fr / demand_fr — the "max" in the BOE formula.
///
/// The algorithm freezes flows in increasing order of achievable rate, which
/// yields the exact equilibrium in at most F iterations (F = #flows).
///
/// Returned rates are positive, or +infinity for demand-free flows.
std::vector<FlowRate> SolveRates(const ResourceVector& capacities,
                                 const std::vector<Flow>& flows);

/// Allocation-lean variant for hot loops: writes the solution into `*out`
/// (resized to flows.size(), capacity reused). Identical arithmetic.
void SolveRates(const ResourceVector& capacities, const std::vector<Flow>& flows,
                std::vector<FlowRate>* out);

/// Convenience: the utilization of each resource implied by a solution
/// (consumed / capacity, 0 when capacity is 0).
ResourceVector SolutionUtilization(const ResourceVector& capacities,
                                   const std::vector<Flow>& flows,
                                   const std::vector<FlowRate>& rates);

}  // namespace dagperf

#endif  // DAGPERF_CLUSTER_RATE_SOLVER_H_
