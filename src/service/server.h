#ifndef DAGPERF_SERVICE_SERVER_H_
#define DAGPERF_SERVICE_SERVER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <istream>
#include <ostream>

#include "common/cancel.h"
#include "service/service.h"

namespace dagperf {

/// Transports for the NDJSON protocol (service/protocol.h): a stream pump
/// for stdio / pipes / tests, and a localhost TCP server. Both stop on
/// client EOF, after handling a `drain` request, or — the TCP server — when
/// an external stop token fires (the `dagperf serve` SIGTERM path), in which
/// case the listener closes first and in-flight requests get a bounded grace
/// period to finish before being cancelled with UNAVAILABLE{retryable}.

/// Longest request line either transport buffers before answering
/// INVALID_ARGUMENT and discarding to the next newline — an unauthenticated
/// peer must not be able to grow a buffer without bound.
inline constexpr std::size_t kDefaultMaxLineBytes = 1 << 20;  // 1 MiB

struct ServeSummary {
  std::uint64_t requests = 0;
  /// True when the loop ended because a drain verb was served (as opposed to
  /// the client closing the stream).
  bool drained = false;
};

/// Pumps request lines from `in` to response lines on `out` until EOF or
/// drain. Responses are flushed per line so a pipe peer can pipeline without
/// deadlocking on buffering. Blank lines are ignored; lines longer than
/// `max_line_bytes` are answered with INVALID_ARGUMENT and skipped.
ServeSummary ServeLines(EstimationService& service, std::istream& in,
                        std::ostream& out,
                        std::size_t max_line_bytes = kDefaultMaxLineBytes);

struct TcpServerOptions {
  /// Port to bind on 127.0.0.1; 0 asks the kernel for a free port.
  int port = 0;

  /// Called once with the actually-bound port before the first accept —
  /// how a test (or a parent process) learns a kernel-assigned port.
  std::function<void(int)> on_listen;

  /// Stop accepting after this many connections (existing ones finish);
  /// 0 = until drain/stop. Each connection is served on its own thread —
  /// requests from different connections are concurrently in flight in the
  /// service, and the protocol stays pipelined within a connection.
  int max_connections = 0;

  /// Per-connection request line cap (see kDefaultMaxLineBytes).
  std::size_t max_line_bytes = kDefaultMaxLineBytes;

  /// Close a connection that has sent part of a line and then stalled for
  /// this long (seconds) — a torn frame must not hold its buffer and thread
  /// forever. 0 disables. Idle *between* requests is always allowed.
  double read_idle_timeout_seconds = 0.0;

  /// External shutdown signal (`dagperf serve` fires it from SIGTERM /
  /// SIGINT). When it fires: the listener closes first, then the service
  /// drains with `drain_grace_seconds`, then remaining connections unwind.
  CancelToken stop;

  /// Grace passed to EstimationService::Shutdown when `stop` fires: how long
  /// in-flight requests may keep running before their tokens are fired and
  /// their responses become UNAVAILABLE{retryable}.
  double drain_grace_seconds = 5.0;
};

struct TcpServeSummary {
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;
  /// A drain verb ended the serve loop.
  bool drained = false;
  /// The external stop token ended the serve loop.
  bool stopped = false;
  /// Filled when `stopped` (the bounded-drain outcome).
  EstimationService::ShutdownReport shutdown;
};

/// Runs the protocol over TCP on localhost until a drain verb, the
/// connection limit, or the stop token. Every accepted connection is served
/// on its own thread; all are joined (cleanly unwound) before this returns.
/// An error Status means the listening socket could not be set up.
Result<TcpServeSummary> ServeTcp(EstimationService& service,
                                 const TcpServerOptions& options);

}  // namespace dagperf

#endif  // DAGPERF_SERVICE_SERVER_H_
