#ifndef DAGPERF_SERVICE_SERVER_H_
#define DAGPERF_SERVICE_SERVER_H_

#include <cstdint>
#include <functional>
#include <istream>
#include <ostream>

#include "service/service.h"

namespace dagperf {

/// Transports for the NDJSON protocol (service/protocol.h): a stream pump
/// for stdio / pipes / tests, and a minimal localhost TCP server. Both stop
/// on client EOF or after handling a `drain` request.

struct ServeSummary {
  std::uint64_t requests = 0;
  /// True when the loop ended because a drain verb was served (as opposed to
  /// the client closing the stream).
  bool drained = false;
};

/// Pumps request lines from `in` to response lines on `out` until EOF or
/// drain. Responses are flushed per line so a pipe peer can pipeline without
/// deadlocking on buffering. Blank lines are ignored.
ServeSummary ServeLines(EstimationService& service, std::istream& in,
                        std::ostream& out);

struct TcpServerOptions {
  /// Port to bind on 127.0.0.1; 0 asks the kernel for a free port.
  int port = 0;

  /// Called once with the actually-bound port before the first accept —
  /// how a test (or a parent process) learns a kernel-assigned port.
  std::function<void(int)> on_listen;

  /// Stop after serving this many connections; 0 = until drain. Connections
  /// are served sequentially (concurrency lives in the service's pool, and
  /// the protocol is pipelined within a connection).
  int max_connections = 0;
};

/// Runs the protocol over TCP on localhost. Returns Ok after a drain verb or
/// the connection limit, an error Status if the socket could not be set up.
Status ServeTcp(EstimationService& service, const TcpServerOptions& options);

}  // namespace dagperf

#endif  // DAGPERF_SERVICE_SERVER_H_
