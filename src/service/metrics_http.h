#ifndef DAGPERF_SERVICE_METRICS_HTTP_H_
#define DAGPERF_SERVICE_METRICS_HTTP_H_

#include <cstdint>
#include <functional>

#include "common/cancel.h"
#include "common/status.h"

namespace dagperf {

/// A deliberately tiny HTTP/1.0 scrape endpoint for Prometheus: GET /metrics
/// answers the text exposition of MetricsRegistry::Default()
/// (obs/prom.h), everything else answers 404/405. One request per
/// connection, connections served serially on the caller's thread — a scrape
/// is one registry snapshot plus one write, and Prometheus polls at
/// multi-second intervals, so there is nothing to parallelise.
///
/// This is NOT a general HTTP server: no keep-alive, no TLS, no auth, bound
/// to 127.0.0.1 only. `dagperf serve --metrics-port` runs it on a side
/// thread next to the NDJSON transport.
struct MetricsHttpOptions {
  /// Port to bind on 127.0.0.1; 0 asks the kernel for a free port.
  int port = 0;

  /// Called once with the actually-bound port before the first accept.
  std::function<void(int)> on_listen;

  /// Invoked before each scrape is rendered — the serve loop uses it to
  /// refresh derived gauges (SLO windows) so the scrape sees live values.
  std::function<void()> before_scrape;

  /// Stop serving when this fires (checked between requests, within one
  /// poll interval).
  CancelToken stop;

  /// Stop after this many answered requests; 0 = until `stop`.
  int max_requests = 0;
};

struct MetricsHttpSummary {
  /// Requests answered, any status code.
  std::uint64_t requests = 0;
  /// The stop token ended the loop (as opposed to max_requests).
  bool stopped = false;
};

/// Blocks serving scrapes until `stop` fires or `max_requests` is reached.
/// An error Status means the listening socket could not be set up.
Result<MetricsHttpSummary> ServeMetricsHttp(const MetricsHttpOptions& options);

}  // namespace dagperf

#endif  // DAGPERF_SERVICE_METRICS_HTTP_H_
