#ifndef DAGPERF_SERVICE_SERVICE_H_
#define DAGPERF_SERVICE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/cluster_spec.h"
#include "common/cancel.h"
#include "common/parallel.h"
#include "common/status.h"
#include "dag/dag_workflow.h"
#include "model/explain.h"
#include "model/state_estimator.h"
#include "model/sweep.h"
#include "model/task_time_cache.h"
#include "model/task_time_source.h"
#include "obs/request_record.h"
#include "obs/slo.h"
#include "resilience/circuit_breaker.h"
#include "resilience/overload.h"
#include "resilience/watchdog.h"
#include "scheduler/drf.h"
#include "service/request.h"
#include "service/tenancy.h"

namespace dagperf {

/// The estimation service — the paper's headline applications (job
/// self-tuning, capacity planning, §I) are recurring streams of estimate
/// queries, not one-shot CLI runs. EstimationService turns the estimator
/// into a long-lived, warm, concurrent entry point: it owns the worker
/// pool, keeps one TaskTimeMemo alive across requests (scoped per
/// registered cluster so hardware changes never alias), holds a registry of
/// loaded workflows and clusters, and admits requests through a bounded
/// queue that sheds load with Status::ResourceExhausted instead of building
/// unbounded backlog. The NDJSON wire protocol on top lives in
/// service/protocol.h; transports (stdio, TCP) in service/server.h.

/// Construction-time service knobs.
struct ServiceOptions {
  /// Worker threads; 0 sizes to the hardware concurrency.
  int threads = 0;

  /// Admission bound: requests submitted while this many are already queued
  /// or executing are shed with Status::ResourceExhausted (clients retry
  /// with backoff — the code is retryable). Must be >= 1.
  int max_queue_depth = 256;

  /// Deadline applied to requests that carry none (0 = unbounded). A serving
  /// deployment should set this: one pathological query must not occupy a
  /// worker forever.
  double default_deadline_seconds = 0.0;

  /// Base estimator knobs (wave model, skew awareness, ...) shared by every
  /// request; per-request fields (budget, attribution) are overlaid.
  EstimatorOptions estimator;

  SchedulerConfig scheduler;

  /// Watchdog backstop: a request still running after `watchdog_multiple x
  /// its deadline` has its token fired and fails with DEADLINE_EXCEEDED —
  /// the hard bound for work stuck somewhere that is not polling its budget.
  /// 0 disables; requests with no deadline are never watched. Must be >= 1
  /// when set (the cooperative check should always win first).
  double watchdog_multiple = 0.0;

  /// Consecutive failures (INTERNAL / DEADLINE_EXCEEDED / UNAVAILABLE) that
  /// open a per-cluster circuit breaker; while open, requests against that
  /// cluster fail fast with UNAVAILABLE{retryable}. 0 disables (library
  /// default — `dagperf serve` turns it on). Breaker state is mirrored to
  /// the obs gauge "resilience.breaker_state[.<cluster>]".
  int breaker_failure_threshold = 0;

  /// Cooldown before an open breaker probes again.
  double breaker_open_seconds = 1.0;

  /// Serving objectives the SLO tracker burns against (inert by default —
  /// windows still fill, burn rates stay 0). `dagperf serve` maps
  /// --slo-p99-ms / --slo-availability here.
  obs::SloObjectives slo;

  /// Flight-recorder geometry (ring capacity, exemplar slots).
  obs::FlightRecorderOptions flight;

  /// Overload protection (resilience/overload.h): when > 0, a CoDel-style
  /// controller watches queue sojourn against this target (ms) and walks
  /// the brownout ladder — shedding expensive cold work with retryable
  /// RESOURCE_EXHAUSTED + retry_after_ms, then degrading answers. 0
  /// disables the controller entirely (library default — `dagperf serve`
  /// maps --overload-target-ms here).
  double overload_target_sojourn_ms = 0.0;

  /// Remaining controller knobs (interval, escalate/recover counts, retry
  /// floor); its target_sojourn_ms is overridden by the field above.
  resilience::OverloadOptions overload;

  /// Cold requests whose flow has at least this many jobs classify as
  /// "expensive" for cost-aware shedding (a fast pre-estimate: the
  /// state-count and task-time query volume both scale with job count).
  int expensive_job_threshold = 12;

  /// max_states cap applied to every estimate at brownout level >= 2; a
  /// capped-out estimate fails with retryable RESOURCE_EXHAUSTED (never
  /// kInternal, so brownout can't open the cluster breaker).
  int brownout_max_states = 2048;

  /// Warm-state snapshot file (model/snapshot.h). When set, Drain/Shutdown
  /// serialise the memo + prefix-checkpoint store here immediately before
  /// the warm-state reset, so a restarted shard restores its warmth with
  /// LoadSnapshot instead of serving a cold-cache latency cliff. `dagperf
  /// serve --snapshot-dir` maps here (plus periodic saves).
  std::string snapshot_path;

  /// Identity of this process within a multi-shard fleet (router/router.h);
  /// echoed in the stats verb so the router's health probes and stats
  /// fan-out can attribute responses. "" outside shard mode. `dagperf serve
  /// --shard-id` maps here.
  std::string shard_id;

  /// In-flight estimate coalescing (singleflight). Concurrent requests for
  /// the same value — same workflow bytes, cluster bits, node override, and
  /// explain flag, the exact fingerprint the prefix-checkpoint store keys
  /// on — attach to the one computation already running instead of queueing
  /// their own; every attached request receives a copy of the identical
  /// WorkflowEstimate, tagged `coalesced`. Leader failures propagate
  /// per-waiter: a cancelled/expired leader resolves live waiters with
  /// retryable UNAVAILABLE, deterministic errors propagate as-is, and a
  /// waiter whose own budget fired gets its own status. Disabled here it is
  /// off for every request; per-request opt-out via ServiceRequest::coalesce.
  bool coalescing = true;

  /// Service-wide default for sweep straggler hedging (SweepHedgeOptions);
  /// applied to every sweep that does not carry its own hedge options. Off
  /// by default — hedging spends duplicate work for tail latency.
  SweepHedgeOptions hedge;
};

/// Request/response types (ServiceRequest, WorkflowEstimate,
/// ServiceSweepRequest, ServiceSweepResult) and the 0.8 unified
/// EstimateRequest builder + EstimateResponse union live in
/// service/request.h, included above.

/// Monotonic service counters plus the memo cache's cumulative behaviour.
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  /// Requests rejected at admission (queue full).
  std::uint64_t shed = 0;
  /// Requests whose budget expired while they sat in the queue.
  std::uint64_t expired_in_queue = 0;
  /// Requests the watchdog had to cancel (hard wall-clock bound).
  std::uint64_t watchdog_fired = 0;
  /// How many times the warm state (memo + checkpoints) was reset — rates
  /// computed from the cache stats below never span a reset: both are read
  /// inside the same epoch. Drain/Shutdown bump this once.
  std::uint64_t stats_epoch = 0;
  int queue_depth = 0;
  bool draining = false;
  /// Shard-mode readiness: true while the service is accepting work
  /// (= !draining). The router's health probes readmit a restarted shard
  /// only once its stats report ready.
  bool ready = true;
  /// ServiceOptions::shard_id, echoed for fleet attribution.
  std::string shard_id;
  int workflows = 0;
  int clusters = 0;
  TaskTimeMemo::Stats cache;
  /// The cross-request prefix-checkpoint store (incremental re-estimation).
  PrefixCheckpointStore::Stats incremental;
  /// Per-tenant accounting (stats verb "tenants" array), name-ordered.
  std::vector<TenantRegistry::TenantStats> tenants;
  /// Brownout ladder level right now (0 = healthy; absent controller = 0).
  int overload_level = 0;
  /// Requests the overload controller shed (subset of `shed`).
  std::uint64_t overload_shed = 0;
  /// Singleflight coalescing: computations whose answer was fanned out to
  /// at least one attached waiter, and requests served by attaching
  /// (`coalesce_attached` requests ran zero estimator states). Completed
  /// work this epoch that actually computed =
  /// completed - coalesce_attached.
  std::uint64_t coalesce_leaders = 0;
  std::uint64_t coalesce_attached = 0;
};

class EstimationService {
 public:
  explicit EstimationService(ServiceOptions options = {});
  /// Drains (waits for in-flight work) before tearing the pool down.
  ~EstimationService();

  EstimationService(const EstimationService&) = delete;
  EstimationService& operator=(const EstimationService&) = delete;

  /// Registers a workflow under `name` after running it through the
  /// validation firewall (dag/validate.h) — the service never holds a flow
  /// a request could fail validation on. Re-registering a name replaces it
  /// for future requests; in-flight requests keep the version they resolved.
  Status RegisterWorkflow(const std::string& name, DagWorkflow flow);

  /// Registers a cluster under `name` (validated). Each cluster owns its
  /// BOE model and task-time source; its memo entries are scoped by the
  /// cluster name so differing node hardware never aliases in the cache.
  Status RegisterCluster(const std::string& name, const ClusterSpec& cluster);

  /// Points a registered cluster's task-time queries at a caller-owned
  /// source (profile-driven serving, test doubles). The source must be
  /// thread-safe and deterministic (TaskTimeSource contract) and must
  /// outlive the service. `scope` keys its memo entries; pass a fresh scope
  /// when the source's answers differ from the BOE source's.
  Status RegisterSource(const std::string& cluster, const TaskTimeSource* source,
                        const std::string& scope);

  std::vector<std::string> WorkflowNames() const;

  /// The 0.8 unified entry point: submits one EstimateRequest — a single
  /// estimate or, when the request carries a SweepNodes list, a sweep — and
  /// resolves to the matching half of EstimateResponse. Never blocks on
  /// estimation: the returned future is either already failed (shed /
  /// draining / unresolvable name) or will be fulfilled by a worker. Safe
  /// from any thread. Identical concurrent single-estimate requests are
  /// coalesced onto one computation (ServiceOptions::coalescing).
  std::future<Result<EstimateResponse>> Submit(EstimateRequest request);

  /// Batch convenience over the unified entry point: one future per
  /// request, admitted independently (a full queue sheds the tail, not the
  /// whole batch).
  std::vector<std::future<Result<EstimateResponse>>> SubmitBatch(
      std::vector<EstimateRequest> requests);

  /// Pre-0.8 shim: equivalent to
  /// Submit(EstimateRequest) with the same fields; will be removed in 0.9.
  [[deprecated("use Submit(EstimateRequest) — the 0.8 unified submission API")]]
  std::future<Result<WorkflowEstimate>> Submit(ServiceRequest request);

  /// Pre-0.8 shim over the unified batch path; will be removed in 0.9.
  [[deprecated("use SubmitBatch(std::vector<EstimateRequest>)")]]
  std::vector<std::future<Result<WorkflowEstimate>>> SubmitBatch(
      std::vector<ServiceRequest> requests);

  /// Pre-0.8 shim: equivalent to Submit(EstimateRequest::For(...)
  /// .SweepNodes(...)); will be removed in 0.9. A sweep counts as one
  /// admission-queue slot; candidates fan out across the same pool and
  /// share the persistent memo.
  [[deprecated("use Submit(EstimateRequest) with SweepNodes")]]
  std::future<Result<ServiceSweepResult>> SubmitSweep(ServiceSweepRequest request);

  /// Graceful shutdown: stops admitting (subsequent Submits fail with
  /// FailedPrecondition), waits for every queued and in-flight request to
  /// fulfil its future, and returns how many were in flight when the drain
  /// began. Idempotent.
  Result<int> Drain();

  /// What a bounded shutdown observed (the `dagperf serve` SIGTERM path).
  struct ShutdownReport {
    /// Queue depth when shutdown began.
    int inflight_at_shutdown = 0;
    /// Requests still running when the grace period expired — their tokens
    /// were fired and their futures carry UNAVAILABLE{retryable}.
    int cancelled = 0;
    double waited_seconds = 0.0;
    /// Everything drained inside the grace period; nothing was cancelled.
    bool graceful = false;
  };

  /// Drain with a bound: stops admission, waits up to `grace_seconds` for
  /// in-flight requests to finish on their own, then fires the service-wide
  /// shutdown token — every remaining request unwinds cooperatively and its
  /// future resolves to UNAVAILABLE{retryable} ("retry against a healthy
  /// server"). Every submitted future is fulfilled either way; the pool is
  /// quiesced on return. Idempotent.
  ShutdownReport Shutdown(double grace_seconds);

  bool draining() const { return draining_.load(std::memory_order_acquire); }

  ServiceStats Stats() const;

  /// The cross-request memo (exposed for benchmarks/tests).
  TaskTimeMemo& memo() { return memo_; }

  /// The cross-request prefix-checkpoint store (exposed for
  /// benchmarks/tests). Entries are scoped like the memo — per cluster
  /// entry — and keyed on the cluster bits themselves, so re-registering a
  /// cluster under the same name can never resume from stale state.
  PrefixCheckpointStore& checkpoints() { return checkpoints_; }

  /// The last-N-requests ring + pinned exemplars + breaker/watchdog events.
  /// Dump it via obs::FlightRecorder::ToJson (the protocol's
  /// {"op":"flightrecorder"} verb and `serve --flight-out` do).
  const obs::FlightRecorder& flight_recorder() const { return flight_; }
  obs::FlightRecorder& flight_recorder() { return flight_; }

  /// Windowed latency/error/deadline telemetry per op class with burn rates
  /// against ServiceOptions::slo.
  const obs::SloTracker& slo_tracker() const { return slo_; }

  /// Clears the warm state (memo + prefix checkpoints), bumps the stats
  /// epoch (ServiceStats::stats_epoch, obs counter "stats.reset_epoch"), and
  /// recomputes the hit-rate gauges from the now-empty stats so no exported
  /// rate ever mixes pre- and post-reset counters. Drain/Shutdown call this
  /// once after the pool quiesces; it is also safe to call on a live service
  /// (requests in flight simply start cold).
  void ResetWarmState();

  /// Serialises the warm state (memo + prefix checkpoints) to `path` via
  /// model/snapshot.h; logs a flight event either way. Drain/Shutdown call
  /// this automatically (before the warm-state reset) when
  /// ServiceOptions::snapshot_path is set; `dagperf serve` also calls it
  /// periodically.
  Status SaveSnapshot(const std::string& path);

  /// Restores warm state from a snapshot file. Corrupt or stale snapshots
  /// are rejected with a diagnostic and the service simply stays cold —
  /// restoring is always optional. Call before serving traffic.
  Status LoadSnapshot(const std::string& path);

  /// Restores only the snapshot entries belonging to `scope` (the
  /// cluster-scope prefix both warm stores key by — see
  /// TaskTimeMemo::Fingerprint). The scope must be registered on this
  /// service (RegisterCluster / RegisterSource): importing a snapshot for a
  /// scope this shard does not own is NOT_FOUND and leaves the warm state
  /// untouched. Like LoadSnapshot, the merge is first-wins: entries already
  /// computed locally are never overwritten by snapshot entries.
  Status LoadSnapshotForScope(const std::string& path,
                              const std::string& scope);

  /// The overload controller; nullptr when overload control is disabled
  /// (ServiceOptions::overload_target_sojourn_ms == 0).
  resilience::OverloadController* overload_controller() {
    return overload_.get();
  }

 private:
  struct ClusterEntry;
  struct CoalesceGroup;

  /// Completion-callback forms of the two execution paths; every public
  /// Submit flavour (unified, shims, batch) is a thin adapter over these.
  /// `done` is invoked exactly once — synchronously for rejected requests,
  /// from a worker (or a coalesced leader's worker) otherwise.
  void SubmitEstimateImpl(ServiceRequest request,
                          std::function<void(Result<WorkflowEstimate>)> done);
  void SubmitSweepImpl(ServiceSweepRequest request,
                       std::function<void(Result<ServiceSweepResult>)> done);

  /// Future adapters over the impls (what the deprecated shims and
  /// SubmitBatch call, so no internal caller touches a deprecated symbol).
  std::future<Result<WorkflowEstimate>> SubmitEstimateFuture(
      ServiceRequest request);
  std::future<Result<ServiceSweepResult>> SubmitSweepFuture(
      ServiceSweepRequest request);

  /// Resolves the request's workflow/cluster under the registry lock.
  Result<std::shared_ptr<const DagWorkflow>> ResolveFlow(
      const std::string& name, const std::shared_ptr<const DagWorkflow>& inline_flow,
      std::string* resolved_name) const;
  Result<std::shared_ptr<const ClusterEntry>> ResolveCluster(
      const std::string& name) const;

  /// Cost classes the fast pre-estimate sorts requests into for overload
  /// shedding: warm work (memo/checkpoint-backed, never shed), cheap cold
  /// work (shed only at the top of the ladder), expensive cold work (first
  /// to go).
  enum class CostClass { kWarm, kCheap, kExpensive };

  /// Fast pre-classification: warm if the (scope, workflow, nodes) triple
  /// completed successfully since the last warm-state reset, expensive if
  /// cold with >= expensive_job_threshold jobs. Resolution failures come out
  /// kCheap — the real error surfaces downstream with full context.
  CostClass ClassifyCost(const ServiceRequest& request) const;

  /// Admission control; on success the caller owns one global queue slot
  /// AND one queued slot of `tenant` (released together). Rejections carry
  /// retry_after_ms. Order: global queue bound, chaos seam, overload
  /// controller, tenant fair share.
  Status Admit(const std::string& tenant, CostClass cost);
  void ReleaseSlot();

  /// retry_after_ms hint for shed responses: the controller's ladder-scaled
  /// hint when overload control is on, else a queue-fullness-scaled base.
  double RetryAfterHintMs() const;

  /// Marks a (scope, workflow, nodes) triple warm after a successful serve.
  void MarkWarm(const std::string& key);
  static std::string WarmKey(const std::string& scope,
                             const std::string& workflow, int nodes);

  /// Runs one estimate on a worker thread (slot already held). `record` (null
  /// while request observability is disarmed) accumulates the request's
  /// attribution: resolved names, states executed, memo behaviour, path
  /// class, breaker interaction. `group` (null when the request is not a
  /// coalesce leader) arms the group-abandon poll: the execution unwinds
  /// once every attached caller has cancelled.
  Result<WorkflowEstimate> Execute(const ServiceRequest& request,
                                   double submit_us, obs::RequestRecord* record,
                                   const std::shared_ptr<CoalesceGroup>& group);

  /// The coalesce key of a single-estimate request: the same value
  /// fingerprint the prefix-checkpoint store keys on (scope + cluster bits +
  /// scheduler + effective estimator options + per-job workflow bytes) plus
  /// the resolved names and the explain flag. Empty when the request cannot
  /// be keyed (unresolvable names — the leader path surfaces the error).
  std::string CoalesceKey(const ServiceRequest& request) const;

  /// Resolves every waiter of a finished leader: each gets its own status
  /// (own budget first, then the leader outcome mapped per-waiter) and its
  /// own accounting; runs on the leader's worker, outside the coalesce lock.
  void FulfillWaiters(const std::shared_ptr<CoalesceGroup>& group,
                      const Result<WorkflowEstimate>& leader_result);

  /// The per-cluster breaker (created lazily); nullptr when breakers are
  /// disabled. Entries are never destroyed while the service lives.
  resilience::CircuitBreaker* BreakerFor(const std::string& cluster);

  /// Rewrites a kCancelled result by cause: shutdown-token fired ->
  /// UNAVAILABLE{retryable}; watchdog fired (caller's token untouched) ->
  /// DEADLINE_EXCEEDED; a genuine caller cancel stays kCancelled. A watchdog
  /// fire is flagged on `record` (when armed) and logged as a flight event.
  Status MapCancelCause(const Status& status, const CancelToken& caller_cancel,
                        obs::RequestRecord* record);

  ServiceOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  TaskTimeMemo memo_;
  PrefixCheckpointStore checkpoints_;

  /// Per-tenant accounting + DRF fair-share admission (created in the ctor
  /// after max_queue_depth is clamped; never null).
  std::unique_ptr<TenantRegistry> tenants_;

  /// CoDel-style overload controller; null when disabled.
  std::unique_ptr<resilience::OverloadController> overload_;

  /// (scope, workflow, nodes) triples that completed successfully since the
  /// last warm-state reset — the "warm work" set brownout never sheds.
  mutable std::mutex warm_mutex_;
  std::unordered_set<std::string> warm_keys_;

  /// Guards registries (shared: request resolution; unique: registration).
  mutable std::shared_mutex registry_mutex_;
  std::map<std::string, std::shared_ptr<const DagWorkflow>> workflows_;
  std::map<std::string, std::shared_ptr<const ClusterEntry>> clusters_;

  /// Taken shared around every Submit (admission + pool enqueue), unique by
  /// Drain before it waits — so no Submit races ThreadPool::Wait.
  mutable std::shared_mutex admission_mutex_;
  std::atomic<bool> draining_{false};

  /// Singleflight table: key -> the in-flight computation for that value.
  /// A group is inserted by its leader before the pool enqueue and erased
  /// by the leader's worker before waiters are fulfilled, so a request
  /// observing the entry always attaches to a computation that will still
  /// resolve it. All group state is guarded by this mutex.
  mutable std::mutex coalesce_mutex_;
  std::unordered_map<std::string, std::shared_ptr<CoalesceGroup>> coalesce_;

  /// Fired by Shutdown once the grace period expires; linked (never merged)
  /// into every request's token so a caller's own cancel stays a distinct
  /// signal.
  CancelToken shutdown_cancel_ = CancelToken::Cancellable();

  /// Hard wall-clock backstop (created in the ctor when watchdog_multiple
  /// > 0); fires request tokens, never joins threads.
  std::unique_ptr<resilience::Watchdog> watchdog_;

  mutable std::mutex breakers_mutex_;
  std::map<std::string, std::unique_ptr<resilience::CircuitBreaker>> breakers_;

  /// Request observability (tentpole of the obs layer): ids link records to
  /// trace spans; the recorder and SLO tracker consume completed records.
  obs::FlightRecorder flight_;
  obs::SloTracker slo_;
  std::atomic<std::uint64_t> next_request_id_{1};
  std::atomic<std::uint64_t> stats_epoch_{0};
  /// Ensures the drain-path ResetWarmState runs once even though Drain,
  /// Shutdown, and the destructor can all reach it.
  std::atomic<bool> drain_reset_done_{false};

  std::atomic<int> queue_depth_{0};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> expired_in_queue_{0};
  std::atomic<std::uint64_t> watchdog_fired_{0};
  std::atomic<std::uint64_t> coalesce_leaders_{0};
  std::atomic<std::uint64_t> coalesce_attached_{0};
};

}  // namespace dagperf

#endif  // DAGPERF_SERVICE_SERVICE_H_
