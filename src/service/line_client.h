#ifndef DAGPERF_SERVICE_LINE_CLIENT_H_
#define DAGPERF_SERVICE_LINE_CLIENT_H_

#include <string>

#include "common/status.h"

namespace dagperf {
namespace protocol {

/// A blocking NDJSON client for the wire protocol in service/protocol.h:
/// connect to a loopback port, send one line per request, read one line per
/// response with a deadline. This is the single client-side framing
/// implementation shared by the router's upstream pools, bench_serve,
/// chaos_test, and the CLI's query paths — they previously each carried
/// their own ad-hoc copy of the connect/send/poll-recv loop.
///
/// Not thread-safe: one LineClient per connection per thread (or guard
/// externally). Reads are buffered, so interleaving RecvLine calls from two
/// threads would tear lines apart.
class LineClient {
 public:
  LineClient() = default;
  ~LineClient() { Close(); }

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;
  LineClient(LineClient&& other) noexcept;
  LineClient& operator=(LineClient&& other) noexcept;

  /// Connects to 127.0.0.1:port. UNAVAILABLE{retryable-shaped} on refusal —
  /// a shard that is restarting will refuse briefly, so callers typically
  /// retry. Any previous connection is closed first.
  Status Connect(int port);

  bool connected() const { return fd_ >= 0; }

  void Close();

  /// Sends `line`, appending a trailing '\n' unless one is already present.
  /// UNAVAILABLE when the peer has gone away (EPIPE/RST is reported here
  /// rather than as a signal: sends use MSG_NOSIGNAL).
  Status SendLine(const std::string& line);

  /// Sends `bytes` exactly as given — no newline framing. For chaos clients
  /// that deliberately leave a torn frame on the wire.
  Status SendRaw(const std::string& bytes);

  struct LineOrClose {
    /// True when the peer closed the connection before a full line arrived.
    bool closed = false;
    std::string line;  ///< Without the trailing newline; empty when closed.
  };

  /// Reads the next complete line. DEADLINE_EXCEEDED when no full line
  /// arrives within `timeout_seconds`; a clean or mid-line EOF is not an
  /// error — it returns {closed = true} so callers can distinguish "peer
  /// hung" from "peer went away" (the latter is what shard-death failover
  /// keys off).
  Result<LineOrClose> RecvLine(double timeout_seconds = 20.0);

  /// One request, one response. UNAVAILABLE if the peer closes before
  /// responding, DEADLINE_EXCEEDED on timeout.
  Result<std::string> Call(const std::string& request,
                           double timeout_seconds = 20.0);

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace protocol
}  // namespace dagperf

#endif  // DAGPERF_SERVICE_LINE_CLIENT_H_
