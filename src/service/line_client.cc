#include "service/line_client.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace dagperf {
namespace protocol {

LineClient::LineClient(LineClient&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
  other.buffer_.clear();
}

LineClient& LineClient::operator=(LineClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
    other.buffer_.clear();
  }
  return *this;
}

Status LineClient::Connect(int port) {
  Close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    return Status::Unavailable(std::string("connect 127.0.0.1:") +
                               std::to_string(port) + ": " +
                               std::strerror(err));
  }
  // One-line request/response framing: Nagle would batch the small writes,
  // which on a proxied path (client -> router -> shard) stacks per hop.
  const int nodelay = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
  fd_ = fd;
  buffer_.clear();
  return Status::Ok();
}

void LineClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Status LineClient::SendLine(const std::string& line) {
  std::string framed = line;
  if (framed.empty() || framed.back() != '\n') framed.push_back('\n');
  return SendRaw(framed);
}

Status LineClient::SendRaw(const std::string& bytes) {
  if (fd_ < 0) return Status::Unavailable("not connected");
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      return Status::Unavailable(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Result<LineClient::LineOrClose> LineClient::RecvLine(double timeout_seconds) {
  if (fd_ < 0 && buffer_.find('\n') == std::string::npos) {
    return LineOrClose{.closed = true, .line = ""};
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      LineOrClose out;
      out.line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return out;
    }
    if (fd_ < 0) return LineOrClose{.closed = true, .line = ""};
    const auto remaining = deadline - std::chrono::steady_clock::now();
    const int wait_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(remaining)
            .count());
    if (wait_ms <= 0) {
      return Status::DeadlineExceeded("no complete line within deadline");
    }
    pollfd pfd{fd_, POLLIN, 0};
    if (::poll(&pfd, 1, wait_ms) <= 0) continue;
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return LineOrClose{.closed = true, .line = ""};
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

Result<std::string> LineClient::Call(const std::string& request,
                                     double timeout_seconds) {
  Status sent = SendLine(request);
  if (!sent.ok()) return sent;
  Result<LineOrClose> got = RecvLine(timeout_seconds);
  if (!got.ok()) return got.status();
  if (got.value().closed) {
    return Status::Unavailable("peer closed before responding");
  }
  return std::move(got.value().line);
}

}  // namespace protocol
}  // namespace dagperf
