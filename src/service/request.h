#ifndef DAGPERF_SERVICE_REQUEST_H_
#define DAGPERF_SERVICE_REQUEST_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "dag/dag_workflow.h"
#include "model/explain.h"
#include "model/state_estimator.h"
#include "model/sweep.h"

namespace dagperf {

/// The request/response vocabulary of the 0.8 submission API.
///
/// Pre-0.8 the service grew three parallel entry points (Submit /
/// SubmitBatch / SubmitSweep), each with its own request struct and future
/// type. 0.8 collapses them behind one typed builder (EstimateRequest) and
/// one response union (EstimateResponse): a request either prices one
/// configuration or sweeps a candidate list, and the builder is the single
/// place every per-request knob (tenant, budget, explain, coalescing,
/// hedging) lives. The pre-0.8 structs below remain the lowered form the
/// service executes — and the deprecated shim signatures still accept them —
/// but new code should only ever spell EstimateRequest.

/// One estimate query (lowered form). Exactly one of `workflow` (a
/// registered name) or `flow` (a caller-supplied workflow, shared ownership
/// so it outlives the async execution) must be set.
struct ServiceRequest {
  std::string workflow;
  std::shared_ptr<const DagWorkflow> flow;

  /// Registered cluster name; empty selects "default".
  std::string cluster;

  /// Tenant the request is accounted and fair-shared under (wire field
  /// "tenant"); empty selects "default". See service/tenancy.h.
  std::string tenant;

  /// When > 0, overrides the cluster's node count for this request only.
  /// Cheap: node hardware (and thus the BOE model and cache scope) is
  /// unchanged; per-node task populations are part of every memo key.
  int nodes = 0;

  /// Per-request budget; merged with the service's default deadline. Polled
  /// at admission, at dequeue (a request can expire while queued), and per
  /// estimator state.
  Budget budget;

  /// Attribute bottlenecks and derive the critical path (explain verb).
  bool explain = false;

  /// Opt out of in-flight coalescing for this request: it always runs its
  /// own computation, even when an identical request is already executing.
  /// Coalescing is value-keyed and bit-exact, so the only reason to opt out
  /// is wanting this request's *timing* to be its own (benchmarks, probes).
  bool coalesce = true;
};

/// A served estimate: the model output plus resolved names and the
/// service-side timing the caller would otherwise have to measure.
struct WorkflowEstimate {
  DagEstimate estimate;
  /// Filled when ServiceRequest::explain was set.
  std::vector<CriticalSegment> critical_path;
  /// The flow that was estimated (registered or caller-supplied) — kept so
  /// renderers (protocol explain reports) can name jobs without a second
  /// registry lookup.
  std::shared_ptr<const DagWorkflow> flow;
  std::string workflow;
  std::string cluster;
  double queue_wait_ms = 0.0;
  double service_ms = 0.0;
  /// True when the answer was produced under brownout (level >= 1): the
  /// estimate is still the paper's model, but attribution may be absent and
  /// the state budget may have been capped. Wire field "degraded".
  bool degraded = false;
  /// Brownout ladder level the request executed at (0 = healthy).
  int degrade_level = 0;
  /// True when this request never ran the estimator: it attached to an
  /// identical in-flight computation (singleflight coalescing) and received
  /// a copy of the leader's answer — bit-identical to what its own run
  /// would have produced. Wire field "coalesced" (emitted only when true).
  bool coalesced = false;
};

/// A cluster-size sweep query (capacity planning, lowered form): price
/// `workflow` at every node count in `nodes_list` on one service turn,
/// sharing the persistent memo across candidates.
struct ServiceSweepRequest {
  std::string workflow;
  std::shared_ptr<const DagWorkflow> flow;
  std::string cluster;
  /// Tenant accounting, as on ServiceRequest. A sweep holds one admission
  /// slot but classifies as expensive work for overload shedding.
  std::string tenant;
  std::vector<int> nodes_list;
  Budget budget;
  /// Per-request straggler hedging; when not enabled the service-level
  /// default (ServiceOptions::hedge) applies instead.
  SweepHedgeOptions hedge;
};

struct ServiceSweepResult {
  SweepResult sweep;
  std::vector<int> nodes_list;
  std::string workflow;
  std::string cluster;
  double service_ms = 0.0;
};

/// The 0.8 unified request: a typed builder covering everything the three
/// pre-0.8 entry points accepted. A request starts from a workflow
/// (registered name or inline flow) and is refined by chaining; calling
/// SweepNodes switches it into sweep mode. Lowering (ToEstimate/ToSweep) is
/// exposed so migrating callers can diff against the structs they used to
/// fill by hand.
///
///   auto response = service.Submit(
///       EstimateRequest::For("daily-etl").OnCluster("prod")
///           .WithDeadline(0.5).WithExplain());
class EstimateRequest {
 public:
  EstimateRequest() = default;

  /// A request against a registered workflow name.
  static EstimateRequest For(std::string workflow) {
    EstimateRequest request;
    request.workflow_ = std::move(workflow);
    return request;
  }

  /// A request carrying its own workflow (shared ownership: the flow must
  /// stay alive for the async execution, and shared_ptr makes that so).
  static EstimateRequest For(std::shared_ptr<const DagWorkflow> flow) {
    EstimateRequest request;
    request.flow_ = std::move(flow);
    return request;
  }

  EstimateRequest& OnCluster(std::string cluster) {
    cluster_ = std::move(cluster);
    return *this;
  }

  EstimateRequest& AsTenant(std::string tenant) {
    tenant_ = std::move(tenant);
    return *this;
  }

  /// Single-estimate mode: override the cluster's node count (> 0).
  EstimateRequest& WithNodes(int nodes) {
    nodes_ = nodes;
    return *this;
  }

  /// Sweep mode: price every node count in `nodes_list`. A non-empty list
  /// makes this request a sweep (EstimateResponse::sweep is filled).
  EstimateRequest& SweepNodes(std::vector<int> nodes_list) {
    nodes_list_ = std::move(nodes_list);
    return *this;
  }

  EstimateRequest& WithBudget(Budget budget) {
    budget_ = std::move(budget);
    return *this;
  }

  /// Deadline `seconds` from submission (<= 0 keeps the budget's deadline).
  EstimateRequest& WithDeadline(double seconds) {
    if (seconds > 0) budget_.deadline = Deadline::AfterSeconds(seconds);
    return *this;
  }

  EstimateRequest& WithCancel(CancelToken cancel) {
    budget_.cancel = std::move(cancel);
    return *this;
  }

  /// Attribute bottlenecks and derive the critical path.
  EstimateRequest& WithExplain(bool explain = true) {
    explain_ = explain;
    return *this;
  }

  /// Opt this request out of in-flight coalescing (single-estimate mode).
  EstimateRequest& WithoutCoalescing() {
    coalesce_ = false;
    return *this;
  }

  /// Straggler hedging for sweep mode (overrides the service default).
  EstimateRequest& WithHedging(SweepHedgeOptions hedge) {
    hedge_ = hedge;
    return *this;
  }

  /// Whether SweepNodes was called — decides which half of the response the
  /// service fills.
  bool is_sweep() const { return !nodes_list_.empty(); }

  /// Lowers to the single-estimate struct the service executes. Sweep-only
  /// fields (nodes_list, hedge) are dropped.
  ServiceRequest ToEstimate() const {
    ServiceRequest request;
    request.workflow = workflow_;
    request.flow = flow_;
    request.cluster = cluster_;
    request.tenant = tenant_;
    request.nodes = nodes_;
    request.budget = budget_;
    request.explain = explain_;
    request.coalesce = coalesce_;
    return request;
  }

  /// Lowers to the sweep struct. Single-estimate-only fields (nodes,
  /// explain, coalesce) are dropped.
  ServiceSweepRequest ToSweep() const {
    ServiceSweepRequest request;
    request.workflow = workflow_;
    request.flow = flow_;
    request.cluster = cluster_;
    request.tenant = tenant_;
    request.nodes_list = nodes_list_;
    request.budget = budget_;
    request.hedge = hedge_;
    return request;
  }

 private:
  std::string workflow_;
  std::shared_ptr<const DagWorkflow> flow_;
  std::string cluster_;
  std::string tenant_;
  int nodes_ = 0;
  std::vector<int> nodes_list_;
  Budget budget_;
  bool explain_ = false;
  bool coalesce_ = true;
  SweepHedgeOptions hedge_;
};

/// What the unified Submit resolves to: exactly one of the two members is
/// engaged, matching EstimateRequest::is_sweep() of the request that
/// produced it.
struct EstimateResponse {
  std::optional<WorkflowEstimate> estimate;
  std::optional<ServiceSweepResult> sweep;

  bool is_sweep() const { return sweep.has_value(); }
};

}  // namespace dagperf

#endif  // DAGPERF_SERVICE_REQUEST_H_
