#include "service/protocol.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>
#include <vector>

#include "common/json.h"
#include "dag/spec_io.h"
#include "obs/metrics.h"
#include "obs/prom.h"
#include "workload/job_profile.h"

namespace dagperf {

namespace {

Json ErrorResponseWithCode(const Json* id, const std::string& code,
                           bool retryable, const std::string& message,
                           double retry_after_ms = 0.0) {
  Json error = Json::MakeObject();
  error.Set("code", Json::MakeString(code));
  error.Set("retryable", Json::MakeBool(retryable));
  error.Set("message", Json::MakeString(message));
  // Server-paced backoff hint (overload / fair-share sheds). Emitted only
  // when the server actually set one, so existing error shapes are stable.
  if (retry_after_ms > 0) {
    error.Set("retry_after_ms", Json::MakeNumber(retry_after_ms));
  }
  Json response = Json::MakeObject();
  if (id != nullptr) response.Set("id", *id);
  response.Set("ok", Json::MakeBool(false));
  response.Set("error", std::move(error));
  return response;
}

Json ErrorResponse(const Json* id, const Status& status) {
  return ErrorResponseWithCode(id, ErrorCodeName(status.code()),
                               IsRetryable(status.code()), status.message(),
                               status.retry_after_ms());
}

/// The explicit-null id for responses to lines that never yielded a request
/// object — clients matching pipelined replies by id see the slot consumed.
const Json& NullId() {
  static const Json* null_id = new Json();
  return *null_id;
}

Json OkResponse(const Json* id, Json result) {
  Json response = Json::MakeObject();
  if (id != nullptr) response.Set("id", *id);
  response.Set("ok", Json::MakeBool(true));
  response.Set("result", std::move(result));
  return response;
}

Json StageSpansToJson(const DagWorkflow& flow, const DagEstimate& estimate) {
  Json stages = Json::MakeArray();
  for (const StageSpanEstimate& span : estimate.stages) {
    Json s = Json::MakeObject();
    s.Set("job", Json::MakeString(flow.job(span.job).name));
    s.Set("kind", Json::MakeString(StageKindName(span.kind)));
    s.Set("start_s", Json::MakeNumber(span.start));
    s.Set("end_s", Json::MakeNumber(span.end));
    stages.Append(std::move(s));
  }
  return stages;
}

Json EstimateToJson(const WorkflowEstimate& served, bool explain) {
  Json result = Json::MakeObject();
  result.Set("workflow", Json::MakeString(served.workflow));
  result.Set("cluster", Json::MakeString(served.cluster));
  result.Set("makespan_s", Json::MakeNumber(served.estimate.makespan.seconds()));
  result.Set("states", Json::MakeNumber(
                           static_cast<double>(served.estimate.states.size())));
  result.Set("queue_wait_ms", Json::MakeNumber(served.queue_wait_ms));
  result.Set("service_ms", Json::MakeNumber(served.service_ms));
  // Brownout tag: the answer is still the paper's model, but attribution may
  // be absent and the state budget capped. Emitted only when set, so the
  // healthy response shape is unchanged.
  if (served.degraded) {
    result.Set("degraded", Json::MakeBool(true));
    result.Set("degrade_level", Json::MakeNumber(served.degrade_level));
  }
  // Coalesce tag (emit-only-when-set, like "degraded"): this answer was a
  // copy of an identical in-flight computation's result.
  if (served.coalesced) {
    result.Set("coalesced", Json::MakeBool(true));
  }
  result.Set("stages", StageSpansToJson(*served.flow, served.estimate));
  if (explain) {
    Json path = Json::MakeArray();
    for (const CriticalSegment& segment : served.critical_path) {
      Json s = Json::MakeObject();
      s.Set("job", Json::MakeString(served.flow->job(segment.job).name));
      s.Set("kind", Json::MakeString(StageKindName(segment.kind)));
      s.Set("start_s", Json::MakeNumber(segment.start));
      s.Set("duration_s", Json::MakeNumber(segment.duration));
      path.Append(std::move(s));
    }
    result.Set("critical_path", std::move(path));
  }
  return result;
}

Json SweepToJson(const ServiceSweepResult& served) {
  Json result = Json::MakeObject();
  result.Set("workflow", Json::MakeString(served.workflow));
  result.Set("cluster", Json::MakeString(served.cluster));
  result.Set("service_ms", Json::MakeNumber(served.service_ms));
  Json candidates = Json::MakeArray();
  for (std::size_t i = 0; i < served.sweep.estimates.size(); ++i) {
    const Result<DagEstimate>& estimate = served.sweep.estimates[i];
    Json c = Json::MakeObject();
    if (i < served.nodes_list.size()) {
      c.Set("nodes", Json::MakeNumber(served.nodes_list[i]));
    }
    c.Set("ok", Json::MakeBool(estimate.ok()));
    if (estimate.ok()) {
      c.Set("makespan_s", Json::MakeNumber(estimate.value().makespan.seconds()));
    } else {
      c.Set("code", Json::MakeString(ErrorCodeName(estimate.status().code())));
      c.Set("message", Json::MakeString(estimate.status().message()));
    }
    candidates.Append(std::move(c));
  }
  result.Set("candidates", std::move(candidates));
  const SweepStats& stats = served.sweep.stats;
  if (stats.best_index >= 0 &&
      stats.best_index < static_cast<int>(served.nodes_list.size())) {
    Json best = Json::MakeObject();
    best.Set("nodes", Json::MakeNumber(served.nodes_list[stats.best_index]));
    best.Set("makespan_s", Json::MakeNumber(stats.best_makespan.seconds()));
    result.Set("best", std::move(best));
  }
  Json sweep_stats = Json::MakeObject();
  sweep_stats.Set("completed", Json::MakeNumber(stats.completed));
  sweep_stats.Set("failures", Json::MakeNumber(stats.failures));
  sweep_stats.Set("cancelled", Json::MakeNumber(stats.cancelled));
  sweep_stats.Set("deadline_exceeded", Json::MakeNumber(stats.deadline_exceeded));
  sweep_stats.Set("cache_hit_rate", Json::MakeNumber(stats.cache_hit_rate));
  Json incremental = Json::MakeObject();
  incremental.Set("prefix_hits",
                  Json::MakeNumber(static_cast<double>(stats.prefix_hits)));
  incremental.Set("prefix_misses",
                  Json::MakeNumber(static_cast<double>(stats.prefix_misses)));
  incremental.Set("resumed_states",
                  Json::MakeNumber(static_cast<double>(stats.resumed_states)));
  incremental.Set(
      "checkpoints_stored",
      Json::MakeNumber(static_cast<double>(stats.checkpoints_stored)));
  sweep_stats.Set("incremental", std::move(incremental));
  // Hedge accounting appears only when the race actually launched hedges,
  // so unhedged sweeps keep their response shape.
  if (stats.hedges_launched > 0) {
    Json hedges = Json::MakeObject();
    hedges.Set("launched",
               Json::MakeNumber(static_cast<double>(stats.hedges_launched)));
    hedges.Set("won", Json::MakeNumber(static_cast<double>(stats.hedges_won)));
    hedges.Set("wasted",
               Json::MakeNumber(static_cast<double>(stats.hedges_wasted)));
    sweep_stats.Set("hedges", std::move(hedges));
  }
  result.Set("stats", std::move(sweep_stats));
  return result;
}

Json StatsToJson(const ServiceStats& stats) {
  Json result = Json::MakeObject();
  result.Set("submitted", Json::MakeNumber(static_cast<double>(stats.submitted)));
  result.Set("completed", Json::MakeNumber(static_cast<double>(stats.completed)));
  result.Set("failed", Json::MakeNumber(static_cast<double>(stats.failed)));
  result.Set("shed", Json::MakeNumber(static_cast<double>(stats.shed)));
  result.Set("expired_in_queue",
             Json::MakeNumber(static_cast<double>(stats.expired_in_queue)));
  result.Set("queue_depth", Json::MakeNumber(stats.queue_depth));
  result.Set("draining", Json::MakeBool(stats.draining));
  // Shard-mode fields: the router's health probes key readmission off
  // `ready`, and the stats fan-out attributes responses by `shard_id`
  // (only emitted when the process was launched with an identity).
  result.Set("ready", Json::MakeBool(stats.ready));
  if (!stats.shard_id.empty()) {
    result.Set("shard_id", Json::MakeString(stats.shard_id));
  }
  // Which warm-state epoch the cache/incremental rates below belong to —
  // bumped whenever a drain resets the memo and checkpoint stores, so
  // clients never mix pre- and post-drain hit rates.
  result.Set("stats_epoch",
             Json::MakeNumber(static_cast<double>(stats.stats_epoch)));
  result.Set("workflows", Json::MakeNumber(stats.workflows));
  result.Set("clusters", Json::MakeNumber(stats.clusters));
  Json coalesce = Json::MakeObject();
  coalesce.Set("leaders",
               Json::MakeNumber(static_cast<double>(stats.coalesce_leaders)));
  coalesce.Set("attached",
               Json::MakeNumber(static_cast<double>(stats.coalesce_attached)));
  result.Set("coalesce", std::move(coalesce));
  Json cache = Json::MakeObject();
  cache.Set("hits", Json::MakeNumber(static_cast<double>(stats.cache.hits)));
  cache.Set("misses", Json::MakeNumber(static_cast<double>(stats.cache.misses)));
  cache.Set("entries", Json::MakeNumber(static_cast<double>(stats.cache.entries)));
  cache.Set("hit_rate", Json::MakeNumber(stats.cache.hit_rate()));
  cache.Set("shards", Json::MakeNumber(static_cast<double>(stats.cache.shards)));
  result.Set("cache", std::move(cache));
  Json incremental = Json::MakeObject();
  incremental.Set("hits",
                  Json::MakeNumber(static_cast<double>(stats.incremental.hits)));
  incremental.Set(
      "misses", Json::MakeNumber(static_cast<double>(stats.incremental.misses)));
  incremental.Set(
      "inserts", Json::MakeNumber(static_cast<double>(stats.incremental.inserts)));
  incremental.Set(
      "resumed_states",
      Json::MakeNumber(static_cast<double>(stats.incremental.resumed_states)));
  incremental.Set(
      "entries", Json::MakeNumber(static_cast<double>(stats.incremental.entries)));
  incremental.Set(
      "bytes", Json::MakeNumber(static_cast<double>(stats.incremental.bytes)));
  incremental.Set("hit_rate", Json::MakeNumber(stats.incremental.hit_rate()));
  result.Set("incremental", std::move(incremental));
  Json tenants = Json::MakeArray();
  for (const TenantRegistry::TenantStats& tenant : stats.tenants) {
    Json t = Json::MakeObject();
    t.Set("name", Json::MakeString(tenant.name));
    t.Set("inflight", Json::MakeNumber(tenant.inflight));
    t.Set("queued", Json::MakeNumber(tenant.queued));
    t.Set("submitted",
          Json::MakeNumber(static_cast<double>(tenant.submitted)));
    t.Set("completed",
          Json::MakeNumber(static_cast<double>(tenant.completed)));
    t.Set("failed", Json::MakeNumber(static_cast<double>(tenant.failed)));
    t.Set("shed_total",
          Json::MakeNumber(static_cast<double>(tenant.shed_total)));
    t.Set("cpu_ms", Json::MakeNumber(tenant.cpu_ms));
    t.Set("ema_cost_ms", Json::MakeNumber(tenant.ema_cost_ms));
    tenants.Append(std::move(t));
  }
  result.Set("tenants", std::move(tenants));
  Json overload = Json::MakeObject();
  overload.Set("level", Json::MakeNumber(stats.overload_level));
  overload.Set("shed",
               Json::MakeNumber(static_cast<double>(stats.overload_shed)));
  result.Set("overload", std::move(overload));
  return result;
}

Json WindowReportToJson(const obs::SloTracker::WindowReport& w) {
  Json j = Json::MakeObject();
  j.Set("window_s", Json::MakeNumber(w.window_seconds));
  j.Set("count", Json::MakeNumber(static_cast<double>(w.count)));
  j.Set("errors", Json::MakeNumber(static_cast<double>(w.errors)));
  j.Set("rps", Json::MakeNumber(w.rps));
  j.Set("p50_ms", Json::MakeNumber(w.p50_ms));
  j.Set("p99_ms", Json::MakeNumber(w.p99_ms));
  j.Set("mean_ms", Json::MakeNumber(w.mean_ms));
  j.Set("error_rate", Json::MakeNumber(w.error_rate));
  j.Set("deadline_hit_rate", Json::MakeNumber(w.deadline_hit_rate));
  j.Set("frac_over_objective", Json::MakeNumber(w.frac_over_objective));
  j.Set("availability_burn", Json::MakeNumber(w.availability_burn));
  j.Set("latency_burn", Json::MakeNumber(w.latency_burn));
  return j;
}

Json SloReportToJson(const obs::SloTracker::Report& report) {
  Json result = Json::MakeObject();
  Json objectives = Json::MakeObject();
  objectives.Set("p99_ms", Json::MakeNumber(report.objectives.p99_ms));
  objectives.Set("availability",
                 Json::MakeNumber(report.objectives.availability));
  result.Set("objectives", std::move(objectives));
  Json total = Json::MakeArray();
  for (const auto& window : report.total) {
    total.Append(WindowReportToJson(window));
  }
  result.Set("total", std::move(total));
  Json by_class = Json::MakeObject();
  for (const auto& cls : report.by_class) {
    Json windows = Json::MakeArray();
    for (const auto& window : cls.windows) {
      windows.Append(WindowReportToJson(window));
    }
    by_class.Set(obs::OpClassName(cls.op), std::move(windows));
  }
  result.Set("by_class", std::move(by_class));
  return result;
}

/// Parses one wire line into a request object. Returns false (and fills
/// *error_line with the protocol-shaped error response) when the line is
/// not valid JSON or not an object.
bool ParseRequestLine(const std::string& line, Json* request,
                      std::string* error_line) {
  Result<Json> parsed = Json::Parse(line);
  if (!parsed.ok()) {
    // Malformed JSON is a protocol-level failure, not a service error: the
    // stable code PARSE_ERROR (never retryable — resending the same bytes
    // cannot help) with an explicit null id, so a pipelining client sees
    // the response slot consumed instead of a silent skip.
    *error_line = ErrorResponseWithCode(&NullId(), "PARSE_ERROR", false,
                                        parsed.status().message())
                      .DumpCompact();
    return false;
  }
  if (parsed.value().type() != Json::Type::kObject) {
    *error_line =
        ErrorResponse(&NullId(),
                      Status::InvalidArgument("request must be a JSON object"))
            .DumpCompact();
    return false;
  }
  *request = std::move(parsed).value();
  return true;
}

/// Reads the shared request fields (workflow / inline flow / cluster /
/// budget). Returns non-Ok on a malformed inline flow or field type.
Status FillRequestCommon(const Json& request, std::string* workflow,
                         std::shared_ptr<const DagWorkflow>* flow,
                         std::string* cluster, Budget* budget) {
  *workflow = request.GetString("workflow", "");
  *cluster = request.GetString("cluster", "");
  if (const Json* inline_flow = request.Get("flow"); inline_flow != nullptr) {
    Result<DagWorkflow> parsed = WorkflowFromJson(*inline_flow);
    if (!parsed.ok()) return parsed.status();
    *flow = std::make_shared<const DagWorkflow>(std::move(parsed).value());
  }
  if (workflow->empty() && *flow == nullptr) {
    return Status::InvalidArgument(
        "request must carry \"workflow\" (a registered name) or an inline "
        "\"flow\" document");
  }
  if (!workflow->empty() && *flow != nullptr) {
    return Status::InvalidArgument(
        "\"workflow\" and \"flow\" are mutually exclusive");
  }
  const double deadline_s = request.GetNumber("deadline_s", 0.0);
  if (deadline_s < 0) {
    return Status::InvalidArgument("\"deadline_s\" must be >= 0");
  }
  *budget = Budget::Within(deadline_s);
  return Status::Ok();
}

}  // namespace

Protocol::Protocol(EstimationService* service) : service_(service) {}

std::string Protocol::HandleLine(const std::string& line) {
  ++requests_handled_;
  Json request;
  std::string error_line;
  if (!ParseRequestLine(line, &request, &error_line)) return error_line;
  return HandleRequest(request);
}

void Protocol::HandleLineStreaming(const std::string& line,
                                   const LineSink& sink) {
  ++requests_handled_;
  Json request;
  std::string error_line;
  if (!ParseRequestLine(line, &request, &error_line)) {
    sink(error_line);
    return;
  }
  if (request.GetString("op", "") == "watch") {
    RunWatch(request, request.Get("id"), sink, /*single_frame=*/false);
    return;
  }
  sink(HandleRequest(request));
}

std::string Protocol::HandleRequest(const Json& request) {
  const Json* id = request.Get("id");
  const std::string op = request.GetString("op", "");

  if (op == "estimate" || op == "explain") {
    ServiceRequest service_request;
    service_request.explain = (op == "explain");
    service_request.tenant = request.GetString("tenant", "");
    if (Status common = FillRequestCommon(
            request, &service_request.workflow, &service_request.flow,
            &service_request.cluster, &service_request.budget);
        !common.ok()) {
      return ErrorResponse(id, common).DumpCompact();
    }
    const double nodes = request.GetNumber("nodes", 0.0);
    service_request.nodes = static_cast<int>(nodes);
    if (nodes < 0 || nodes != static_cast<double>(service_request.nodes)) {
      return ErrorResponse(
                 id, Status::InvalidArgument("\"nodes\" must be a non-negative "
                                             "integer"))
          .DumpCompact();
    }
    // Lowered struct -> the 0.8 unified builder. Wire "coalesce": false
    // opts this request out of in-flight coalescing.
    EstimateRequest unified =
        service_request.flow != nullptr
            ? EstimateRequest::For(std::move(service_request.flow))
            : EstimateRequest::For(std::move(service_request.workflow));
    unified.OnCluster(std::move(service_request.cluster))
        .AsTenant(std::move(service_request.tenant))
        .WithNodes(service_request.nodes)
        .WithBudget(std::move(service_request.budget))
        .WithExplain(service_request.explain);
    if (!request.GetBool("coalesce", true)) unified.WithoutCoalescing();
    Result<EstimateResponse> served = service_->Submit(std::move(unified)).get();
    if (!served.ok()) return ErrorResponse(id, served.status()).DumpCompact();
    return OkResponse(id, EstimateToJson(*served.value().estimate,
                                         op == "explain"))
        .DumpCompact();
  }

  if (op == "sweep") {
    ServiceSweepRequest sweep_request;
    sweep_request.tenant = request.GetString("tenant", "");
    if (Status common = FillRequestCommon(
            request, &sweep_request.workflow, &sweep_request.flow,
            &sweep_request.cluster, &sweep_request.budget);
        !common.ok()) {
      return ErrorResponse(id, common).DumpCompact();
    }
    const Json* nodes_list = request.Get("nodes_list");
    if (nodes_list == nullptr || nodes_list->type() != Json::Type::kArray) {
      return ErrorResponse(id, Status::InvalidArgument(
                                   "sweep requires a \"nodes_list\" array"))
          .DumpCompact();
    }
    for (const Json& entry : nodes_list->AsArray()) {
      if (entry.type() != Json::Type::kNumber || entry.AsNumber() < 1 ||
          entry.AsNumber() != std::floor(entry.AsNumber())) {
        return ErrorResponse(id, Status::InvalidArgument(
                                     "\"nodes_list\" entries must be integers "
                                     ">= 1"))
            .DumpCompact();
      }
      sweep_request.nodes_list.push_back(static_cast<int>(entry.AsNumber()));
    }
    // Lowered struct -> the 0.8 unified builder. Wire "hedge": true opts
    // this sweep into straggler hedging with the SweepHedgeOptions defaults
    // (a sweep that needs tuned knobs sets ServiceOptions::hedge instead).
    EstimateRequest unified =
        sweep_request.flow != nullptr
            ? EstimateRequest::For(std::move(sweep_request.flow))
            : EstimateRequest::For(std::move(sweep_request.workflow));
    unified.OnCluster(std::move(sweep_request.cluster))
        .AsTenant(std::move(sweep_request.tenant))
        .SweepNodes(std::move(sweep_request.nodes_list))
        .WithBudget(std::move(sweep_request.budget));
    if (request.GetBool("hedge", false)) {
      SweepHedgeOptions hedge;
      hedge.enabled = true;
      unified.WithHedging(hedge);
    }
    Result<EstimateResponse> served = service_->Submit(std::move(unified)).get();
    if (!served.ok()) return ErrorResponse(id, served.status()).DumpCompact();
    return OkResponse(id, SweepToJson(*served.value().sweep)).DumpCompact();
  }

  if (op == "stats") {
    return OkResponse(id, StatsToJson(service_->Stats())).DumpCompact();
  }

  if (op == "slo") {
    const obs::SloTracker::Report report = service_->slo_tracker().Snapshot();
    // Refresh the slo.* gauges alongside the report so a Prometheus scrape
    // racing this verb sees the same windowed figures.
    service_->slo_tracker().PublishGauges(report);
    return OkResponse(id, SloReportToJson(report)).DumpCompact();
  }

  if (op == "flightrecorder") {
    // FlightRecorder serialises itself (obs sits below common and cannot
    // use common/json); round-trip through the parser to splice the dump
    // into the response document.
    Result<Json> dump = Json::Parse(service_->flight_recorder().ToJson());
    if (!dump.ok()) {
      return ErrorResponse(id, Status::Internal("flight recorder dump: " +
                                                dump.status().message()))
          .DumpCompact();
    }
    return OkResponse(id, std::move(dump).value()).DumpCompact();
  }

  if (op == "metrics") {
    const std::string format = request.GetString("format", "json");
    if (format == "prom") {
      Json result = Json::MakeObject();
      result.Set("content_type",
                 Json::MakeString("text/plain; version=0.0.4; charset=utf-8"));
      result.Set("text", Json::MakeString(obs::WritePrometheusText()));
      return OkResponse(id, std::move(result)).DumpCompact();
    }
    if (format != "json") {
      return ErrorResponse(id,
                           Status::InvalidArgument(
                               "\"format\" must be \"json\" or \"prom\""))
          .DumpCompact();
    }
    Result<Json> parsed = Json::Parse(obs::MetricsRegistry::Default().ToJson());
    if (!parsed.ok()) {
      return ErrorResponse(id, Status::Internal("metrics snapshot: " +
                                                parsed.status().message()))
          .DumpCompact();
    }
    return OkResponse(id, std::move(parsed).value()).DumpCompact();
  }

  if (op == "watch") {
    // One-shot entry point: a single frame, immediately. Streaming happens
    // only through HandleLineStreaming, where the transport can observe
    // backpressure and disconnects.
    std::string frame;
    RunWatch(request, id,
             [&frame](const std::string& response_line) {
               frame = response_line;
               return true;
             },
             /*single_frame=*/true);
    return frame;
  }

  if (op == "drain") {
    Result<int> inflight = service_->Drain();
    if (!inflight.ok()) return ErrorResponse(id, inflight.status()).DumpCompact();
    drain_requested_ = true;
    Json result = Json::MakeObject();
    result.Set("drained", Json::MakeBool(true));
    result.Set("inflight", Json::MakeNumber(inflight.value()));
    return OkResponse(id, std::move(result)).DumpCompact();
  }

  return ErrorResponse(
             id, Status::InvalidArgument(
                     op.empty()
                         ? "request carries no \"op\""
                         : "unknown op \"" + op +
                               "\" (estimate|explain|sweep|stats|slo|"
                               "flightrecorder|metrics|watch|drain)"))
      .DumpCompact();
}

void Protocol::RunWatch(const Json& request, const Json* id,
                        const LineSink& sink, bool single_frame) {
  const double interval_raw = request.GetNumber("interval_ms", 1000.0);
  if (interval_raw < 0) {
    sink(ErrorResponse(id, Status::InvalidArgument(
                               "\"interval_ms\" must be >= 0"))
             .DumpCompact());
    return;
  }
  const double interval_ms = std::min(60000.0, std::max(10.0, interval_raw));
  const double count_raw = request.GetNumber("count", 0.0);
  if (count_raw < 0 || count_raw != std::floor(count_raw)) {
    sink(ErrorResponse(id, Status::InvalidArgument(
                               "\"count\" must be a non-negative integer "
                               "(0 = unbounded)"))
             .DumpCompact());
    return;
  }
  const std::uint64_t max_frames = static_cast<std::uint64_t>(count_raw);
  std::uint64_t seq = 0;
  for (;;) {
    ++seq;  // Frames are 1-based: "seq":1 is the first frame of the stream.
    const obs::SloTracker::Report report = service_->slo_tracker().Snapshot();
    service_->slo_tracker().PublishGauges(report);
    Json frame = Json::MakeObject();
    frame.Set("seq", Json::MakeNumber(static_cast<double>(seq)));
    frame.Set("ts_us", Json::MakeNumber(obs::MonotonicUs()));
    frame.Set("stats", StatsToJson(service_->Stats()));
    frame.Set("slo_10s", WindowReportToJson(report.total[0]));
    frame.Set("slo_1m", WindowReportToJson(report.total[1]));
    // Per-cluster breaker states (0 closed / 1 open / 2 half-open) so a
    // watch client renders serving health without a second round-trip.
    Json breakers = Json::MakeObject();
    const obs::MetricsRegistry::Snapshot snap =
        obs::MetricsRegistry::Default().Snap();
    for (const auto& [name, value] : snap.gauges) {
      if (name.rfind("resilience.breaker_state", 0) == 0) {
        breakers.Set(name, Json::MakeNumber(value));
      }
    }
    frame.Set("breakers", std::move(breakers));
    if (!sink(OkResponse(id, std::move(frame)).DumpCompact())) return;
    if (single_frame) return;
    if (max_frames != 0 && seq >= max_frames) return;
    if (service_->draining()) return;
    // Sleep in short slices so a drain cuts the subscription off promptly
    // instead of holding shutdown hostage for a full interval.
    double remaining_ms = interval_ms;
    while (remaining_ms > 0.0) {
      const double slice_ms = std::min(remaining_ms, 50.0);
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(slice_ms));
      remaining_ms -= slice_ms;
      if (service_->draining()) return;
    }
  }
}

std::string Protocol::TransportErrorLine(const Status& status) {
  return ErrorResponse(&NullId(), status).DumpCompact();
}

}  // namespace dagperf
