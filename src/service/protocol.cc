#include "service/protocol.h"

#include <cmath>
#include <utility>
#include <vector>

#include "common/json.h"
#include "dag/spec_io.h"
#include "workload/job_profile.h"

namespace dagperf {

namespace {

Json ErrorResponseWithCode(const Json* id, const std::string& code,
                           bool retryable, const std::string& message) {
  Json error = Json::MakeObject();
  error.Set("code", Json::MakeString(code));
  error.Set("retryable", Json::MakeBool(retryable));
  error.Set("message", Json::MakeString(message));
  Json response = Json::MakeObject();
  if (id != nullptr) response.Set("id", *id);
  response.Set("ok", Json::MakeBool(false));
  response.Set("error", std::move(error));
  return response;
}

Json ErrorResponse(const Json* id, const Status& status) {
  return ErrorResponseWithCode(id, ErrorCodeName(status.code()),
                               IsRetryable(status.code()), status.message());
}

/// The explicit-null id for responses to lines that never yielded a request
/// object — clients matching pipelined replies by id see the slot consumed.
const Json& NullId() {
  static const Json* null_id = new Json();
  return *null_id;
}

Json OkResponse(const Json* id, Json result) {
  Json response = Json::MakeObject();
  if (id != nullptr) response.Set("id", *id);
  response.Set("ok", Json::MakeBool(true));
  response.Set("result", std::move(result));
  return response;
}

Json StageSpansToJson(const DagWorkflow& flow, const DagEstimate& estimate) {
  Json stages = Json::MakeArray();
  for (const StageSpanEstimate& span : estimate.stages) {
    Json s = Json::MakeObject();
    s.Set("job", Json::MakeString(flow.job(span.job).name));
    s.Set("kind", Json::MakeString(StageKindName(span.kind)));
    s.Set("start_s", Json::MakeNumber(span.start));
    s.Set("end_s", Json::MakeNumber(span.end));
    stages.Append(std::move(s));
  }
  return stages;
}

Json EstimateToJson(const WorkflowEstimate& served, bool explain) {
  Json result = Json::MakeObject();
  result.Set("workflow", Json::MakeString(served.workflow));
  result.Set("cluster", Json::MakeString(served.cluster));
  result.Set("makespan_s", Json::MakeNumber(served.estimate.makespan.seconds()));
  result.Set("states", Json::MakeNumber(
                           static_cast<double>(served.estimate.states.size())));
  result.Set("queue_wait_ms", Json::MakeNumber(served.queue_wait_ms));
  result.Set("service_ms", Json::MakeNumber(served.service_ms));
  result.Set("stages", StageSpansToJson(*served.flow, served.estimate));
  if (explain) {
    Json path = Json::MakeArray();
    for (const CriticalSegment& segment : served.critical_path) {
      Json s = Json::MakeObject();
      s.Set("job", Json::MakeString(served.flow->job(segment.job).name));
      s.Set("kind", Json::MakeString(StageKindName(segment.kind)));
      s.Set("start_s", Json::MakeNumber(segment.start));
      s.Set("duration_s", Json::MakeNumber(segment.duration));
      path.Append(std::move(s));
    }
    result.Set("critical_path", std::move(path));
  }
  return result;
}

Json SweepToJson(const ServiceSweepResult& served) {
  Json result = Json::MakeObject();
  result.Set("workflow", Json::MakeString(served.workflow));
  result.Set("cluster", Json::MakeString(served.cluster));
  result.Set("service_ms", Json::MakeNumber(served.service_ms));
  Json candidates = Json::MakeArray();
  for (std::size_t i = 0; i < served.sweep.estimates.size(); ++i) {
    const Result<DagEstimate>& estimate = served.sweep.estimates[i];
    Json c = Json::MakeObject();
    if (i < served.nodes_list.size()) {
      c.Set("nodes", Json::MakeNumber(served.nodes_list[i]));
    }
    c.Set("ok", Json::MakeBool(estimate.ok()));
    if (estimate.ok()) {
      c.Set("makespan_s", Json::MakeNumber(estimate.value().makespan.seconds()));
    } else {
      c.Set("code", Json::MakeString(ErrorCodeName(estimate.status().code())));
      c.Set("message", Json::MakeString(estimate.status().message()));
    }
    candidates.Append(std::move(c));
  }
  result.Set("candidates", std::move(candidates));
  const SweepStats& stats = served.sweep.stats;
  if (stats.best_index >= 0 &&
      stats.best_index < static_cast<int>(served.nodes_list.size())) {
    Json best = Json::MakeObject();
    best.Set("nodes", Json::MakeNumber(served.nodes_list[stats.best_index]));
    best.Set("makespan_s", Json::MakeNumber(stats.best_makespan.seconds()));
    result.Set("best", std::move(best));
  }
  Json sweep_stats = Json::MakeObject();
  sweep_stats.Set("completed", Json::MakeNumber(stats.completed));
  sweep_stats.Set("failures", Json::MakeNumber(stats.failures));
  sweep_stats.Set("cancelled", Json::MakeNumber(stats.cancelled));
  sweep_stats.Set("deadline_exceeded", Json::MakeNumber(stats.deadline_exceeded));
  sweep_stats.Set("cache_hit_rate", Json::MakeNumber(stats.cache_hit_rate));
  Json incremental = Json::MakeObject();
  incremental.Set("prefix_hits",
                  Json::MakeNumber(static_cast<double>(stats.prefix_hits)));
  incremental.Set("prefix_misses",
                  Json::MakeNumber(static_cast<double>(stats.prefix_misses)));
  incremental.Set("resumed_states",
                  Json::MakeNumber(static_cast<double>(stats.resumed_states)));
  incremental.Set(
      "checkpoints_stored",
      Json::MakeNumber(static_cast<double>(stats.checkpoints_stored)));
  sweep_stats.Set("incremental", std::move(incremental));
  result.Set("stats", std::move(sweep_stats));
  return result;
}

Json StatsToJson(const ServiceStats& stats) {
  Json result = Json::MakeObject();
  result.Set("submitted", Json::MakeNumber(static_cast<double>(stats.submitted)));
  result.Set("completed", Json::MakeNumber(static_cast<double>(stats.completed)));
  result.Set("failed", Json::MakeNumber(static_cast<double>(stats.failed)));
  result.Set("shed", Json::MakeNumber(static_cast<double>(stats.shed)));
  result.Set("expired_in_queue",
             Json::MakeNumber(static_cast<double>(stats.expired_in_queue)));
  result.Set("queue_depth", Json::MakeNumber(stats.queue_depth));
  result.Set("draining", Json::MakeBool(stats.draining));
  result.Set("workflows", Json::MakeNumber(stats.workflows));
  result.Set("clusters", Json::MakeNumber(stats.clusters));
  Json cache = Json::MakeObject();
  cache.Set("hits", Json::MakeNumber(static_cast<double>(stats.cache.hits)));
  cache.Set("misses", Json::MakeNumber(static_cast<double>(stats.cache.misses)));
  cache.Set("entries", Json::MakeNumber(static_cast<double>(stats.cache.entries)));
  cache.Set("hit_rate", Json::MakeNumber(stats.cache.hit_rate()));
  result.Set("cache", std::move(cache));
  Json incremental = Json::MakeObject();
  incremental.Set("hits",
                  Json::MakeNumber(static_cast<double>(stats.incremental.hits)));
  incremental.Set(
      "misses", Json::MakeNumber(static_cast<double>(stats.incremental.misses)));
  incremental.Set(
      "inserts", Json::MakeNumber(static_cast<double>(stats.incremental.inserts)));
  incremental.Set(
      "resumed_states",
      Json::MakeNumber(static_cast<double>(stats.incremental.resumed_states)));
  incremental.Set(
      "entries", Json::MakeNumber(static_cast<double>(stats.incremental.entries)));
  incremental.Set(
      "bytes", Json::MakeNumber(static_cast<double>(stats.incremental.bytes)));
  incremental.Set("hit_rate", Json::MakeNumber(stats.incremental.hit_rate()));
  result.Set("incremental", std::move(incremental));
  return result;
}

/// Reads the shared request fields (workflow / inline flow / cluster /
/// budget). Returns non-Ok on a malformed inline flow or field type.
Status FillRequestCommon(const Json& request, std::string* workflow,
                         std::shared_ptr<const DagWorkflow>* flow,
                         std::string* cluster, Budget* budget) {
  *workflow = request.GetString("workflow", "");
  *cluster = request.GetString("cluster", "");
  if (const Json* inline_flow = request.Get("flow"); inline_flow != nullptr) {
    Result<DagWorkflow> parsed = WorkflowFromJson(*inline_flow);
    if (!parsed.ok()) return parsed.status();
    *flow = std::make_shared<const DagWorkflow>(std::move(parsed).value());
  }
  if (workflow->empty() && *flow == nullptr) {
    return Status::InvalidArgument(
        "request must carry \"workflow\" (a registered name) or an inline "
        "\"flow\" document");
  }
  if (!workflow->empty() && *flow != nullptr) {
    return Status::InvalidArgument(
        "\"workflow\" and \"flow\" are mutually exclusive");
  }
  const double deadline_s = request.GetNumber("deadline_s", 0.0);
  if (deadline_s < 0) {
    return Status::InvalidArgument("\"deadline_s\" must be >= 0");
  }
  *budget = Budget::Within(deadline_s);
  return Status::Ok();
}

}  // namespace

Protocol::Protocol(EstimationService* service) : service_(service) {}

std::string Protocol::HandleLine(const std::string& line) {
  ++requests_handled_;
  Result<Json> parsed = Json::Parse(line);
  if (!parsed.ok()) {
    // Malformed JSON is a protocol-level failure, not a service error: the
    // stable code PARSE_ERROR (never retryable — resending the same bytes
    // cannot help) with an explicit null id, so a pipelining client sees
    // the response slot consumed instead of a silent skip.
    return ErrorResponseWithCode(&NullId(), "PARSE_ERROR", false,
                                 parsed.status().message())
        .DumpCompact();
  }
  const Json& request = parsed.value();
  if (request.type() != Json::Type::kObject) {
    return ErrorResponse(&NullId(),
                         Status::InvalidArgument("request must be a JSON object"))
        .DumpCompact();
  }
  const Json* id = request.Get("id");
  const std::string op = request.GetString("op", "");

  if (op == "estimate" || op == "explain") {
    ServiceRequest service_request;
    service_request.explain = (op == "explain");
    if (Status common = FillRequestCommon(
            request, &service_request.workflow, &service_request.flow,
            &service_request.cluster, &service_request.budget);
        !common.ok()) {
      return ErrorResponse(id, common).DumpCompact();
    }
    const double nodes = request.GetNumber("nodes", 0.0);
    service_request.nodes = static_cast<int>(nodes);
    if (nodes < 0 || nodes != static_cast<double>(service_request.nodes)) {
      return ErrorResponse(
                 id, Status::InvalidArgument("\"nodes\" must be a non-negative "
                                             "integer"))
          .DumpCompact();
    }
    Result<WorkflowEstimate> served =
        service_->Submit(std::move(service_request)).get();
    if (!served.ok()) return ErrorResponse(id, served.status()).DumpCompact();
    return OkResponse(id, EstimateToJson(served.value(), op == "explain"))
        .DumpCompact();
  }

  if (op == "sweep") {
    ServiceSweepRequest sweep_request;
    if (Status common = FillRequestCommon(
            request, &sweep_request.workflow, &sweep_request.flow,
            &sweep_request.cluster, &sweep_request.budget);
        !common.ok()) {
      return ErrorResponse(id, common).DumpCompact();
    }
    const Json* nodes_list = request.Get("nodes_list");
    if (nodes_list == nullptr || nodes_list->type() != Json::Type::kArray) {
      return ErrorResponse(id, Status::InvalidArgument(
                                   "sweep requires a \"nodes_list\" array"))
          .DumpCompact();
    }
    for (const Json& entry : nodes_list->AsArray()) {
      if (entry.type() != Json::Type::kNumber || entry.AsNumber() < 1 ||
          entry.AsNumber() != std::floor(entry.AsNumber())) {
        return ErrorResponse(id, Status::InvalidArgument(
                                     "\"nodes_list\" entries must be integers "
                                     ">= 1"))
            .DumpCompact();
      }
      sweep_request.nodes_list.push_back(static_cast<int>(entry.AsNumber()));
    }
    Result<ServiceSweepResult> served =
        service_->SubmitSweep(std::move(sweep_request)).get();
    if (!served.ok()) return ErrorResponse(id, served.status()).DumpCompact();
    return OkResponse(id, SweepToJson(served.value())).DumpCompact();
  }

  if (op == "stats") {
    return OkResponse(id, StatsToJson(service_->Stats())).DumpCompact();
  }

  if (op == "drain") {
    Result<int> inflight = service_->Drain();
    if (!inflight.ok()) return ErrorResponse(id, inflight.status()).DumpCompact();
    drain_requested_ = true;
    Json result = Json::MakeObject();
    result.Set("drained", Json::MakeBool(true));
    result.Set("inflight", Json::MakeNumber(inflight.value()));
    return OkResponse(id, std::move(result)).DumpCompact();
  }

  return ErrorResponse(
             id, Status::InvalidArgument(
                     op.empty()
                         ? "request carries no \"op\""
                         : "unknown op \"" + op +
                               "\" (estimate|explain|sweep|stats|drain)"))
      .DumpCompact();
}

std::string Protocol::TransportErrorLine(const Status& status) {
  return ErrorResponse(&NullId(), status).DumpCompact();
}

}  // namespace dagperf
