#include "service/tenancy.h"

#include <algorithm>

#include "cluster/cluster_spec.h"
#include "obs/metrics.h"
#include "scheduler/drf.h"

namespace dagperf {

namespace {

obs::Counter& FairShareShedCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Default().GetCounter("tenant.fair_share_shed");
  return counter;
}

obs::Gauge& TenantCountGauge() {
  static obs::Gauge& gauge =
      obs::MetricsRegistry::Default().GetGauge("tenant.active");
  return gauge;
}

}  // namespace

TenantRegistry::TenantRegistry() : TenantRegistry(Options{}) {}

TenantRegistry::TenantRegistry(Options options) : options_(options) {
  options_.capacity_slots = std::max(1, options_.capacity_slots);
  options_.ema_alpha = std::min(1.0, std::max(0.01, options_.ema_alpha));
  options_.initial_cost_ms = std::max(0.01, options_.initial_cost_ms);
}

const std::string& TenantRegistry::Canonical(const std::string& tenant) {
  static const std::string* kDefault = new std::string("default");
  return tenant.empty() ? *kDefault : tenant;
}

TenantRegistry::Entry& TenantRegistry::Find(const std::string& tenant) {
  auto [it, inserted] = tenants_.try_emplace(tenant);
  if (inserted) {
    it->second.ema_cost_ms = options_.initial_cost_ms;
    TenantCountGauge().Set(static_cast<double>(tenants_.size()));
  }
  return it->second;
}

Status TenantRegistry::Admit(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& me = Find(tenant);
  ++me.submitted;

  // Price the admission queue as a DRF problem (the paper's own scheduler
  // model, §II-B): one synthetic node whose vcores are queue slots and whose
  // memory is cpu-milliseconds of expected work. Each active tenant demands
  // <1 slot, EMA cost ms> per held-or-requested slot. The memory capacity is
  // the slot count times the mean active cost, so a tenant whose requests
  // cost the mean is slot-bound while a pricier tenant becomes
  // cpu-ms-dominant and is granted proportionally fewer slots.
  std::vector<const Entry*> active;
  double cost_sum = 0.0;
  for (const auto& [name, entry] : tenants_) {
    const bool wants = &entry == &me || entry.inflight + entry.queued > 0;
    if (!wants) continue;
    active.push_back(&entry);
    cost_sum += std::max(0.01, entry.ema_cost_ms);
  }
  const double mean_cost = cost_sum / static_cast<double>(active.size());

  ClusterSpec synthetic;
  synthetic.num_nodes = 1;
  synthetic.node.cores = options_.capacity_slots;
  synthetic.node.memory =
      Bytes(static_cast<double>(options_.capacity_slots) * mean_cost);
  SchedulerConfig config;
  config.vcores_per_core = 1.0;  // Slots are slots; no oversubscription.
  config.max_tasks_per_node = 0;
  const DrfAllocator allocator(synthetic, config);

  std::vector<StageDemand> demands;
  demands.reserve(active.size());
  int my_index = -1;
  for (std::size_t i = 0; i < active.size(); ++i) {
    const Entry& entry = *active[i];
    StageDemand demand;
    demand.slot.vcores = 1.0;
    demand.slot.memory = Bytes(std::max(0.01, entry.ema_cost_ms));
    demand.remaining_tasks = entry.inflight + entry.queued;
    if (active[i] == &me) {
      my_index = static_cast<int>(i);
      ++demand.remaining_tasks;  // The slot this Admit asks for.
    }
    demands.push_back(demand);
  }
  const std::vector<int> granted = allocator.Allocate(demands);
  const int held = me.inflight + me.queued;
  if (granted[static_cast<std::size_t>(my_index)] <= held) {
    ++me.shed_total;
    FairShareShedCounter().Add(1);
    return Status::ResourceExhausted(
        "tenant \"" + tenant + "\" is at its fair share (" +
        std::to_string(held) + " of " +
        std::to_string(options_.capacity_slots) +
        " slots under DRF): retry with backoff");
  }
  ++me.queued;
  return Status::Ok();
}

void TenantRegistry::OnAdmitRollback(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = Find(tenant);
  entry.queued = std::max(0, entry.queued - 1);
  --entry.submitted;  // The request was never really accepted.
}

void TenantRegistry::OnExecuteStart(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = Find(tenant);
  entry.queued = std::max(0, entry.queued - 1);
  ++entry.inflight;
}

void TenantRegistry::OnDone(const std::string& tenant, bool ok, double cpu_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = Find(tenant);
  entry.inflight = std::max(0, entry.inflight - 1);
  if (ok) {
    ++entry.completed;
  } else {
    ++entry.failed;
  }
  cpu_ms = std::max(0.0, cpu_ms);
  entry.cpu_ms += cpu_ms;
  entry.ema_cost_ms = (1.0 - options_.ema_alpha) * entry.ema_cost_ms +
                      options_.ema_alpha * cpu_ms;
}

void TenantRegistry::OnShed(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = Find(tenant);
  // The arrival never reached Admit, so count it here: `submitted` means
  // arrivals, keeping the conservation invariant
  //   submitted == completed + failed + shed_total + inflight + queued.
  ++entry.submitted;
  ++entry.shed_total;
}

std::vector<TenantRegistry::TenantStats> TenantRegistry::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TenantStats> out;
  out.reserve(tenants_.size());
  for (const auto& [name, entry] : tenants_) {
    TenantStats s;
    s.name = name;
    s.inflight = entry.inflight;
    s.queued = entry.queued;
    s.submitted = entry.submitted;
    s.completed = entry.completed;
    s.failed = entry.failed;
    s.shed_total = entry.shed_total;
    s.cpu_ms = entry.cpu_ms;
    s.ema_cost_ms = entry.ema_cost_ms;
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace dagperf
