#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <optional>
#include <thread>
#include <utility>

#include "boe/boe_model.h"
#include "cluster/validate.h"
#include "dag/validate.h"
#include "model/snapshot.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "resilience/fault.h"

namespace dagperf {

namespace {

/// Service metric handles (obs/metrics.h); recording is gated on the
/// process-wide metrics flag, so holding them is free when disabled.
struct ServiceMetrics {
  obs::Counter& submitted;
  obs::Counter& completed;
  obs::Counter& failed;
  obs::Counter& shed;
  obs::Counter& expired_in_queue;
  /// Per-request cost-class attribution (tentpole): how each served request
  /// got its answer — full replay, memo-warm, checkpoint resume, or by
  /// attaching to another request's in-flight computation.
  obs::Counter& path_full_replay;
  obs::Counter& path_memo_warm;
  obs::Counter& path_incremental;
  obs::Counter& path_coalesced;
  /// Warm-state reset epochs (drain/shutdown); rates exported next to this
  /// counter are always computed within one epoch.
  obs::Counter& reset_epoch;
  obs::Gauge& queue_depth;
  obs::Gauge& cache_hit_rate;
  obs::Histogram& latency_us;
  obs::Histogram& queue_wait_us;

  ServiceMetrics()
      : submitted(obs::MetricsRegistry::Default().GetCounter("service.submitted")),
        completed(obs::MetricsRegistry::Default().GetCounter("service.completed")),
        failed(obs::MetricsRegistry::Default().GetCounter("service.failed")),
        shed(obs::MetricsRegistry::Default().GetCounter("service.shed")),
        expired_in_queue(obs::MetricsRegistry::Default().GetCounter(
            "service.expired_in_queue")),
        path_full_replay(obs::MetricsRegistry::Default().GetCounter(
            "service.path.full_replay")),
        path_memo_warm(obs::MetricsRegistry::Default().GetCounter(
            "service.path.memo_warm")),
        path_incremental(obs::MetricsRegistry::Default().GetCounter(
            "service.path.incremental")),
        path_coalesced(obs::MetricsRegistry::Default().GetCounter(
            "service.path.coalesced")),
        reset_epoch(
            obs::MetricsRegistry::Default().GetCounter("stats.reset_epoch")),
        queue_depth(obs::MetricsRegistry::Default().GetGauge("service.queue_depth")),
        cache_hit_rate(
            obs::MetricsRegistry::Default().GetGauge("service.cache_hit_rate")),
        latency_us(
            obs::MetricsRegistry::Default().GetHistogram("service.latency_us")),
        queue_wait_us(obs::MetricsRegistry::Default().GetHistogram(
            "service.queue_wait_us")) {}
};

ServiceMetrics& Metrics() {
  static ServiceMetrics* metrics = new ServiceMetrics();
  return *metrics;
}

/// Chaos seams (resilience/fault.h): service.admit injects admission
/// rejections after a slot was legitimately granted; service.execute injects
/// estimator-path failures — the errors the per-cluster breaker and the
/// protocol's retryable flag exist for.
resilience::FaultPoint& AdmitFault() {
  static resilience::FaultPoint& point =
      resilience::FaultInjector::Default().GetPoint("service.admit");
  return point;
}

resilience::FaultPoint& ExecuteFault() {
  static resilience::FaultPoint& point =
      resilience::FaultInjector::Default().GetPoint("service.execute");
  return point;
}

/// TaskTimeSource decorator arming coalesce-group abandonment: every 64th
/// compute query runs `poll` (which fires the group's abandon token once
/// every attached caller has cancelled). CancelToken carries no callbacks,
/// so abandonment has to be discovered by polling — and the task-time path
/// is the only place a leader reliably visits often, with a period that
/// keeps the poll off the hot path. Wraps the raw source (inside the memo
/// decorator), so only compute-bound executions poll: memo-warm ones finish
/// before abandonment could matter.
class AbandonPollSource : public TaskTimeSource {
 public:
  AbandonPollSource(const TaskTimeSource& inner, std::function<void()> poll)
      : inner_(inner), poll_(std::move(poll)) {}

  Duration TaskTime(const EstimationContext& context) const override {
    MaybePoll();
    return inner_.TaskTime(context);
  }

  NormalParams TaskTimeDist(const EstimationContext& context) const override {
    MaybePoll();
    return inner_.TaskTimeDist(context);
  }

  std::optional<TaskAttribution> Attribution(
      const EstimationContext& context) const override {
    return inner_.Attribution(context);
  }

 private:
  void MaybePoll() const {
    if ((queries_.fetch_add(1, std::memory_order_relaxed) & 63) == 63) {
      poll_();
    }
  }

  const TaskTimeSource& inner_;
  std::function<void()> poll_;
  mutable std::atomic<std::uint64_t> queries_{0};
};

}  // namespace

/// One in-flight singleflight computation: the leader's abandon signal, the
/// caller tokens of every member, and the requests parked on the result.
/// Mutable state is guarded by EstimationService::coalesce_mutex_.
struct EstimationService::CoalesceGroup {
  /// One attached request, parked until the leader resolves.
  struct Waiter {
    std::function<void(Result<WorkflowEstimate>)> done;
    /// The waiter's own signals (caller cancel + shutdown link + deadline)
    /// — what fulfilment checks before handing over the leader's answer.
    Budget budget;
    /// The caller's raw token, so fulfilment can tell a caller cancel from
    /// the shutdown signal (MapCancelCause).
    CancelToken caller_cancel;
    std::string workflow;
    std::string tenant;
    obs::RequestRecord record;
    bool observe = false;
    double submit_us = 0.0;
  };

  std::string key;
  /// Fired once every member (leader + waiters) has cancelled — the only
  /// signal that aborts the shared computation short of shutdown. Cancelling
  /// one waiter never cancels the leader unless it is the last live caller.
  CancelToken abandon = CancelToken::Cancellable();
  /// Caller tokens of every member, leader first.
  std::vector<CancelToken> member_cancels;
  std::vector<Waiter> waiters;
};

/// One registered cluster: its spec, its BOE model, and the task-time
/// source requests are priced with. The source defaults to the entry's own
/// BOE source and can be repointed via RegisterSource (profile-driven
/// serving). Immutable after registration — replacement swaps the shared_ptr
/// while in-flight requests keep theirs.
struct EstimationService::ClusterEntry {
  std::string name;
  ClusterSpec spec;
  BoeModel model;
  BoeTaskTimeSource boe_source;
  /// The active source (points at `boe_source` unless repointed) and the
  /// memo scope its entries are keyed under.
  const TaskTimeSource* source;
  std::string scope;

  ClusterEntry(std::string entry_name, const ClusterSpec& cluster)
      : name(std::move(entry_name)),
        spec(cluster),
        model(cluster.node),
        boe_source(model, Duration::Seconds(1)),
        source(&boe_source),
        scope(name) {}

  ClusterEntry(const ClusterEntry&) = delete;
  ClusterEntry& operator=(const ClusterEntry&) = delete;
};

EstimationService::EstimationService(ServiceOptions options)
    : options_(std::move(options)),
      flight_(options_.flight),
      slo_(options_.slo) {
  int threads = options_.threads;
  if (threads <= 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  options_.threads = threads;
  options_.max_queue_depth = std::max(1, options_.max_queue_depth);
  if (options_.watchdog_multiple > 0) {
    options_.watchdog_multiple = std::max(1.0, options_.watchdog_multiple);
    resilience::WatchdogOptions watchdog_options;
    watchdog_options.counter_name = "service.watchdog_cancels";
    watchdog_ = std::make_unique<resilience::Watchdog>(watchdog_options);
  }
  TenantRegistry::Options tenant_options;
  tenant_options.capacity_slots = options_.max_queue_depth;
  tenants_ = std::make_unique<TenantRegistry>(tenant_options);
  if (options_.overload_target_sojourn_ms > 0) {
    resilience::OverloadOptions overload_options = options_.overload;
    overload_options.target_sojourn_ms = options_.overload_target_sojourn_ms;
    overload_ =
        std::make_unique<resilience::OverloadController>(overload_options);
    // Ladder transitions into the flight recorder, same as breaker
    // transitions: the overload gauge only shows the current level, but a
    // post-mortem needs the escalation/recovery sequence with its timing.
    overload_->SetTransitionCallback([this](int from, int to) {
      flight_.AddEvent("overload", "brownout level " + std::to_string(from) +
                                       " -> " + std::to_string(to));
    });
  }
  pool_ = std::make_unique<ThreadPool>(threads);
  RegisterCluster("default", ClusterSpec::PaperCluster());
}

EstimationService::~EstimationService() { Drain(); }

Status EstimationService::RegisterWorkflow(const std::string& name,
                                           DagWorkflow flow) {
  if (name.empty()) {
    return Status::InvalidArgument("workflow name must be non-empty");
  }
  // Validate at the door: a registered flow is served many times, so the
  // firewall runs once here instead of surfacing per-request.
  if (Status valid = ValidateWorkflow(flow).ToStatus(name); !valid.ok()) {
    return valid;
  }
  auto shared = std::make_shared<const DagWorkflow>(std::move(flow));
  std::unique_lock lock(registry_mutex_);
  workflows_[name] = std::move(shared);
  return Status::Ok();
}

Status EstimationService::RegisterCluster(const std::string& name,
                                          const ClusterSpec& cluster) {
  if (name.empty()) {
    return Status::InvalidArgument("cluster name must be non-empty");
  }
  if (Status valid = ValidateClusterSpec(cluster).ToStatus(name); !valid.ok()) {
    return valid;
  }
  auto entry = std::make_shared<ClusterEntry>(name, cluster);
  std::unique_lock lock(registry_mutex_);
  clusters_[name] = std::move(entry);
  return Status::Ok();
}

Status EstimationService::RegisterSource(const std::string& cluster,
                                         const TaskTimeSource* source,
                                         const std::string& scope) {
  if (source == nullptr) {
    return Status::InvalidArgument("source must be non-null");
  }
  std::unique_lock lock(registry_mutex_);
  auto it = clusters_.find(cluster);
  if (it == clusters_.end()) {
    return Status::NotFound("cluster not registered: " + cluster);
  }
  // Rebuild the entry so in-flight requests keep the one they resolved.
  auto entry = std::make_shared<ClusterEntry>(cluster, it->second->spec);
  entry->source = source;
  entry->scope = scope;
  it->second = std::move(entry);
  return Status::Ok();
}

std::vector<std::string> EstimationService::WorkflowNames() const {
  std::shared_lock lock(registry_mutex_);
  std::vector<std::string> names;
  names.reserve(workflows_.size());
  for (const auto& [name, flow] : workflows_) names.push_back(name);
  return names;
}

Result<std::shared_ptr<const DagWorkflow>> EstimationService::ResolveFlow(
    const std::string& name, const std::shared_ptr<const DagWorkflow>& inline_flow,
    std::string* resolved_name) const {
  if (inline_flow != nullptr) {
    *resolved_name = inline_flow->name();
    return inline_flow;
  }
  if (name.empty()) {
    return Status::InvalidArgument("request names no workflow");
  }
  std::shared_lock lock(registry_mutex_);
  auto it = workflows_.find(name);
  if (it == workflows_.end()) {
    return Status::NotFound("workflow not registered: " + name);
  }
  *resolved_name = name;
  return it->second;
}

Result<std::shared_ptr<const EstimationService::ClusterEntry>>
EstimationService::ResolveCluster(const std::string& name) const {
  const std::string& key = name.empty() ? std::string("default") : name;
  std::shared_lock lock(registry_mutex_);
  auto it = clusters_.find(key);
  if (it == clusters_.end()) {
    return Status::NotFound("cluster not registered: " + key);
  }
  return it->second;
}

EstimationService::CostClass EstimationService::ClassifyCost(
    const ServiceRequest& request) const {
  std::string name;
  Result<std::shared_ptr<const DagWorkflow>> flow =
      ResolveFlow(request.workflow, request.flow, &name);
  if (!flow.ok()) return CostClass::kCheap;
  Result<std::shared_ptr<const ClusterEntry>> cluster =
      ResolveCluster(request.cluster);
  if (!cluster.ok()) return CostClass::kCheap;
  {
    std::lock_guard<std::mutex> lock(warm_mutex_);
    if (warm_keys_.count(WarmKey(cluster.value()->scope, name, request.nodes)) >
        0) {
      return CostClass::kWarm;
    }
  }
  return flow.value()->num_jobs() >= options_.expensive_job_threshold
             ? CostClass::kExpensive
             : CostClass::kCheap;
}

std::string EstimationService::WarmKey(const std::string& scope,
                                       const std::string& workflow,
                                       int nodes) {
  return scope + '|' + workflow + '|' + std::to_string(nodes);
}

void EstimationService::MarkWarm(const std::string& key) {
  std::lock_guard<std::mutex> lock(warm_mutex_);
  warm_keys_.insert(key);
}

double EstimationService::RetryAfterHintMs() const {
  if (overload_ != nullptr) return overload_->RetryAfterMs();
  // No controller: scale a base hint by queue fullness so a nearly-full
  // server spreads its retry storm wider than a briefly-full one.
  const double fullness =
      static_cast<double>(queue_depth_.load(std::memory_order_relaxed)) /
      static_cast<double>(options_.max_queue_depth);
  return 25.0 * (1.0 + std::clamp(fullness, 0.0, 1.0));
}

Status EstimationService::Admit(const std::string& tenant, CostClass cost) {
  // Claim a slot optimistically; back out when the bound is exceeded. The
  // transient overshoot is invisible (competing claimants also back out).
  const int depth = queue_depth_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (depth > options_.max_queue_depth) {
    queue_depth_.fetch_sub(1, std::memory_order_acq_rel);
    shed_.fetch_add(1, std::memory_order_relaxed);
    Metrics().shed.Add(1);
    tenants_->OnShed(tenant);
    return Status::ResourceExhausted(
               "admission queue full (" +
               std::to_string(options_.max_queue_depth) +
               " deep): retry with backoff")
        .WithRetryAfterMs(RetryAfterHintMs());
  }
  // Chaos seam: an injected rejection releases the slot it was granted, so
  // conservation (admitted == released) holds under any schedule.
  if (Status injected = resilience::InjectAt(AdmitFault()); !injected.ok()) {
    queue_depth_.fetch_sub(1, std::memory_order_acq_rel);
    return injected;
  }
  // Cost-aware overload shedding: the controller drops expensive cold work
  // first and warm work never (brownout exists to keep serving it).
  if (overload_ != nullptr &&
      overload_->ShouldShed(cost == CostClass::kWarm,
                            cost == CostClass::kExpensive)) {
    queue_depth_.fetch_sub(1, std::memory_order_acq_rel);
    shed_.fetch_add(1, std::memory_order_relaxed);
    Metrics().shed.Add(1);
    overload_->RecordShed();
    tenants_->OnShed(tenant);
    return Status::ResourceExhausted(
               "overloaded (brownout level " +
               std::to_string(overload_->level()) + "): shedding " +
               (cost == CostClass::kExpensive ? "expensive" : "cold") +
               " work, retry with backoff")
        .WithRetryAfterMs(overload_->RetryAfterMs());
  }
  // Tenant fair share (DRF) last, so a lone tenant sees exactly the global
  // queue-bound behaviour and only contended multi-tenant load diverges.
  if (Status fair = tenants_->Admit(tenant); !fair.ok()) {
    queue_depth_.fetch_sub(1, std::memory_order_acq_rel);
    shed_.fetch_add(1, std::memory_order_relaxed);
    Metrics().shed.Add(1);
    fair.set_retry_after_ms(RetryAfterHintMs());
    return fair;
  }
  Metrics().queue_depth.Set(depth);
  return Status::Ok();
}

void EstimationService::ReleaseSlot() {
  const int depth = queue_depth_.fetch_sub(1, std::memory_order_acq_rel) - 1;
  Metrics().queue_depth.Set(depth);
}

Result<WorkflowEstimate> EstimationService::Execute(
    const ServiceRequest& request, double submit_us, obs::RequestRecord* record,
    const std::shared_ptr<CoalesceGroup>& group) {
  const double start_us = obs::MonotonicUs();
  if (record != nullptr) record->start_us = start_us;
  // Feed the overload controller the queue sojourn every dequeued request
  // observed — including ones about to expire; their wait is exactly the
  // signal the controller exists to see.
  if (overload_ != nullptr) {
    overload_->ObserveSojourn((start_us - submit_us) * 1e-3, start_us);
  }
  const int brownout = overload_ != nullptr ? overload_->level() : 0;
  // A request can spend its whole budget waiting in the queue; detect that
  // here so an expired request costs a check, not an estimate.
  if (request.budget.exhausted()) {
    Status status = request.budget.Check("serve " + request.workflow);
    if (status.code() == ErrorCode::kDeadlineExceeded) {
      expired_in_queue_.fetch_add(1, std::memory_order_relaxed);
      Metrics().expired_in_queue.Add(1);
      if (record != nullptr) record->expired_in_queue = true;
    }
    return status;
  }

  std::string workflow_name;
  Result<std::shared_ptr<const DagWorkflow>> flow =
      ResolveFlow(request.workflow, request.flow, &workflow_name);
  if (!flow.ok()) return flow.status();
  Result<std::shared_ptr<const ClusterEntry>> cluster =
      ResolveCluster(request.cluster);
  if (!cluster.ok()) return cluster.status();
  const ClusterEntry& entry = **cluster;
  if (record != nullptr) {
    record->set_workflow(workflow_name);
    record->set_cluster(entry.name);
  }

  // The breaker gates the estimation path only — resolution failures above
  // are client errors and never open it. Every Allow() below is matched by
  // exactly one Record() on the way out.
  resilience::CircuitBreaker* breaker = BreakerFor(entry.name);
  if (breaker != nullptr) {
    if (Status allowed = breaker->Allow(); !allowed.ok()) {
      if (record != nullptr) record->breaker_rejected = true;
      return allowed;
    }
  }

  Result<WorkflowEstimate> result = [&]() -> Result<WorkflowEstimate> {
    if (Status injected = resilience::InjectAt(ExecuteFault()); !injected.ok()) {
      return injected;
    }

    std::optional<obs::ScopedSpan> span;
    if (obs::TraceRecorder::Default().enabled()) {
      span.emplace("serve " + workflow_name, "service");
      // Links the span to its RequestRecord in flight-recorder dumps.
      if (record != nullptr) {
        span->AddArg("request_id", static_cast<double>(record->id));
      }
    }

    ClusterSpec spec = entry.spec;
    if (request.nodes > 0) spec.num_nodes = request.nodes;

    EstimatorOptions estimator_options = options_.estimator;
    estimator_options.budget = request.budget;
    estimator_options.attribute_bottlenecks =
        request.explain || estimator_options.attribute_bottlenecks;
    // Brownout overlay (the resilience/overload.h ladder): level >= 1 drops
    // bottleneck attribution, level >= 2 additionally caps the state budget.
    // The answer is tagged degraded below so clients can re-query later.
    if (brownout >= 1) estimator_options.attribute_bottlenecks = false;
    if (brownout >= 2) {
      estimator_options.max_states =
          estimator_options.max_states > 0
              ? std::min(estimator_options.max_states,
                         options_.brownout_max_states)
              : options_.brownout_max_states;
    }

    // The warm path: every task-time query goes through the service-lifetime
    // memo, scoped by the cluster entry so hardware never aliases, and the
    // estimator resumes recurring workflows from the service-lifetime
    // checkpoint store (the cluster bits are part of the checkpoint key, so
    // re-registration can never resume from stale state).
    estimator_options.checkpoints = &checkpoints_;
    estimator_options.checkpoint_scope = entry.scope;
    // A coalesce leader computes for every attached caller: its execution
    // token observes the group's abandon signal instead of its own caller's
    // cancel, and this decorator is what eventually fires that signal once
    // every member has walked away.
    std::optional<AbandonPollSource> polled;
    const TaskTimeSource* source = entry.source;
    if (group != nullptr) {
      polled.emplace(*entry.source, [this, group] {
        std::lock_guard<std::mutex> lock(coalesce_mutex_);
        for (const CancelToken& member : group->member_cancels) {
          if (!member.cancelled()) return;
        }
        group->abandon.Cancel();
      });
      source = &*polled;
    }
    const MemoizedTaskTimeSource cached(*source, &memo_, entry.scope);
    const StateBasedEstimator estimator(spec, options_.scheduler,
                                        estimator_options);
    Result<DagEstimate> estimate = estimator.Estimate(**flow, cached);
    if (!estimate.ok()) {
      Status status = estimate.status();
      // A brownout state cap is the server's doing, not the workflow's:
      // rewrite the estimator's kInternal into retryable RESOURCE_EXHAUSTED
      // (with a retry hint) before the breaker sees it, so brownout never
      // opens the cluster breaker.
      if (brownout >= 2 && status.code() == ErrorCode::kInternal &&
          status.message().find("state limit exceeded") != std::string::npos) {
        return Status::ResourceExhausted(
                   "brownout (level " + std::to_string(brownout) +
                   ") state cap hit for " + workflow_name +
                   ": retry when the server recovers")
            .WithRetryAfterMs(RetryAfterHintMs());
      }
      return status;
    }

    WorkflowEstimate served;
    served.estimate = std::move(estimate).value();
    if (request.explain && brownout < 1) {
      served.critical_path = CriticalPath(served.estimate);
    }
    served.flow = std::move(flow).value();
    served.workflow = std::move(workflow_name);
    served.cluster = entry.name;
    served.degraded = brownout >= 1;
    served.degrade_level = brownout;
    // This triple now answers from warm state: cost classification stops
    // shedding it and brownout level 3 keeps serving it.
    MarkWarm(WarmKey(entry.scope, served.workflow, request.nodes));
    const double end_us = obs::MonotonicUs();
    served.queue_wait_ms = (start_us - submit_us) * 1e-3;
    served.service_ms = (end_us - start_us) * 1e-3;
    Metrics().queue_wait_us.Record(start_us - submit_us);
    Metrics().latency_us.Record(end_us - submit_us);
    if (record != nullptr) {
      // Cost-class attribution: the decorator is per-request, so its local
      // hit/miss counts are exactly this request's memo behaviour.
      record->states = static_cast<std::uint32_t>(served.estimate.states.size());
      record->resumed_states =
          static_cast<std::uint32_t>(served.estimate.resumed_states);
      record->memo_hits = cached.local_hits();
      record->memo_misses = cached.local_misses();
      if (record->resumed_states > 0) {
        record->path = obs::RequestPath::kIncremental;
        Metrics().path_incremental.Add(1);
      } else if (record->memo_hits > record->memo_misses) {
        record->path = obs::RequestPath::kMemoWarm;
        Metrics().path_memo_warm.Add(1);
      } else {
        record->path = obs::RequestPath::kFullReplay;
        Metrics().path_full_replay.Add(1);
      }
    }
    return served;
  }();

  // kCancelled is neutral to the breaker (Record releases the probe slot
  // without judging the path); the shutdown/watchdog rewrite happens in the
  // submit closure, after this record, so a shutdown burst cannot open it.
  if (breaker != nullptr) breaker->Record(result.status());
  return result;
}

resilience::CircuitBreaker* EstimationService::BreakerFor(
    const std::string& cluster) {
  if (options_.breaker_failure_threshold <= 0) return nullptr;
  std::lock_guard<std::mutex> lock(breakers_mutex_);
  std::unique_ptr<resilience::CircuitBreaker>& slot = breakers_[cluster];
  if (slot == nullptr) {
    resilience::CircuitBreakerOptions breaker_options;
    breaker_options.failure_threshold = options_.breaker_failure_threshold;
    breaker_options.open_seconds = options_.breaker_open_seconds;
    breaker_options.gauge_name =
        cluster == "default" ? "resilience.breaker_state"
                             : "resilience.breaker_state." + cluster;
    // Transition history into the flight recorder: the gauge above only
    // shows the last write, but a post-mortem needs the open/half-open/close
    // sequence with its timing. Runs under the breaker mutex — AddEvent only
    // takes the recorder's own (leaf) mutex, so no ordering cycle.
    breaker_options.on_transition = [this, cluster](
                                        resilience::BreakerState from,
                                        resilience::BreakerState to) {
      flight_.AddEvent("breaker", cluster + ": " +
                                      resilience::BreakerStateName(from) +
                                      " -> " +
                                      resilience::BreakerStateName(to));
    };
    slot = std::make_unique<resilience::CircuitBreaker>(breaker_options);
  }
  return slot.get();
}

Status EstimationService::MapCancelCause(const Status& status,
                                         const CancelToken& caller_cancel,
                                         obs::RequestRecord* record) {
  if (status.code() != ErrorCode::kCancelled) return status;
  if (shutdown_cancel_.cancelled()) {
    return Status::Unavailable(
        "service shut down before completion: retry against a healthy server");
  }
  if (!caller_cancel.cancelled()) {
    // Only the watchdog could have fired the request-scoped token.
    watchdog_fired_.fetch_add(1, std::memory_order_relaxed);
    if (record != nullptr) {
      record->watchdog_fired = true;
      // Cancelled requests are exactly the ones a post-mortem needs: pin the
      // fire as a structured event next to the (error-exemplared) record.
      flight_.AddEvent("watchdog",
                       std::string(record->workflow) + "@" + record->cluster +
                           ": hard wall-clock bound exceeded");
    }
    return Status::DeadlineExceeded(
        "cancelled by watchdog: exceeded the hard wall-clock bound (" +
        std::to_string(options_.watchdog_multiple) + "x deadline)");
  }
  return status;
}

std::string EstimationService::CoalesceKey(const ServiceRequest& request) const {
  std::string workflow_name;
  Result<std::shared_ptr<const DagWorkflow>> flow =
      ResolveFlow(request.workflow, request.flow, &workflow_name);
  if (!flow.ok()) return std::string();
  Result<std::shared_ptr<const ClusterEntry>> cluster =
      ResolveCluster(request.cluster);
  if (!cluster.ok()) return std::string();
  const ClusterEntry& entry = **cluster;

  // The same effective inputs Execute derives: node override folded into the
  // spec, explain folded into attribution. Two requests with equal keys run
  // the estimator over identical inputs and produce identical bits.
  ClusterSpec spec = entry.spec;
  if (request.nodes > 0) spec.num_nodes = request.nodes;
  EstimatorOptions estimator_options = options_.estimator;
  estimator_options.attribute_bottlenecks =
      request.explain || estimator_options.attribute_bottlenecks;

  std::string key;
  key.reserve(256);
  // Resolved names are part of the served answer (WorkflowEstimate carries
  // them), so structurally identical flows under different names never
  // coalesce into a response naming the wrong one.
  key += entry.name;
  key += '\x1f';
  key += workflow_name;
  key += '\x1f';
  key += request.explain ? '\1' : '\0';
  PrefixCheckpointStore::AppendGlobalFingerprint(
      entry.scope, spec, options_.scheduler, estimator_options, &key);
  const DagWorkflow& dag = **flow;
  for (JobId id = 0; id < dag.num_jobs(); ++id) {
    PrefixCheckpointStore::AppendJobFingerprint(dag, id, &key);
  }
  return key;
}

void EstimationService::FulfillWaiters(
    const std::shared_ptr<CoalesceGroup>& group,
    const Result<WorkflowEstimate>& leader_result) {
  std::vector<CoalesceGroup::Waiter> waiters;
  {
    // Erase before fulfilling: a request that finds the entry always
    // attaches to a computation that will still resolve it.
    std::lock_guard<std::mutex> lock(coalesce_mutex_);
    coalesce_.erase(group->key);
    waiters = std::move(group->waiters);
  }
  if (waiters.empty()) return;
  coalesce_leaders_.fetch_add(1, std::memory_order_relaxed);
  const double now_us = obs::MonotonicUs();
  for (CoalesceGroup::Waiter& waiter : waiters) {
    Result<WorkflowEstimate> result = [&]() -> Result<WorkflowEstimate> {
      // The waiter's own budget first: its cancel/deadline outcome is its
      // own regardless of how the leader fared.
      if (waiter.budget.exhausted()) {
        return MapCancelCause(waiter.budget.Check("serve " + waiter.workflow),
                              waiter.caller_cancel,
                              waiter.observe ? &waiter.record : nullptr);
      }
      if (leader_result.ok()) {
        WorkflowEstimate copy = leader_result.value();
        copy.coalesced = true;
        // The waiter's timing is its own: it waited from its submission to
        // this fulfilment and ran zero estimator states.
        copy.queue_wait_ms = (now_us - waiter.submit_us) * 1e-3;
        copy.service_ms = 0.0;
        return copy;
      }
      const ErrorCode code = leader_result.status().code();
      if (code == ErrorCode::kCancelled ||
          code == ErrorCode::kDeadlineExceeded) {
        // The leader died of its own budget (or the watchdog) — nothing
        // about the value itself. The waiter's own run would have carried
        // on, so resolve it retryable instead of inheriting the cancel.
        return Status::Unavailable(
                   "coalesced computation for " + waiter.workflow +
                   " was cancelled before completing: retry")
            .WithRetryAfterMs(RetryAfterHintMs());
      }
      // Deterministic failures (invalid input, state limits, breaker) would
      // be bit-identical on a re-run: propagate as-is.
      return leader_result.status();
    }();

    // Per-waiter accounting mirrors a normal request with zero execution:
    // tenant EMA sees free work, the flight/SLO records carry the waiter's
    // own wait, and its admission slot releases here.
    tenants_->OnExecuteStart(waiter.tenant);
    tenants_->OnDone(waiter.tenant, result.ok(), 0.0);
    if (result.ok()) {
      completed_.fetch_add(1, std::memory_order_relaxed);
      Metrics().completed.Add(1);
      Metrics().path_coalesced.Add(1);
    } else {
      failed_.fetch_add(1, std::memory_order_relaxed);
      Metrics().failed.Add(1);
    }
    if (waiter.observe) {
      waiter.record.start_us = now_us;
      waiter.record.end_us = obs::MonotonicUs();
      waiter.record.ok = result.ok();
      waiter.record.outcome_code =
          static_cast<std::uint8_t>(result.status().code());
      waiter.record.deadline_met =
          !waiter.record.had_deadline ||
          result.status().code() != ErrorCode::kDeadlineExceeded;
      if (result.ok()) {
        waiter.record.path = obs::RequestPath::kCoalesced;
        waiter.record.set_workflow(result.value().workflow);
        waiter.record.set_cluster(result.value().cluster);
      }
      flight_.Record(waiter.record);
      slo_.RecordOutcome(obs::OpClassFor(waiter.record.op),
                         waiter.record.total_us() * 1e-3, waiter.record.ok,
                         waiter.record.had_deadline,
                         waiter.record.deadline_met);
    }
    ReleaseSlot();
    waiter.done(std::move(result));
  }
}

void EstimationService::SubmitEstimateImpl(
    ServiceRequest request, std::function<void(Result<WorkflowEstimate>)> done) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  Metrics().submitted.Add(1);

  // Request observability is armed with the metrics flag: when off, `record`
  // stays a dead stack object and every recording site below is skipped —
  // the disarmed cost is this one relaxed load (plus the zero-init).
  const bool observe = obs::MetricsEnabled();
  obs::RequestRecord record;
  if (observe) {
    record.id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
    record.set_op(request.explain ? "explain" : "estimate");
    record.set_workflow(request.workflow);
    record.set_cluster(request.cluster);
    record.submit_us = obs::MonotonicUs();
  }
  // Synchronous rejections (draining / shed) still leave a record: error
  // rates and the flight recorder must see the requests that never ran.
  const auto reject = [&](Status status) {
    if (observe) {
      record.start_us = record.end_us = obs::MonotonicUs();
      record.ok = false;
      record.outcome_code = static_cast<std::uint8_t>(status.code());
      record.shed = status.code() == ErrorCode::kResourceExhausted;
      flight_.Record(record);
      slo_.RecordOutcome(obs::OpClassFor(record.op), record.total_us() * 1e-3,
                         false, false, true);
    }
    done(Result<WorkflowEstimate>(std::move(status)));
  };

  // Shared lock: many Submits run concurrently; Drain's unique lock ensures
  // no Submit is between the draining check and the pool enqueue when the
  // pool starts waiting.
  std::shared_lock admission(admission_mutex_);
  if (draining_.load(std::memory_order_acquire)) {
    reject(Status::FailedPrecondition("service is draining"));
    return;
  }
  const std::string tenant = TenantRegistry::Canonical(request.tenant);
  if (Status admitted = Admit(tenant, ClassifyCost(request)); !admitted.ok()) {
    reject(std::move(admitted));
    return;
  }

  if (options_.default_deadline_seconds > 0 && request.budget.deadline.never()) {
    request.budget.deadline =
        Deadline::AfterSeconds(options_.default_deadline_seconds);
  }
  record.had_deadline = !request.budget.deadline.never();
  const CancelToken caller_cancel = request.budget.cancel;

  // Singleflight: attach to an identical in-flight computation instead of
  // queueing a duplicate. The waiter keeps its admission slot (it is real
  // load until answered) but never takes a pool task — the leader's worker
  // resolves it. Skipped under brownout: degraded answers are shaped by the
  // ladder level at execution time, which identical requests submitted at
  // different moments need not share.
  std::shared_ptr<CoalesceGroup> group;
  if (options_.coalescing && request.coalesce &&
      (overload_ == nullptr || overload_->level() == 0)) {
    std::string key = CoalesceKey(request);
    if (!key.empty()) {
      std::lock_guard<std::mutex> lock(coalesce_mutex_);
      auto it = coalesce_.find(key);
      if (it != coalesce_.end()) {
        CoalesceGroup::Waiter waiter;
        waiter.done = std::move(done);
        waiter.budget.cancel =
            CancelToken::LinkedTo({caller_cancel, shutdown_cancel_});
        waiter.budget.deadline = request.budget.deadline;
        waiter.caller_cancel = caller_cancel;
        waiter.workflow = request.workflow.empty() && request.flow != nullptr
                              ? request.flow->name()
                              : request.workflow;
        waiter.tenant = tenant;
        waiter.record = record;
        waiter.observe = observe;
        waiter.submit_us = obs::MonotonicUs();
        it->second->member_cancels.push_back(caller_cancel);
        it->second->waiters.push_back(std::move(waiter));
        coalesce_attached_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      group = std::make_shared<CoalesceGroup>();
      group->key = std::move(key);
      group->member_cancels.push_back(caller_cancel);
      coalesce_.emplace(group->key, group);
    }
  }

  // Request-scoped token: what the watchdog fires and the execution polls.
  // An uncoalesced request observes its caller's cancel and the service-wide
  // shutdown signal; a coalesce leader computes for the whole group, so it
  // observes the group-abandon signal (all members cancelled) instead of its
  // own caller alone. Cancelling the execution token never propagates to
  // the caller's token, so MapCancelCause can still tell the signals apart.
  request.budget.cancel =
      group != nullptr
          ? CancelToken::LinkedTo({group->abandon, shutdown_cancel_})
          : CancelToken::LinkedTo({caller_cancel, shutdown_cancel_});
  std::uint64_t watch_id = 0;
  if (watchdog_ != nullptr && !request.budget.deadline.never()) {
    watch_id = watchdog_->Watch(
        request.budget.cancel,
        request.budget.deadline.remaining_seconds() * options_.watchdog_multiple);
  }

  const double submit_us = obs::MonotonicUs();
  pool_->Submit([this, request = std::move(request), done = std::move(done),
                 submit_us, caller_cancel, watch_id, record, observe, tenant,
                 group]() mutable {
    tenants_->OnExecuteStart(tenant);
    const double exec_start_us = obs::MonotonicUs();
    Result<WorkflowEstimate> result =
        Execute(request, submit_us, observe ? &record : nullptr, group);
    // Execution time only (not queue wait): the EMA this feeds prices the
    // tenant's future admissions, and waiting is not the tenant's cost.
    const double exec_ms = (obs::MonotonicUs() - exec_start_us) * 1e-3;
    if (watch_id != 0) watchdog_->Unwatch(watch_id);
    if (!result.ok()) {
      result = Result<WorkflowEstimate>(MapCancelCause(
          result.status(), caller_cancel, observe ? &record : nullptr));
    }
    tenants_->OnDone(tenant, result.ok(), exec_ms);
    if (result.ok()) {
      completed_.fetch_add(1, std::memory_order_relaxed);
      Metrics().completed.Add(1);
    } else {
      failed_.fetch_add(1, std::memory_order_relaxed);
      Metrics().failed.Add(1);
    }
    const TaskTimeMemo::Stats cache = memo_.stats();
    Metrics().cache_hit_rate.Set(cache.hit_rate());
    if (observe) {
      record.end_us = obs::MonotonicUs();
      record.ok = result.ok();
      record.outcome_code =
          static_cast<std::uint8_t>(result.status().code());
      record.deadline_met =
          !record.had_deadline ||
          result.status().code() != ErrorCode::kDeadlineExceeded;
      flight_.Record(record);
      slo_.RecordOutcome(obs::OpClassFor(record.op), record.total_us() * 1e-3,
                         record.ok, record.had_deadline, record.deadline_met);
    }
    ReleaseSlot();
    // Waiters resolve before the leader's own callback: attached requests
    // were submitted earlier and should not queue behind the leader's
    // continuation.
    if (group != nullptr) FulfillWaiters(group, result);
    done(std::move(result));
  });
}

std::future<Result<WorkflowEstimate>> EstimationService::SubmitEstimateFuture(
    ServiceRequest request) {
  auto promise = std::make_shared<std::promise<Result<WorkflowEstimate>>>();
  std::future<Result<WorkflowEstimate>> future = promise->get_future();
  SubmitEstimateImpl(std::move(request),
                     [promise](Result<WorkflowEstimate> result) {
                       promise->set_value(std::move(result));
                     });
  return future;
}

std::future<Result<ServiceSweepResult>> EstimationService::SubmitSweepFuture(
    ServiceSweepRequest request) {
  auto promise = std::make_shared<std::promise<Result<ServiceSweepResult>>>();
  std::future<Result<ServiceSweepResult>> future = promise->get_future();
  SubmitSweepImpl(std::move(request),
                  [promise](Result<ServiceSweepResult> result) {
                    promise->set_value(std::move(result));
                  });
  return future;
}

std::future<Result<EstimateResponse>> EstimationService::Submit(
    EstimateRequest request) {
  auto promise = std::make_shared<std::promise<Result<EstimateResponse>>>();
  std::future<Result<EstimateResponse>> future = promise->get_future();
  if (request.is_sweep()) {
    SubmitSweepImpl(request.ToSweep(),
                    [promise](Result<ServiceSweepResult> result) {
                      if (!result.ok()) {
                        promise->set_value(
                            Result<EstimateResponse>(result.status()));
                        return;
                      }
                      EstimateResponse response;
                      response.sweep = std::move(result).value();
                      promise->set_value(std::move(response));
                    });
  } else {
    SubmitEstimateImpl(request.ToEstimate(),
                       [promise](Result<WorkflowEstimate> result) {
                         if (!result.ok()) {
                           promise->set_value(
                               Result<EstimateResponse>(result.status()));
                           return;
                         }
                         EstimateResponse response;
                         response.estimate = std::move(result).value();
                         promise->set_value(std::move(response));
                       });
  }
  return future;
}

std::vector<std::future<Result<EstimateResponse>>>
EstimationService::SubmitBatch(std::vector<EstimateRequest> requests) {
  std::vector<std::future<Result<EstimateResponse>>> futures;
  futures.reserve(requests.size());
  for (EstimateRequest& request : requests) {
    futures.push_back(Submit(std::move(request)));
  }
  return futures;
}

std::future<Result<WorkflowEstimate>> EstimationService::Submit(
    ServiceRequest request) {
  return SubmitEstimateFuture(std::move(request));
}

std::vector<std::future<Result<WorkflowEstimate>>> EstimationService::SubmitBatch(
    std::vector<ServiceRequest> requests) {
  std::vector<std::future<Result<WorkflowEstimate>>> futures;
  futures.reserve(requests.size());
  for (ServiceRequest& request : requests) {
    futures.push_back(SubmitEstimateFuture(std::move(request)));
  }
  return futures;
}

void EstimationService::SubmitSweepImpl(
    ServiceSweepRequest request,
    std::function<void(Result<ServiceSweepResult>)> done) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  Metrics().submitted.Add(1);

  const bool observe = obs::MetricsEnabled();
  obs::RequestRecord record;
  if (observe) {
    record.id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
    record.set_op("sweep");
    record.set_workflow(request.workflow);
    record.set_cluster(request.cluster);
    record.submit_us = obs::MonotonicUs();
  }
  const auto reject = [&](Status status) {
    if (observe) {
      record.start_us = record.end_us = obs::MonotonicUs();
      record.ok = false;
      record.outcome_code = static_cast<std::uint8_t>(status.code());
      record.shed = status.code() == ErrorCode::kResourceExhausted;
      flight_.Record(record);
      slo_.RecordOutcome(obs::OpClass::kSweep, record.total_us() * 1e-3, false,
                         false, true);
    }
    done(Result<ServiceSweepResult>(std::move(status)));
  };

  std::shared_lock admission(admission_mutex_);
  if (draining_.load(std::memory_order_acquire)) {
    reject(Status::FailedPrecondition("service is draining"));
    return;
  }
  const std::string tenant = TenantRegistry::Canonical(request.tenant);
  // A sweep is many estimates on one slot — always expensive work to the
  // overload controller, so brownout sheds batch capacity-planning first.
  if (Status admitted = Admit(tenant, CostClass::kExpensive); !admitted.ok()) {
    reject(std::move(admitted));
    return;
  }
  if (options_.default_deadline_seconds > 0 && request.budget.deadline.never()) {
    request.budget.deadline =
        Deadline::AfterSeconds(options_.default_deadline_seconds);
  }
  record.had_deadline = !request.budget.deadline.never();
  // Sweeps observe shutdown too (cancelled candidates surface per-candidate
  // inside the sweep result); no watchdog — a sweep is many estimates, each
  // already bounded by the shared budget.
  request.budget.cancel =
      CancelToken::LinkedTo({request.budget.cancel, shutdown_cancel_});

  const double submit_us = obs::MonotonicUs();
  pool_->Submit([this, request = std::move(request), done = std::move(done),
                 record, observe, tenant, submit_us]() mutable {
    const double start_us = obs::MonotonicUs();
    record.start_us = start_us;
    tenants_->OnExecuteStart(tenant);
    if (overload_ != nullptr) {
      overload_->ObserveSojourn((start_us - submit_us) * 1e-3, start_us);
    }
    const auto finish = [&](Result<ServiceSweepResult> result) {
      tenants_->OnDone(tenant, result.ok(),
                       (obs::MonotonicUs() - start_us) * 1e-3);
      if (result.ok()) {
        completed_.fetch_add(1, std::memory_order_relaxed);
        Metrics().completed.Add(1);
      } else {
        failed_.fetch_add(1, std::memory_order_relaxed);
        Metrics().failed.Add(1);
      }
      if (observe) {
        record.end_us = obs::MonotonicUs();
        record.ok = result.ok();
        record.outcome_code =
            static_cast<std::uint8_t>(result.status().code());
        record.deadline_met =
            !record.had_deadline ||
            result.status().code() != ErrorCode::kDeadlineExceeded;
        if (result.ok()) {
          const SweepStats& stats = result.value().sweep.stats;
          record.resumed_states =
              static_cast<std::uint32_t>(stats.resumed_states);
          record.path = stats.resumed_states > 0
                            ? obs::RequestPath::kIncremental
                            : (stats.cache_hit_rate > 0.5
                                   ? obs::RequestPath::kMemoWarm
                                   : obs::RequestPath::kFullReplay);
        }
        flight_.Record(record);
        slo_.RecordOutcome(obs::OpClass::kSweep, record.total_us() * 1e-3,
                           record.ok, record.had_deadline,
                           record.deadline_met);
      }
      ReleaseSlot();
      done(std::move(result));
    };
    if (request.nodes_list.empty()) {
      finish(Status::InvalidArgument("sweep has an empty nodes list"));
      return;
    }
    std::string workflow_name;
    Result<std::shared_ptr<const DagWorkflow>> flow =
        ResolveFlow(request.workflow, request.flow, &workflow_name);
    if (!flow.ok()) {
      finish(flow.status());
      return;
    }
    Result<std::shared_ptr<const ClusterEntry>> cluster =
        ResolveCluster(request.cluster);
    if (!cluster.ok()) {
      finish(cluster.status());
      return;
    }
    const ClusterEntry& entry = **cluster;
    std::vector<SweepCandidate> candidates;
    candidates.reserve(request.nodes_list.size());
    for (int nodes : request.nodes_list) {
      ClusterSpec spec = entry.spec;
      spec.num_nodes = nodes;
      candidates.push_back(
          {flow.value().get(), spec, workflow_name + "@" + std::to_string(nodes)});
    }
    SweepOptions sweep_options;
    sweep_options.memo = &memo_;
    sweep_options.cache_scope = entry.scope;
    sweep_options.checkpoints = &checkpoints_;
    // Candidates fan out across the service pool; the worker running this
    // closure participates (ParallelFor is nest-safe), so a sweep uses idle
    // capacity without a second pool.
    sweep_options.pool = pool_.get();
    sweep_options.budget = request.budget;
    sweep_options.estimator = options_.estimator;
    // Straggler hedging: the request's own options when it set them, else
    // the service-wide default (off unless the operator opted in).
    sweep_options.hedge =
        request.hedge.enabled ? request.hedge : options_.hedge;
    ServiceSweepResult result;
    result.sweep =
        EstimateBatch(candidates, options_.scheduler, *entry.source, sweep_options);
    result.nodes_list = request.nodes_list;
    result.workflow = std::move(workflow_name);
    result.cluster = entry.name;
    result.service_ms = (obs::MonotonicUs() - start_us) * 1e-3;
    const TaskTimeMemo::Stats cache = memo_.stats();
    Metrics().cache_hit_rate.Set(cache.hit_rate());
    finish(std::move(result));
  });
}

std::future<Result<ServiceSweepResult>> EstimationService::SubmitSweep(
    ServiceSweepRequest request) {
  return SubmitSweepFuture(std::move(request));
}

void EstimationService::ResetWarmState() {
  memo_.Clear();
  checkpoints_.Clear();
  {
    // The warm-work set mirrors the caches: cleared state is cold state,
    // and cost classification must see it that way.
    std::lock_guard<std::mutex> lock(warm_mutex_);
    warm_keys_.clear();
  }
  stats_epoch_.fetch_add(1, std::memory_order_relaxed);
  Metrics().reset_epoch.Add(1);
  // Recompute the rate gauges from the post-reset counters: a scrape after
  // this point sees rates of the new epoch only, never a blend of the old
  // epoch's numerator with the new epoch's denominator. The queue-depth
  // gauge is re-set too — drain-path sheds can leave it at a stale depth.
  Metrics().cache_hit_rate.Set(memo_.stats().hit_rate());
  Metrics().queue_depth.Set(queue_depth_.load(std::memory_order_relaxed));
}

Status EstimationService::SaveSnapshot(const std::string& path) {
  SnapshotStats snapshot_stats;
  Status status = SaveWarmSnapshot(path, memo_, checkpoints_, &snapshot_stats);
  if (status.ok()) {
    static obs::Counter& saves =
        obs::MetricsRegistry::Default().GetCounter("service.snapshot_saves");
    saves.Add(1);
    flight_.AddEvent(
        "snapshot", "saved " + std::to_string(snapshot_stats.memo_entries) +
                        " memo entries + " +
                        std::to_string(snapshot_stats.checkpoints) +
                        " checkpoints (" +
                        std::to_string(snapshot_stats.bytes) + " bytes)");
  } else {
    flight_.AddEvent("snapshot", "save failed: " + status.message());
  }
  return status;
}

Status EstimationService::LoadSnapshot(const std::string& path) {
  SnapshotStats snapshot_stats;
  Status status = LoadWarmSnapshot(path, &memo_, &checkpoints_, &snapshot_stats);
  if (status.ok()) {
    static obs::Counter& loads =
        obs::MetricsRegistry::Default().GetCounter("service.snapshot_loads");
    loads.Add(1);
    flight_.AddEvent(
        "snapshot", "restored " + std::to_string(snapshot_stats.memo_entries) +
                        " memo entries + " +
                        std::to_string(snapshot_stats.checkpoints) +
                        " checkpoints");
    // Restored triples are warm again the first time they are served;
    // nothing to pre-seed in warm_keys_ — classification heals per serve.
  } else {
    flight_.AddEvent("snapshot", "restore rejected: " + status.message());
  }
  return status;
}

Status EstimationService::LoadSnapshotForScope(const std::string& path,
                                               const std::string& scope) {
  {
    std::shared_lock lock(registry_mutex_);
    bool registered = false;
    for (const auto& [name, entry] : clusters_) {
      if (entry->scope == scope) {
        registered = true;
        break;
      }
    }
    if (!registered) {
      // A shard must not warm up state it cannot serve: keys for an
      // unregistered scope would sit dead in the memo forever.
      const Status status = Status::NotFound(
          "snapshot scope '" + scope + "' is not registered on this service");
      flight_.AddEvent("snapshot", "scoped restore rejected: " +
                                       status.message());
      return status;
    }
  }
  SnapshotStats snapshot_stats;
  Status status = LoadWarmSnapshotForScope(path, scope, &memo_, &checkpoints_,
                                           &snapshot_stats);
  if (status.ok()) {
    static obs::Counter& loads =
        obs::MetricsRegistry::Default().GetCounter("service.snapshot_loads");
    loads.Add(1);
    flight_.AddEvent(
        "snapshot", "restored scope '" + scope + "': " +
                        std::to_string(snapshot_stats.memo_entries) +
                        " memo entries + " +
                        std::to_string(snapshot_stats.checkpoints) +
                        " checkpoints");
  } else {
    flight_.AddEvent("snapshot",
                     "scoped restore rejected: " + status.message());
  }
  return status;
}

Result<int> EstimationService::Drain() {
  {
    // Unique lock: every in-flight Submit finishes its pool enqueue before
    // the flag flips, so Wait() below observes all of them and the
    // ThreadPool "no Submit after Wait" contract holds.
    std::unique_lock admission(admission_mutex_);
    draining_.store(true, std::memory_order_release);
  }
  const int inflight = queue_depth_.load(std::memory_order_acquire);
  pool_->Wait();
  if (!drain_reset_done_.exchange(true, std::memory_order_acq_rel)) {
    flight_.AddEvent("drain", "pool quiesced with " +
                                  std::to_string(inflight) +
                                  " in flight; warm state reset");
    // Snapshot before the reset wipes the warmth — best-effort: a failed
    // save is a flight event and a cold next boot, never a failed drain.
    if (!options_.snapshot_path.empty()) {
      (void)SaveSnapshot(options_.snapshot_path);
    }
    ResetWarmState();
  }
  return inflight;
}

EstimationService::ShutdownReport EstimationService::Shutdown(
    double grace_seconds) {
  ShutdownReport report;
  const double start_us = obs::MonotonicUs();
  {
    // Same ordering contract as Drain: every in-flight Submit finishes its
    // pool enqueue before the flag flips.
    std::unique_lock admission(admission_mutex_);
    draining_.store(true, std::memory_order_release);
  }
  report.inflight_at_shutdown = queue_depth_.load(std::memory_order_acquire);
  const Deadline grace = Deadline::AfterSeconds(std::max(0.0, grace_seconds));
  while (queue_depth_.load(std::memory_order_acquire) > 0 && !grace.expired()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  report.cancelled = queue_depth_.load(std::memory_order_acquire);
  report.graceful = report.cancelled == 0;
  if (!report.graceful) {
    // Grace expired with work still running: fire the service-wide token.
    // Every remaining request unwinds at its next budget poll and its
    // future resolves (via MapCancelCause) to UNAVAILABLE{retryable}.
    shutdown_cancel_.Cancel();
  }
  pool_->Wait();
  report.waited_seconds = (obs::MonotonicUs() - start_us) * 1e-6;
  if (!drain_reset_done_.exchange(true, std::memory_order_acq_rel)) {
    flight_.AddEvent("shutdown",
                     report.graceful
                         ? "graceful: all in-flight work drained"
                         : "grace expired: cancelled " +
                               std::to_string(report.cancelled) + " request" +
                               (report.cancelled == 1 ? "" : "s"));
    if (!options_.snapshot_path.empty()) {
      (void)SaveSnapshot(options_.snapshot_path);
    }
    ResetWarmState();
  }
  return report;
}

ServiceStats EstimationService::Stats() const {
  ServiceStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.expired_in_queue = expired_in_queue_.load(std::memory_order_relaxed);
  stats.watchdog_fired = watchdog_fired_.load(std::memory_order_relaxed);
  stats.stats_epoch = stats_epoch_.load(std::memory_order_relaxed);
  stats.coalesce_leaders = coalesce_leaders_.load(std::memory_order_relaxed);
  stats.coalesce_attached = coalesce_attached_.load(std::memory_order_relaxed);
  stats.queue_depth = queue_depth_.load(std::memory_order_relaxed);
  stats.draining = draining_.load(std::memory_order_relaxed);
  stats.ready = !stats.draining;
  stats.shard_id = options_.shard_id;
  {
    std::shared_lock lock(registry_mutex_);
    stats.workflows = static_cast<int>(workflows_.size());
    stats.clusters = static_cast<int>(clusters_.size());
  }
  stats.cache = memo_.stats();
  stats.incremental = checkpoints_.stats();
  stats.tenants = tenants_->Stats();
  if (overload_ != nullptr) {
    const resilience::OverloadController::Stats overload = overload_->stats();
    stats.overload_level = overload.level;
    stats.overload_shed = overload.shed;
  }
  return stats;
}

}  // namespace dagperf
