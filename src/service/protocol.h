#ifndef DAGPERF_SERVICE_PROTOCOL_H_
#define DAGPERF_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "service/service.h"

namespace dagperf {

/// The service wire protocol: newline-delimited JSON, one request document
/// per line in, one response document per line out. Versioned and stable —
/// see docs/api.md for the full contract. Requests:
///
///   {"op": "estimate", "workflow": "tpch-q16", "cluster": "default",
///    "nodes": 8, "deadline_s": 1.5, "id": 7}
///   {"op": "explain",  ... same fields ...}
///   {"op": "sweep",    "workflow": "...", "nodes_list": [2, 4, 8, 16]}
///   {"op": "stats"}
///   {"op": "drain"}
///
/// `workflow` names a registered flow; an inline `"flow": {...}` document
/// (dag/spec_io.h format) may be sent instead. `id` is any JSON value and is
/// echoed verbatim on the response so clients can match pipelined replies.
///
/// Responses:
///   {"id": 7, "ok": true,  "result": {...}}
///   {"id": 7, "ok": false, "error": {"code": "RESOURCE_EXHAUSTED",
///                                    "retryable": true, "message": "..."}}
///
/// Error codes are the stable ErrorCodeName vocabulary (common/status.h);
/// `retryable` mirrors IsRetryable so clients can back off mechanically. Two
/// protocol-level failures answer with an explicit `"id": null` (the line
/// never yielded a request object to echo an id from): malformed JSON comes
/// back as `PARSE_ERROR{retryable: false}`, and transports answer oversized
/// frames with INVALID_ARGUMENT via TransportErrorLine.
class Protocol {
 public:
  explicit Protocol(EstimationService* service);

  /// Handles one request line and returns the response line (compact JSON,
  /// no trailing newline). Never throws and never returns malformed output:
  /// parse failures, unknown ops, and service errors all come back as
  /// well-formed error responses. Blocks until the service fulfils the
  /// request (transports provide concurrency, the protocol stays pipelined).
  std::string HandleLine(const std::string& line);

  /// Whether a drain request was handled — transports stop reading then.
  bool drain_requested() const { return drain_requested_; }

  /// A protocol-shaped error line (`{"id":null,"ok":false,"error":{...}}`,
  /// no trailing newline) for failures detected by the transport itself —
  /// oversized frames, framing violations — so every answered line on the
  /// wire has the one response shape.
  static std::string TransportErrorLine(const Status& status);

  std::uint64_t requests_handled() const { return requests_handled_; }

 private:
  EstimationService* service_;
  bool drain_requested_ = false;
  std::uint64_t requests_handled_ = 0;
};

}  // namespace dagperf

#endif  // DAGPERF_SERVICE_PROTOCOL_H_
