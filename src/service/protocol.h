#ifndef DAGPERF_SERVICE_PROTOCOL_H_
#define DAGPERF_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/json.h"
#include "service/service.h"

namespace dagperf {

/// The service wire protocol: newline-delimited JSON, one request document
/// per line in, one response document per line out. Versioned and stable —
/// see docs/api.md for the full contract. Requests:
///
///   {"op": "estimate", "workflow": "tpch-q16", "cluster": "default",
///    "nodes": 8, "deadline_s": 1.5, "id": 7}
///   {"op": "explain",  ... same fields ...}
///   {"op": "sweep",    "workflow": "...", "nodes_list": [2, 4, 8, 16]}
///   {"op": "stats"}
///   {"op": "slo"}             -- windowed SLO report (10s/1m/5m, burn rates)
///   {"op": "flightrecorder"}  -- last-N request records + exemplars + events
///   {"op": "metrics"}         -- full registry ("format": "prom" for
///                                Prometheus text in result.text)
///   {"op": "watch", "interval_ms": 1000, "count": 10}
///                             -- streaming stats/SLO frames (see below)
///   {"op": "drain"}
///
/// `workflow` names a registered flow; an inline `"flow": {...}` document
/// (dag/spec_io.h format) may be sent instead. `id` is any JSON value and is
/// echoed verbatim on the response so clients can match pipelined replies.
///
/// Responses:
///   {"id": 7, "ok": true,  "result": {...}}
///   {"id": 7, "ok": false, "error": {"code": "RESOURCE_EXHAUSTED",
///                                    "retryable": true, "message": "..."}}
///
/// Error codes are the stable ErrorCodeName vocabulary (common/status.h);
/// `retryable` mirrors IsRetryable so clients can back off mechanically. Two
/// protocol-level failures answer with an explicit `"id": null` (the line
/// never yielded a request object to echo an id from): malformed JSON comes
/// back as `PARSE_ERROR{retryable: false}`, and transports answer oversized
/// frames with INVALID_ARGUMENT via TransportErrorLine.
class Protocol {
 public:
  explicit Protocol(EstimationService* service);

  /// Handles one request line and returns the response line (compact JSON,
  /// no trailing newline). Never throws and never returns malformed output:
  /// parse failures, unknown ops, and service errors all come back as
  /// well-formed error responses. Blocks until the service fulfils the
  /// request (transports provide concurrency, the protocol stays pipelined).
  /// A `watch` op through this entry point yields exactly one frame (the
  /// one-line-in/one-line-out contract holds on every transport).
  std::string HandleLine(const std::string& line);

  /// Receives one complete response line (no trailing newline); returns
  /// false to stop the op early (client disconnected, transport closing).
  using LineSink = std::function<bool(const std::string&)>;

  /// Streaming entry point used by the transports: non-streaming ops emit
  /// exactly the HandleLine response through `sink`; `watch` pushes one
  /// stats/SLO frame every `interval_ms` (default 1000, clamped to
  /// [10, 60000]) until `count` frames were sent (0 = unbounded), the sink
  /// returns false, or the service starts draining. Every frame is a
  /// complete response document echoing the request id.
  void HandleLineStreaming(const std::string& line, const LineSink& sink);

  /// Whether a drain request was handled — transports stop reading then.
  bool drain_requested() const { return drain_requested_; }

  /// A protocol-shaped error line (`{"id":null,"ok":false,"error":{...}}`,
  /// no trailing newline) for failures detected by the transport itself —
  /// oversized frames, framing violations — so every answered line on the
  /// wire has the one response shape.
  static std::string TransportErrorLine(const Status& status);

  std::uint64_t requests_handled() const { return requests_handled_; }

 private:
  /// Dispatches one parsed request object (shared by both entry points).
  std::string HandleRequest(const Json& request);

  /// The watch loop; `single_frame` is the HandleLine path.
  void RunWatch(const Json& request, const Json* id, const LineSink& sink,
                bool single_frame);

  EstimationService* service_;
  bool drain_requested_ = false;
  std::uint64_t requests_handled_ = 0;
};

}  // namespace dagperf

#endif  // DAGPERF_SERVICE_PROTOCOL_H_
