#include "service/metrics_http.h"

#include <cerrno>
#include <cstring>
#include <string>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/metrics.h"
#include "obs/prom.h"

namespace dagperf {

namespace {

constexpr int kPollIntervalMs = 50;
/// Headers past this size are dropped — a scraper sends a one-line GET.
constexpr std::size_t kMaxHeaderBytes = 8192;
/// A peer that cannot finish its one-line request in this long is cut loose.
constexpr double kHeaderTimeoutSeconds = 5.0;

Status SocketError(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

bool SendAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::string HttpResponse(int code, const std::string& reason,
                         const std::string& content_type,
                         const std::string& body) {
  std::string out = "HTTP/1.0 " + std::to_string(code) + " " + reason + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

/// Reads until the end of the request headers (blank line), with a byte cap
/// and a wall-clock bound. Returns false when the request never completed.
bool ReadRequestHead(int fd, const CancelToken& stop, std::string* head) {
  char chunk[1024];
  const double start_us = obs::MonotonicUs();
  while (!stop.cancelled()) {
    if (head->find("\r\n\r\n") != std::string::npos ||
        head->find("\n\n") != std::string::npos) {
      return true;
    }
    if (head->size() > kMaxHeaderBytes) return false;
    if ((obs::MonotonicUs() - start_us) * 1e-6 > kHeaderTimeoutSeconds) {
      return false;
    }
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollIntervalMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (ready == 0) continue;
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) {
      // EOF before the blank line — but a bare "GET /metrics\n" from netcat
      // deserves an answer too; accept any complete first line.
      return head->find('\n') != std::string::npos;
    }
    head->append(chunk, static_cast<std::size_t>(n));
  }
  return false;
}

void AnswerScrape(int fd, const MetricsHttpOptions& options) {
  std::string head;
  if (!ReadRequestHead(fd, options.stop, &head)) return;
  // Request line: METHOD SP TARGET [SP VERSION].
  const std::size_t line_end = head.find_first_of("\r\n");
  const std::string request_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const std::size_t method_end = request_line.find(' ');
  std::string method = request_line.substr(0, method_end);
  std::string target;
  if (method_end != std::string::npos) {
    const std::size_t target_start = method_end + 1;
    const std::size_t target_end = request_line.find(' ', target_start);
    target = request_line.substr(target_start, target_end == std::string::npos
                                                   ? std::string::npos
                                                   : target_end - target_start);
  }
  if (const std::size_t query = target.find('?'); query != std::string::npos) {
    target.resize(query);
  }

  if (method != "GET") {
    SendAll(fd, HttpResponse(405, "Method Not Allowed", "text/plain",
                             "only GET is served\n"));
    return;
  }
  if (target == "/metrics") {
    if (options.before_scrape) options.before_scrape();
    SendAll(fd,
            HttpResponse(200, "OK", "text/plain; version=0.0.4; charset=utf-8",
                         obs::WritePrometheusText()));
    return;
  }
  if (target == "/" || target == "/healthz") {
    SendAll(fd, HttpResponse(200, "OK", "text/plain",
                             "ok — metrics at /metrics\n"));
    return;
  }
  SendAll(fd, HttpResponse(404, "Not Found", "text/plain",
                           "not found — metrics at /metrics\n"));
}

}  // namespace

Result<MetricsHttpSummary> ServeMetricsHttp(const MetricsHttpOptions& options) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) return SocketError("socket");
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options.port));
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    const Status status = SocketError("bind");
    ::close(listen_fd);
    return status;
  }
  if (::listen(listen_fd, 16) < 0) {
    const Status status = SocketError("listen");
    ::close(listen_fd);
    return status;
  }
  if (options.on_listen) {
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound),
                      &bound_len) == 0) {
      options.on_listen(static_cast<int>(ntohs(bound.sin_port)));
    }
  }

  MetricsHttpSummary summary;
  while (!options.stop.cancelled()) {
    if (options.max_requests > 0 &&
        summary.requests >= static_cast<std::uint64_t>(options.max_requests)) {
      break;
    }
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollIntervalMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    AnswerScrape(fd, options);
    ::close(fd);
    ++summary.requests;
  }
  summary.stopped = options.stop.cancelled();
  ::close(listen_fd);
  return summary;
}

}  // namespace dagperf
