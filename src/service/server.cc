#include "service/server.h"

#include <cerrno>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/metrics.h"
#include "resilience/fault.h"
#include "service/protocol.h"

namespace dagperf {

ServeSummary ServeLines(EstimationService& service, std::istream& in,
                        std::ostream& out, std::size_t max_line_bytes) {
  Protocol protocol(&service);
  ServeSummary summary;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.size() > max_line_bytes) {
      out << Protocol::TransportErrorLine(Status::InvalidArgument(
                 "request line exceeds " + std::to_string(max_line_bytes) +
                 " bytes"))
          << '\n';
      out.flush();
      continue;
    }
    // Streaming entry point: plain ops emit one line, `watch` pushes a
    // frame per tick until the stream dies or the service drains.
    protocol.HandleLineStreaming(line, [&out](const std::string& response) {
      out << response << '\n';
      out.flush();
      return static_cast<bool>(out);
    });
    ++summary.requests;
    if (protocol.drain_requested()) {
      summary.drained = true;
      break;
    }
  }
  return summary;
}

namespace {

/// How often blocked poll loops wake to check stop/drain signals. Bounds
/// shutdown latency (a connection notices `halt` within one interval) without
/// busy-waiting.
constexpr int kPollIntervalMs = 50;

/// Bound on consecutive zero-progress write attempts (EINTR storms, a peer
/// that stopped reading) before the connection is dropped — a stalled client
/// must not pin a server thread in an unbounded retry loop.
constexpr int kMaxWriteStalls = 64;

/// Chaos seams (resilience/fault.h): server.accept drops a just-accepted
/// connection (client sees EOF), server.read fails a receive (connection
/// closes mid-request), server.write fails a response send (client sees a
/// torn response). Latency-only plans delay the operation instead.
resilience::FaultPoint& AcceptFault() {
  static resilience::FaultPoint& point =
      resilience::FaultInjector::Default().GetPoint("server.accept");
  return point;
}

resilience::FaultPoint& ReadFault() {
  static resilience::FaultPoint& point =
      resilience::FaultInjector::Default().GetPoint("server.read");
  return point;
}

resilience::FaultPoint& WriteFault() {
  static resilience::FaultPoint& point =
      resilience::FaultInjector::Default().GetPoint("server.write");
  return point;
}

Status SocketError(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

/// State shared by the accept loop and every connection thread.
struct Hub {
  std::mutex mutex;
  bool drained = false;
  std::uint64_t requests = 0;
};

/// Sends the whole buffer with bounded retries. MSG_NOSIGNAL: a peer that
/// disconnected mid-response must surface as EPIPE here, not SIGPIPE.
bool SendAll(int fd, const std::string& data) {
  if (Status injected = resilience::InjectAt(WriteFault()); !injected.ok()) {
    return false;
  }
  std::size_t sent = 0;
  int stalls = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR && ++stalls < kMaxWriteStalls) continue;
      return false;
    }
    if (n == 0) {
      if (++stalls >= kMaxWriteStalls) return false;
      continue;
    }
    stalls = 0;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Serves one connection until EOF, a transport error, an oversized-frame
/// stall, a drain verb, or `halt`. Splits the byte stream on '\n', one
/// protocol round-trip per line; frames above `max_line_bytes` are answered
/// with INVALID_ARGUMENT and discarded up to the next newline.
void ServeConnection(int fd, EstimationService& service,
                     const TcpServerOptions& options, const CancelToken& halt,
                     Hub& hub) {
  Protocol protocol(&service);
  std::string buffer;
  char chunk[4096];
  bool discarding = false;  // Inside an oversized frame, skipping to '\n'.
  double last_byte_us = 0.0;
  std::uint64_t requests = 0;
  bool drained = false;

  while (!halt.cancelled()) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollIntervalMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) {
      // Idle between requests is fine; a peer that sent part of a line and
      // went quiet is holding a buffer and a thread hostage — cut it loose.
      if (!buffer.empty() && options.read_idle_timeout_seconds > 0 &&
          (obs::MonotonicUs() - last_byte_us) * 1e-6 >
              options.read_idle_timeout_seconds) {
        break;
      }
      continue;
    }
    if (Status injected = resilience::InjectAt(ReadFault()); !injected.ok()) {
      break;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // Client closed.
    buffer.append(chunk, static_cast<std::size_t>(n));
    last_byte_us = obs::MonotonicUs();

    std::size_t newline;
    bool closing = false;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (discarding) {
        // The tail of an already-answered oversized frame.
        discarding = false;
        continue;
      }
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      if (line.size() > options.max_line_bytes) {
        if (!SendAll(fd, Protocol::TransportErrorLine(Status::InvalidArgument(
                             "request line exceeds " +
                             std::to_string(options.max_line_bytes) +
                             " bytes")) +
                             "\n")) {
          closing = true;
          break;
        }
        continue;
      }
      ++requests;
      // SendAll failure (peer gone, write stalled out) flips the sink to
      // false, which stops a mid-stream `watch` subscription cleanly.
      bool sink_ok = true;
      protocol.HandleLineStreaming(
          line, [fd, &sink_ok](const std::string& response) {
            sink_ok = SendAll(fd, response + "\n");
            return sink_ok;
          });
      if (!sink_ok) {
        closing = true;
        break;
      }
      if (protocol.drain_requested()) {
        drained = true;
        closing = true;
        break;
      }
    }
    if (closing) break;
    if (buffer.size() > options.max_line_bytes) {
      // A partial line already over the cap: answer now and drop the bytes
      // instead of buffering until the peer deigns to send '\n'.
      if (!discarding &&
          !SendAll(fd, Protocol::TransportErrorLine(Status::InvalidArgument(
                           "request line exceeds " +
                           std::to_string(options.max_line_bytes) + " bytes")) +
                           "\n")) {
        break;
      }
      buffer.clear();
      discarding = true;
    }
  }
  ::close(fd);

  std::lock_guard<std::mutex> lock(hub.mutex);
  hub.requests += requests;
  if (drained) {
    hub.drained = true;
    // Wake the accept loop and every sibling connection.
    halt.Cancel();
  }
}

}  // namespace

Result<TcpServeSummary> ServeTcp(EstimationService& service,
                                 const TcpServerOptions& options) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) return SocketError("socket");

  const int reuse = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options.port));
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status status = SocketError("bind");
    ::close(listen_fd);
    return status;
  }
  if (::listen(listen_fd, 64) < 0) {
    const Status status = SocketError("listen");
    ::close(listen_fd);
    return status;
  }
  if (options.on_listen) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      options.on_listen(ntohs(bound.sin_port));
    }
  }

  // `halt` observes the caller's stop token and is additionally fired by the
  // connection that serves a drain verb; firing it never touches the
  // caller's token, so `stopped` below still distinguishes the two causes.
  const CancelToken halt = CancelToken::LinkedTo({options.stop});

  TcpServeSummary summary;
  Hub hub;
  std::vector<std::thread> connections;

  while (!halt.cancelled()) {
    {
      std::lock_guard<std::mutex> lock(hub.mutex);
      if (hub.drained) break;
    }
    if (options.max_connections > 0 &&
        summary.connections >=
            static_cast<std::uint64_t>(options.max_connections)) {
      break;
    }
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollIntervalMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (Status injected = resilience::InjectAt(AcceptFault()); !injected.ok()) {
      // Injected accept failure: the client sees its connection drop.
      ::close(fd);
      continue;
    }
    // Responses are one small write each; Nagle would sit on them.
    const int nodelay = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
    ++summary.connections;
    connections.emplace_back([fd, &service, &options, &halt, &hub] {
      ServeConnection(fd, service, options, halt, hub);
    });
  }

  // Shutdown sequence (docs/robustness.md): the listener closes FIRST so
  // no new work arrives while existing work is being resolved.
  ::close(listen_fd);
  summary.stopped = options.stop.cancelled();
  if (summary.stopped) {
    // Bounded drain: in-flight requests get drain_grace_seconds to finish,
    // then their tokens fire and their futures resolve to
    // UNAVAILABLE{retryable}. Connections blocked in HandleLine therefore
    // unblock, send that response, then notice `halt` and unwind — the
    // joins below always terminate.
    summary.shutdown = service.Shutdown(options.drain_grace_seconds);
  }
  for (std::thread& connection : connections) connection.join();

  std::lock_guard<std::mutex> lock(hub.mutex);
  summary.requests = hub.requests;
  summary.drained = hub.drained;
  return summary;
}

}  // namespace dagperf
