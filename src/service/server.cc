#include "service/server.h"

#include <cerrno>
#include <cstring>
#include <string>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "service/protocol.h"

namespace dagperf {

ServeSummary ServeLines(EstimationService& service, std::istream& in,
                        std::ostream& out) {
  Protocol protocol(&service);
  ServeSummary summary;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    out << protocol.HandleLine(line) << '\n';
    out.flush();
    ++summary.requests;
    if (protocol.drain_requested()) {
      summary.drained = true;
      break;
    }
  }
  return summary;
}

namespace {

Status SocketError(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

/// Sends the whole buffer, riding out short writes and EINTR.
bool SendAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Serves one connection: splits the byte stream on '\n', one protocol
/// round-trip per line. Returns true when a drain verb ended the session.
bool ServeConnection(Protocol& protocol, int fd) {
  std::string buffer;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // Client closed.
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      if (!SendAll(fd, protocol.HandleLine(line) + "\n")) return false;
      if (protocol.drain_requested()) return true;
    }
  }
}

}  // namespace

Status ServeTcp(EstimationService& service, const TcpServerOptions& options) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) return SocketError("socket");

  const int reuse = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options.port));
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status status = SocketError("bind");
    ::close(listen_fd);
    return status;
  }
  if (::listen(listen_fd, 16) < 0) {
    const Status status = SocketError("listen");
    ::close(listen_fd);
    return status;
  }
  if (options.on_listen) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      options.on_listen(ntohs(bound.sin_port));
    }
  }

  Protocol protocol(&service);
  int connections = 0;
  bool drained = false;
  while (!drained) {
    if (options.max_connections > 0 && connections >= options.max_connections) {
      break;
    }
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      const Status status = SocketError("accept");
      ::close(listen_fd);
      return status;
    }
    ++connections;
    drained = ServeConnection(protocol, fd);
    ::close(fd);
  }
  ::close(listen_fd);
  return Status::Ok();
}

}  // namespace dagperf
