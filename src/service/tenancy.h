#ifndef DAGPERF_SERVICE_TENANCY_H_
#define DAGPERF_SERVICE_TENANCY_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace dagperf {

/// Per-tenant serving accounting and DRF fair-share admission.
///
/// Every wire request names a tenant (absent -> "default"); the registry
/// tracks each tenant's queued/in-flight slots, lifetime outcome counters,
/// consumed cpu time, and an EMA of its per-request cost. Admission
/// dogfoods the paper's own Dominant Resource Fairness model
/// (scheduler/drf.h): the admission queue is priced as a synthetic
/// single-node cluster whose "vcores" are queue slots and whose "memory" is
/// expected cpu-milliseconds, each active tenant is a stage demanding one
/// slot + its EMA cost per queued request, and a tenant is admitted only if
/// the DRF allocation grants it one more container than it already holds.
///
/// The consequences are exactly DRF's: with free capacity everyone is
/// admitted (total demand fits, so every backlog is fully granted); under
/// contention each tenant is capped at its dominant share — a saturating
/// tenant exhausts its share and is shed with retryable RESOURCE_EXHAUSTED
/// while a light tenant's trickle always fits inside its own untouched
/// share. A tenant issuing expensive requests (high EMA cost) has cpu-ms as
/// its dominant resource and receives proportionally fewer slots than a
/// cheap-request tenant, without any hand-tuned per-tenant quota.
class TenantRegistry {
 public:
  struct Options {
    /// Queue slots the synthetic DRF cluster advertises — the service's
    /// max_queue_depth.
    int capacity_slots = 256;
    /// Weight of the newest request cost in the per-tenant EMA.
    double ema_alpha = 0.2;
    /// EMA seed for tenants that have not completed a request yet.
    double initial_cost_ms = 10.0;
  };

  struct TenantStats {
    std::string name;
    /// Slots held while executing on a worker.
    int inflight = 0;
    /// Slots held while waiting in the admission queue.
    int queued = 0;
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    /// Requests rejected for this tenant (fair-share + overload + global
    /// queue sheds).
    std::uint64_t shed_total = 0;
    /// Total execution time consumed, milliseconds.
    double cpu_ms = 0.0;
    /// EMA of per-request execution cost, the DRF "memory" demand.
    double ema_cost_ms = 0.0;
  };

  TenantRegistry();
  explicit TenantRegistry(Options options);

  /// Fair-share admission for one request of `tenant`. On Ok the tenant
  /// holds one queued slot (release it via OnExecuteStart + OnDone, or
  /// OnAdmitRollback if the request never reaches a worker). Rejections are
  /// RESOURCE_EXHAUSTED (retryable) and count into shed_total.
  Status Admit(const std::string& tenant);

  /// Returns the queued slot of a request that was admitted but then
  /// rejected downstream (chaos seam, overload shed) without executing.
  void OnAdmitRollback(const std::string& tenant);

  /// Moves one slot of `tenant` from queued to in-flight (worker dequeue).
  void OnExecuteStart(const std::string& tenant);

  /// Releases the in-flight slot and records the outcome. `cpu_ms` is the
  /// request's execution time (not queue wait) and feeds both the lifetime
  /// total and the EMA cost that prices future admissions.
  void OnDone(const std::string& tenant, bool ok, double cpu_ms);

  /// Counts a shed — and its arrival — that happened before Admit granted a
  /// slot (global queue full, overload controller), so `submitted` always
  /// means arrivals: submitted == completed + failed + shed_total + held.
  void OnShed(const std::string& tenant);

  /// Snapshot of every tenant ever seen, name-ordered.
  std::vector<TenantStats> Stats() const;

  /// Canonical tenant name for a wire field (empty -> "default").
  static const std::string& Canonical(const std::string& tenant);

 private:
  struct Entry {
    int inflight = 0;
    int queued = 0;
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t shed_total = 0;
    double cpu_ms = 0.0;
    double ema_cost_ms = 0.0;
  };

  Entry& Find(const std::string& tenant);  // mutex_ held

  Options options_;
  mutable std::mutex mutex_;
  std::map<std::string, Entry> tenants_;
};

}  // namespace dagperf

#endif  // DAGPERF_SERVICE_TENANCY_H_
