// Tests of speculative execution: Hadoop's straggler mitigation in the
// simulator, and its interaction with reduce-key skew and failures.

#include <gtest/gtest.h>

#include <set>

#include "common/stats.h"
#include "sim/simulator.h"
#include "workloads/micro.h"

namespace dagperf {
namespace {

ClusterSpec Cluster() {
  ClusterSpec c = ClusterSpec::PaperCluster();
  c.num_nodes = 4;
  return c;
}

DagWorkflow SkewedFlow(double cv) {
  JobSpec spec = TsSpec(Bytes::FromGB(8));
  spec.name = "skewed";
  spec.reduce_skew_cv = cv;
  DagBuilder b("skewed-flow");
  b.AddJob(spec);
  return std::move(b).Build().value();
}

SimResult RunSim(const DagWorkflow& flow, bool speculate, double failure_prob = 0.0,
              uint64_t seed = 42) {
  SimOptions options;
  options.enable_speculation = speculate;
  options.task_failure_prob = failure_prob;
  options.seed = seed;
  const Simulator sim(Cluster(), SchedulerConfig{}, options);
  return sim.Run(flow).value();
}

TEST(SpeculationTest, AllLogicalTasksCompleteExactlyOnce) {
  const DagWorkflow flow = SkewedFlow(0.8);
  const SimResult result = RunSim(flow, /*speculate=*/true);
  EXPECT_EQ(result.TaskDurations(0, StageKind::kMap).size(),
            static_cast<size_t>(flow.job(0).map.num_tasks));
  EXPECT_EQ(result.TaskDurations(0, StageKind::kReduce).size(),
            static_cast<size_t>(flow.job(0).reduce->num_tasks));
  // No duplicate indexes among successful records.
  std::set<int> reduce_indexes;
  for (const auto& t : result.tasks()) {
    if (t.stage != StageKind::kReduce) continue;
    EXPECT_TRUE(reduce_indexes.insert(t.index).second) << "index " << t.index;
  }
}

TEST(SpeculationTest, CutsTheSkewTail) {
  // With heavily skewed reduce partitions the backup attempts cannot help
  // (the big partition is big for both attempts) — but with failures or
  // contention-induced stragglers they can. Here we verify the direct
  // observable: under skew, speculation never hurts much and the workflow
  // still completes; and under *failure-induced* stragglers it clearly wins.
  const DagWorkflow flow = SkewedFlow(0.5);
  const double plain = RunSim(flow, false).makespan().seconds();
  const double spec = RunSim(flow, true).makespan().seconds();
  EXPECT_LT(spec, plain * 1.15);  // Never pathologically worse.
}

TEST(SpeculationTest, RescuesSlowNodeStragglers) {
  // Speculation's real purpose: on a cluster with node-speed variance, a
  // task stuck on a slow node gets a backup on a faster one. With
  // homogeneous nodes our simulator gives both attempts identical speed and
  // speculation cannot help — so the win must appear exactly when node
  // jitter is enabled.
  const DagWorkflow flow = SkewedFlow(0.1);
  const auto run = [&](bool speculate, uint64_t seed) {
    SimOptions options;
    options.enable_speculation = speculate;
    options.speculation_threshold = 1.2;  // Eager backups (LATE-style).
    options.node_speed_cv = 0.7;          // A badly uneven fleet.
    options.seed = seed;
    const Simulator sim(Cluster(), SchedulerConfig{}, options);
    return sim.Run(flow)->makespan().seconds();
  };
  double plain_total = 0;
  double spec_total = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    plain_total += run(false, seed);
    spec_total += run(true, seed);
  }
  EXPECT_LT(spec_total, plain_total * 0.97);
}

TEST(SpeculationTest, NodeJitterHurtsMakespan) {
  // Node-speed variance is pure downside for a makespan dominated by the
  // slowest participants: the jittered fleet should not meaningfully beat
  // the uniform one on average.
  const DagWorkflow flow = SkewedFlow(0.1);
  SimOptions uniform;
  SimOptions jittered;
  jittered.node_speed_cv = 0.4;
  const double t_uniform = Simulator(Cluster(), SchedulerConfig{}, uniform)
                               .Run(flow)
                               ->makespan()
                               .seconds();
  double jitter_total = 0;
  for (uint64_t seed : {1u, 2u, 3u}) {
    jittered.seed = seed;
    jitter_total += Simulator(Cluster(), SchedulerConfig{}, jittered)
                        .Run(flow)
                        ->makespan()
                        .seconds();
  }
  EXPECT_GT(jitter_total / 3.0, t_uniform * 0.95);
}

TEST(SpeculationTest, ExtraAttemptsConsumeResources) {
  const DagWorkflow flow = SkewedFlow(0.9);
  const ResourceVector plain = RunSim(flow, false).TotalConsumed();
  const ResourceVector spec = RunSim(flow, true).TotalConsumed();
  // Backups do real work that is thrown away on a loss: consumption with
  // speculation is at least the plain consumption.
  for (Resource r : kAllResources) {
    EXPECT_GE(spec[r], plain[r] * 0.999) << ResourceName(r);
  }
}

TEST(SpeculationTest, DisabledByDefault) {
  SimOptions options;
  EXPECT_FALSE(options.enable_speculation);
}

}  // namespace
}  // namespace dagperf
