#include "obs/trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "obs/chrome_trace.h"

namespace dagperf {
namespace {

TEST(ObsTraceTest, DisabledRecorderRecordsNothing) {
  obs::TraceRecorder recorder;
  {
    obs::ScopedSpan span(recorder, "work", "test");
    EXPECT_FALSE(span.active());
    span.AddArg("ignored", 1.0);
  }
  recorder.Add(obs::ChromeTraceEvent{});
  EXPECT_EQ(recorder.size(), 0u);
}

TEST(ObsTraceTest, ScopedSpanRecordsACompleteEvent) {
  obs::TraceRecorder recorder;
  recorder.SetEnabled(true);
  {
    obs::ScopedSpan span(recorder, "work", "test");
    EXPECT_TRUE(span.active());
    span.AddArg("items", 3.0);
    span.AddArg("mode", "golden");
  }
  const std::vector<obs::ChromeTraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "work");
  EXPECT_EQ(events[0].cat, "test");
  EXPECT_EQ(events[0].ph, 'X');
  EXPECT_GE(events[0].dur_us, 0.0);
  ASSERT_EQ(events[0].num_args.size(), 1u);
  EXPECT_EQ(events[0].num_args[0].first, "items");
  ASSERT_EQ(events[0].str_args.size(), 1u);
  EXPECT_EQ(events[0].str_args[0].second, "golden");
}

TEST(ObsTraceTest, NestedSpansCloseInReverseOrderOnOneLane) {
  obs::TraceRecorder recorder;
  recorder.SetEnabled(true);
  {
    obs::ScopedSpan outer(recorder, "outer", "test");
    obs::ScopedSpan inner(recorder, "inner", "test");
  }
  const std::vector<obs::ChromeTraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 2u);
  // Destructors record innermost first; both spans share the thread's lane.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[0].tid, events[1].tid);
  EXPECT_LE(events[1].ts_us, events[0].ts_us);
}

TEST(ObsTraceTest, WrittenTraceIsValidJsonWithOrderedFields) {
  obs::TraceRecorder recorder;
  recorder.SetEnabled(true);
  { obs::ScopedSpan span(recorder, "a \"quoted\" name", "test"); }
  recorder.AddCounter("load", 12.5, {{"cpu", 3.0}, {"network", 0.5}});
  std::ostringstream out;
  recorder.Write(out);
  const std::string text = out.str();

  const Result<Json> doc = Json::Parse(text);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_EQ(doc->AsArray().size(), 2u);
  EXPECT_EQ(doc->AsArray()[0].GetString("ph", ""), "X");
  EXPECT_EQ(doc->AsArray()[1].GetString("ph", ""), "C");
  const Json* args = doc->AsArray()[1].Get("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->GetNumber("cpu", -1), 3.0);

  // Downstream consumers scan fields in order: ts before dur before pid
  // before tid (trace_writer_test's crude parser depends on this).
  const size_t ts = text.find("\"ts\": ");
  const size_t dur = text.find("\"dur\": ");
  const size_t pid = text.find("\"pid\": ", ts);
  const size_t tid = text.find("\"tid\": ", ts);
  ASSERT_NE(ts, std::string::npos);
  ASSERT_NE(dur, std::string::npos);
  EXPECT_LT(ts, dur);
  EXPECT_LT(dur, pid);
  EXPECT_LT(pid, tid);
}

TEST(ObsTraceTest, ProcessNamesEmitMetadataEvents) {
  std::vector<obs::ChromeTraceEvent> events;
  obs::ChromeTraceEvent event;
  event.name = "span";
  event.ph = 'X';
  event.pid = 7;
  events.push_back(event);
  std::ostringstream out;
  obs::WriteChromeTraceEvents(events, out, {{7, "estimate"}});
  const Result<Json> doc = Json::Parse(out.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_EQ(doc->AsArray().size(), 2u);
  EXPECT_EQ(doc->AsArray()[0].GetString("ph", ""), "M");
  EXPECT_EQ(doc->AsArray()[0].GetString("name", ""), "process_name");
}

TEST(ObsTraceTest, ClearEmptiesTheRecorder) {
  obs::TraceRecorder recorder;
  recorder.SetEnabled(true);
  { obs::ScopedSpan span(recorder, "work", "test"); }
  EXPECT_EQ(recorder.size(), 1u);
  recorder.Clear();
  EXPECT_EQ(recorder.size(), 0u);
}

}  // namespace
}  // namespace dagperf
