// Tests of the versioned public facade: <dagperf/dagperf.h> is
// self-sufficient (this file includes nothing else from the library), the
// version macros exist and are numerically comparable, and the deprecated
// Status-out-param shims still behave like their Result<T> replacements.

#include <dagperf/dagperf.h>

#include <gtest/gtest.h>

#ifndef DAGPERF_VERSION_MAJOR
#error "dagperf.h must provide DAGPERF_VERSION_MAJOR"
#endif
#ifndef DAGPERF_VERSION_MINOR
#error "dagperf.h must provide DAGPERF_VERSION_MINOR"
#endif

// The facade version gates features numerically; the service layer arrived
// in 0.4.
#if DAGPERF_VERSION_MAJOR == 0 && DAGPERF_VERSION_MINOR < 4
#error "service layer requires dagperf >= 0.4"
#endif

// The resilience layer (RetryPolicy, CircuitBreaker, FaultInjector,
// graceful shutdown) arrived in 0.5.
#if DAGPERF_VERSION_MAJOR == 0 && DAGPERF_VERSION_MINOR < 5
#error "resilience layer requires dagperf >= 0.5"
#endif

// Serving observability (request records + flight recorder, SLO windows,
// Prometheus export) arrived in 0.6.
#if DAGPERF_VERSION_MAJOR == 0 && DAGPERF_VERSION_MINOR < 6
#error "serving observability requires dagperf >= 0.6"
#endif

// Multi-tenant serving (DRF fair-share admission, overload brownout ladder,
// warm-state snapshot/restore) arrived in 0.7.
#if DAGPERF_VERSION_MAJOR == 0 && DAGPERF_VERSION_MINOR < 7
#error "multi-tenant serving requires dagperf >= 0.7"
#endif

// The unified submission API (EstimateRequest builder, EstimateResponse,
// in-flight coalescing, hedged sweeps) arrived in 0.8.
#if DAGPERF_VERSION_MAJOR == 0 && DAGPERF_VERSION_MINOR < 8
#error "unified submission API requires dagperf >= 0.8"
#endif

// Fleet serving (router::Router, protocol::LineClient, scoped snapshot
// import for warm handoff) arrived in 0.9.
#if DAGPERF_VERSION_MAJOR == 0 && DAGPERF_VERSION_MINOR < 9
#error "fleet serving requires dagperf >= 0.9"
#endif

namespace dagperf {
namespace {

TEST(ApiFacadeTest, VersionMacros) {
  EXPECT_GE(DAGPERF_VERSION_MAJOR, 0);
  EXPECT_GE(DAGPERF_VERSION_MINOR, 4);
  const std::string version = DAGPERF_VERSION_STRING;
  EXPECT_EQ(version, std::to_string(DAGPERF_VERSION_MAJOR) + "." +
                         std::to_string(DAGPERF_VERSION_MINOR));
}

TEST(ApiFacadeTest, FacadeCoversTheSupportedSurface) {
  // Touch one symbol from each facade section; compiling this file with
  // only <dagperf/dagperf.h> is the actual assertion.
  const ClusterSpec cluster = ClusterSpec::PaperCluster();
  EXPECT_GT(cluster.num_nodes, 0);
  const Status status = Status::ResourceExhausted("x");
  EXPECT_TRUE(IsRetryable(status.code()));
  EXPECT_STREQ(ErrorCodeName(status.code()), "RESOURCE_EXHAUSTED");
  const Budget budget = Budget::Within(60.0);
  EXPECT_TRUE(budget.limited());
  EstimationService service;
  EXPECT_FALSE(service.draining());
  EXPECT_EQ(service.Stats().clusters, 1);
}

TEST(ApiFacadeTest, ResilienceSurfaceIsReachableThroughTheFacade) {
  // UNAVAILABLE joined the stable vocabulary in 0.5 and is retryable.
  const Status unavailable = Status::Unavailable("x");
  EXPECT_STREQ(ErrorCodeName(unavailable.code()), "UNAVAILABLE");
  EXPECT_TRUE(IsRetryable(unavailable.code()));

  resilience::RetryPolicy retry({.max_attempts = 3, .initial_backoff_ms = 0.0});
  int calls = 0;
  const Status status = retry.RunStatus([&] {
    ++calls;
    return calls < 3 ? Status::Unavailable("warming up") : Status::Ok();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);

  resilience::CircuitBreaker breaker({.failure_threshold = 2});
  EXPECT_TRUE(breaker.Allow().ok());
  breaker.RecordFailure();
  EXPECT_TRUE(breaker.Allow().ok());
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), resilience::BreakerState::kOpen);
  EXPECT_EQ(breaker.Allow().code(), ErrorCode::kUnavailable);

  // The fault injector is reachable (and off by default).
  EXPECT_FALSE(resilience::FaultInjector::Default().armed());
}

TEST(ApiFacadeTest, MultiTenantServingSurfaceIsReachableThroughTheFacade) {
  // 0.7 surface: overload controller, tenant registry, warm snapshots.
  resilience::OverloadController controller;
  controller.ForceLevelForTest(3);
  EXPECT_TRUE(controller.ShouldShed(/*warm=*/false, /*expensive=*/false));
  EXPECT_GT(controller.RetryAfterMs(), 0.0);

  TenantRegistry tenants;
  EXPECT_EQ(TenantRegistry::Canonical(""), "default");
  EXPECT_TRUE(tenants.Admit("alice").ok());

  TaskTimeMemo memo;
  PrefixCheckpointStore store;
  const Status missing =
      LoadWarmSnapshot("no-such-snapshot-file", &memo, &store, nullptr);
  EXPECT_EQ(missing.code(), ErrorCode::kNotFound);
}

TEST(ApiFacadeTest, ObservabilitySurfaceIsReachableThroughTheFacade) {
  const bool was_enabled = obs::MetricsEnabled();
  obs::SetMetricsEnabled(true);

  obs::RequestRecord record;
  record.id = 1;
  record.end_us = 10.0;
  obs::FlightRecorder recorder(obs::FlightRecorderOptions{.capacity = 4});
  recorder.Record(record);
  EXPECT_EQ(recorder.total_recorded(), 1u);

  obs::SloTracker slo(obs::SloObjectives{.p99_ms = 100.0,
                                         .availability = 0.999});
  slo.RecordOutcome(obs::OpClass::kEstimate, 5.0, /*ok=*/true,
                    /*had_deadline=*/false, /*deadline_met=*/false);
  const obs::SloTracker::Report report = slo.Snapshot();
  EXPECT_EQ(report.total.back().count, 1u);  // 5m window sees the request.

  // Prometheus text rendering is reachable through the facade.
  const std::string prom = obs::WritePrometheusText();
  EXPECT_NE(prom.find("# TYPE"), std::string::npos);

  obs::SetMetricsEnabled(was_enabled);
}

Result<DagWorkflow> FacadeFlow() {
  Result<NamedFlow> named = TableThreeFlow("TS-Q6", 0.01);
  if (!named.ok()) return named.status();
  return std::move(named).value().flow;
}

TEST(ApiFacadeTest, UnifiedSubmitServesEstimatesAndSweeps) {
  // 0.8 surface: one builder, one entry point, one response union.
  Result<DagWorkflow> flow = FacadeFlow();
  ASSERT_TRUE(flow.ok());
  EstimationService service;
  ASSERT_TRUE(service.RegisterWorkflow("q6", *flow).ok());

  Result<EstimateResponse> estimate =
      service.Submit(EstimateRequest::For("q6").WithExplain()).get();
  ASSERT_TRUE(estimate.ok()) << estimate.status().ToString();
  ASSERT_FALSE(estimate.value().is_sweep());
  ASSERT_TRUE(estimate.value().estimate.has_value());
  EXPECT_GT(estimate.value().estimate->estimate.makespan.seconds(), 0.0);
  EXPECT_FALSE(estimate.value().estimate->critical_path.empty());

  Result<EstimateResponse> sweep =
      service.Submit(EstimateRequest::For("q6").SweepNodes({4, 8})).get();
  ASSERT_TRUE(sweep.ok()) << sweep.status().ToString();
  ASSERT_TRUE(sweep.value().is_sweep());
  ASSERT_TRUE(sweep.value().sweep.has_value());
  ASSERT_EQ(sweep.value().sweep->sweep.estimates.size(), 2u);
  EXPECT_TRUE(sweep.value().sweep->sweep.estimates[0].ok());
  EXPECT_TRUE(sweep.value().sweep->sweep.estimates[1].ok());
}

TEST(ApiFacadeTest, BuilderLowersToTheStructsItReplaces) {
  // Migrating callers can diff the lowered form against the struct they
  // used to fill by hand; every chainer maps onto exactly one field.
  const EstimateRequest request = EstimateRequest::For("daily-etl")
                                      .OnCluster("prod")
                                      .AsTenant("alice")
                                      .WithNodes(32)
                                      .WithExplain()
                                      .WithoutCoalescing();
  EXPECT_FALSE(request.is_sweep());
  const ServiceRequest lowered = request.ToEstimate();
  EXPECT_EQ(lowered.workflow, "daily-etl");
  EXPECT_EQ(lowered.cluster, "prod");
  EXPECT_EQ(lowered.tenant, "alice");
  EXPECT_EQ(lowered.nodes, 32);
  EXPECT_TRUE(lowered.explain);
  EXPECT_FALSE(lowered.coalesce);

  SweepHedgeOptions hedge;
  hedge.enabled = true;
  const EstimateRequest sweep = EstimateRequest::For("daily-etl")
                                    .SweepNodes({8, 16})
                                    .WithHedging(hedge);
  EXPECT_TRUE(sweep.is_sweep());
  const ServiceSweepRequest sweep_lowered = sweep.ToSweep();
  EXPECT_EQ(sweep_lowered.workflow, "daily-etl");
  EXPECT_EQ(sweep_lowered.nodes_list, (std::vector<int>{8, 16}));
  EXPECT_TRUE(sweep_lowered.hedge.enabled);
}

// The deprecated shims are exercised on purpose; silence the warnings the
// rest of the build is expected to emit for them.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST(ApiFacadeTest, DeprecatedEstimateShimMatchesResultOverload) {
  Result<DagWorkflow> flow = FacadeFlow();
  ASSERT_TRUE(flow.ok());
  const ClusterSpec cluster = ClusterSpec::PaperCluster();
  const BoeModel boe(cluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  const StateBasedEstimator estimator(cluster, SchedulerConfig{});

  Result<DagEstimate> direct = estimator.Estimate(*flow, source);
  ASSERT_TRUE(direct.ok());

  DagEstimate shimmed;
  const Status status = estimator.Estimate(*flow, source, &shimmed);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(shimmed.makespan.seconds(), direct->makespan.seconds());
  EXPECT_EQ(shimmed.states.size(), direct->states.size());
}

TEST(ApiFacadeTest, DeprecatedBatchShimReturnsFirstError) {
  Result<DagWorkflow> flow = FacadeFlow();
  ASSERT_TRUE(flow.ok());
  const ClusterSpec good = ClusterSpec::PaperCluster();
  ClusterSpec bad = good;
  bad.num_nodes = -1;
  const BoeModel boe(good.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));

  const std::vector<SweepCandidate> requests = {{&*flow, good, "good"},
                                                 {&*flow, bad, "bad"}};
  SweepResult out;
  const Status status =
      EstimateBatch(requests, SchedulerConfig{}, source, SweepOptions{}, &out);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument);
  ASSERT_EQ(out.estimates.size(), 2u);
  EXPECT_TRUE(out.estimates[0].ok());
  EXPECT_FALSE(out.estimates[1].ok());
}

TEST(ApiFacadeTest, DeprecatedSubmitShimsMatchUnifiedSubmit) {
  // The pre-0.8 entry points are shims over the unified path; a request
  // lowered from the builder and the same struct filled by hand must
  // produce bit-identical estimates.
  Result<DagWorkflow> flow = FacadeFlow();
  ASSERT_TRUE(flow.ok());
  EstimationService service;
  ASSERT_TRUE(service.RegisterWorkflow("q6", *flow).ok());

  Result<EstimateResponse> unified =
      service.Submit(EstimateRequest::For("q6").WithExplain()).get();
  ASSERT_TRUE(unified.ok());

  ServiceRequest legacy;
  legacy.workflow = "q6";
  legacy.explain = true;
  Result<WorkflowEstimate> shimmed = service.Submit(std::move(legacy)).get();
  ASSERT_TRUE(shimmed.ok()) << shimmed.status().ToString();
  EXPECT_EQ(shimmed.value().estimate.makespan.seconds(),
            unified.value().estimate->estimate.makespan.seconds());
  EXPECT_EQ(shimmed.value().critical_path.size(),
            unified.value().estimate->critical_path.size());

  Result<EstimateResponse> unified_sweep =
      service.Submit(EstimateRequest::For("q6").SweepNodes({4, 8})).get();
  ASSERT_TRUE(unified_sweep.ok());

  ServiceSweepRequest legacy_sweep;
  legacy_sweep.workflow = "q6";
  legacy_sweep.nodes_list = {4, 8};
  Result<ServiceSweepResult> shimmed_sweep =
      service.SubmitSweep(std::move(legacy_sweep)).get();
  ASSERT_TRUE(shimmed_sweep.ok()) << shimmed_sweep.status().ToString();
  const SweepResult& a = shimmed_sweep.value().sweep;
  const SweepResult& b = unified_sweep.value().sweep->sweep;
  ASSERT_EQ(a.estimates.size(), b.estimates.size());
  for (std::size_t i = 0; i < a.estimates.size(); ++i) {
    ASSERT_TRUE(a.estimates[i].ok());
    ASSERT_TRUE(b.estimates[i].ok());
    EXPECT_EQ(a.estimates[i]->makespan.seconds(),
              b.estimates[i]->makespan.seconds());
  }
}

TEST(ApiFacadeTest, DeprecatedSimulatorShimMatchesResultOverload) {
  Result<DagWorkflow> flow = FacadeFlow();
  ASSERT_TRUE(flow.ok());
  const Simulator sim(ClusterSpec::PaperCluster(), SchedulerConfig{},
                      SimOptions{});
  Result<SimResult> direct = sim.Run(*flow);
  ASSERT_TRUE(direct.ok());
  // SimResult has no default constructor, so the shim's out-param is seeded
  // with a value it then overwrites.
  SimResult shimmed = direct.value();
  const Status status = sim.Run(*flow, &shimmed);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(shimmed.makespan().seconds(), direct->makespan().seconds());
}

#pragma GCC diagnostic pop

}  // namespace
}  // namespace dagperf
