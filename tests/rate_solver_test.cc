#include "cluster/rate_solver.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dagperf {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

ResourceVector Caps(double disk_read, double disk_write, double network,
                    double cpu) {
  ResourceVector caps;
  caps[Resource::kDiskRead] = disk_read;
  caps[Resource::kDiskWrite] = disk_write;
  caps[Resource::kNetwork] = network;
  caps[Resource::kCpu] = cpu;
  return caps;
}

ResourceVector CpuCap() {
  ResourceVector caps;
  caps[Resource::kCpu] = 1.0;
  return caps;
}

TEST(RateSolverTest, SingleFlowSingleResource) {
  // 100 MB of disk read per progress unit, 200 MB/s disk.
  Flow f;
  f.population = 1;
  f.demand[Resource::kDiskRead] = 100e6;
  const auto rates = SolveRates(Caps(200e6, 0, 0, 6), {f});
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_NEAR(rates[0].progress_rate, 2.0, 1e-12);
  EXPECT_EQ(rates[0].bottleneck, static_cast<int>(Resource::kDiskRead));
}

TEST(RateSolverTest, CpuPerTaskCapBindsBeforeSharing) {
  // 4 tasks, each needing 10 core-seconds per progress, on 6 cores: each
  // task is capped at 1 core (no sharing yet) -> rate 0.1/s.
  Flow f;
  f.population = 4;
  f.demand[Resource::kCpu] = 10;
  f.per_task_cap = CpuCap();
  const auto rates = SolveRates(Caps(0, 0, 0, 6), {f});
  EXPECT_NEAR(rates[0].progress_rate, 0.1, 1e-12);
}

TEST(RateSolverTest, CpuSharedPastSaturation) {
  // 12 tasks on 6 cores: each gets half a core.
  Flow f;
  f.population = 12;
  f.demand[Resource::kCpu] = 10;
  f.per_task_cap = CpuCap();
  const auto rates = SolveRates(Caps(0, 0, 0, 6), {f});
  EXPECT_NEAR(rates[0].progress_rate, 0.05, 1e-12);
  EXPECT_EQ(rates[0].bottleneck, static_cast<int>(Resource::kCpu));
}

TEST(RateSolverTest, PaperFigure4Example) {
  // Fig. 4(b): 5 tasks, each reading 10000 MB (disk 500 MB/s), transferring
  // 10000 MB (network 100 MB/s), computing at 50 MB/s per core
  // (=> 200 core-seconds). Expected: network-bound, task time 500 s.
  Flow f;
  f.population = 5;
  f.demand[Resource::kDiskRead] = 10000e6;
  f.demand[Resource::kNetwork] = 10000e6;
  f.demand[Resource::kCpu] = 200;
  f.per_task_cap = CpuCap();
  const auto caps = Caps(500e6, 0, 100e6, 6);
  const auto rates = SolveRates(caps, {f});
  EXPECT_NEAR(1.0 / rates[0].progress_rate, 500.0, 1e-6);
  EXPECT_EQ(rates[0].bottleneck, static_cast<int>(Resource::kNetwork));

  const ResourceVector util = SolutionUtilization(caps, {f}, rates);
  EXPECT_NEAR(util[Resource::kNetwork], 1.0, 1e-9);
  EXPECT_NEAR(util[Resource::kDiskRead], 0.2, 1e-9);  // 100 MB/s of 500.
}

TEST(RateSolverTest, PaperFigure4SingleTask) {
  // Fig. 4(a): one task alone is CPU-bound at 200 s.
  Flow f;
  f.population = 1;
  f.demand[Resource::kDiskRead] = 10000e6;
  f.demand[Resource::kNetwork] = 10000e6;
  f.demand[Resource::kCpu] = 200;
  f.per_task_cap = CpuCap();
  const auto rates = SolveRates(Caps(500e6, 0, 100e6, 6), {f});
  EXPECT_NEAR(1.0 / rates[0].progress_rate, 200.0, 1e-6);
  EXPECT_EQ(rates[0].bottleneck, static_cast<int>(Resource::kCpu));
}

TEST(RateSolverTest, SurplusRedistribution) {
  // Flow A is CPU-capped and cannot use its fair disk share; flow B should
  // receive the surplus.
  Flow a;
  a.population = 1;
  a.demand[Resource::kDiskRead] = 10e6;
  a.demand[Resource::kCpu] = 1.0;  // 1 core-second per progress: rate <= 1.
  a.per_task_cap = CpuCap();
  Flow b;
  b.population = 1;
  b.demand[Resource::kDiskRead] = 10e6;
  const auto rates = SolveRates(Caps(100e6, 0, 0, 6), {a, b});
  // A runs at 1/s using 10 MB/s of disk; B gets the remaining 90 MB/s.
  EXPECT_NEAR(rates[0].progress_rate, 1.0, 1e-9);
  EXPECT_NEAR(rates[1].progress_rate, 9.0, 1e-9);
}

TEST(RateSolverTest, EqualBandwidthNotEqualProgress) {
  // Two flows on one disk with different per-progress demands receive equal
  // bandwidth, hence inversely proportional progress.
  Flow heavy;
  heavy.population = 1;
  heavy.demand[Resource::kDiskRead] = 20e6;
  Flow light;
  light.population = 1;
  light.demand[Resource::kDiskRead] = 10e6;
  const auto rates = SolveRates(Caps(100e6, 0, 0, 6), {heavy, light});
  EXPECT_NEAR(rates[0].progress_rate, 2.5, 1e-9);   // 50 MB/s / 20 MB.
  EXPECT_NEAR(rates[1].progress_rate, 5.0, 1e-9);   // 50 MB/s / 10 MB.
}

TEST(RateSolverTest, CrossResourceRedistribution) {
  // A uses disk+net, B disk only, C net only. Disk 100, net 40.
  Flow a;
  a.population = 1;
  a.demand[Resource::kDiskRead] = 1;
  a.demand[Resource::kNetwork] = 1;
  Flow b;
  b.population = 1;
  b.demand[Resource::kDiskRead] = 1;
  Flow c;
  c.population = 1;
  c.demand[Resource::kNetwork] = 1;
  const auto rates = SolveRates(Caps(100, 0, 40, 6), {a, b, c});
  EXPECT_NEAR(rates[0].progress_rate, 20.0, 1e-9);
  EXPECT_NEAR(rates[1].progress_rate, 80.0, 1e-9);
  EXPECT_NEAR(rates[2].progress_rate, 20.0, 1e-9);
}

TEST(RateSolverTest, DemandFreeFlowIsInstant) {
  Flow f;
  f.population = 3;
  const auto rates = SolveRates(Caps(1, 1, 1, 1), {f});
  EXPECT_EQ(rates[0].progress_rate, kInf);
}

TEST(RateSolverTest, PopulationScalesContention) {
  Flow f;
  f.population = 10;
  f.demand[Resource::kNetwork] = 1e6;
  const auto rates = SolveRates(Caps(0, 0, 100e6, 6), {f});
  EXPECT_NEAR(rates[0].progress_rate, 10.0, 1e-9);  // 10 MB/s each.
}

TEST(RateSolverTest, ConservationNeverExceedsCapacity) {
  // Property: for arbitrary flow mixes, total consumption <= capacity.
  const ResourceVector caps = Caps(200e6, 180e6, 125e6, 6);
  std::vector<Flow> flows;
  for (int i = 1; i <= 7; ++i) {
    Flow f;
    f.population = i;
    f.demand[Resource::kDiskRead] = 1e6 * ((i * 37) % 23);
    f.demand[Resource::kDiskWrite] = 1e6 * ((i * 17) % 19);
    f.demand[Resource::kNetwork] = 1e6 * ((i * 29) % 31);
    f.demand[Resource::kCpu] = 0.1 * i;
    f.per_task_cap = CpuCap();
    flows.push_back(f);
  }
  const auto rates = SolveRates(caps, flows);
  const ResourceVector util = SolutionUtilization(caps, flows, rates);
  for (Resource r : kAllResources) {
    EXPECT_LE(util[r], 1.0 + 1e-9) << ResourceName(r);
  }
}

TEST(RateSolverTest, AtLeastOneResourceSaturatedUnderContention) {
  // With unbounded demand (no per-task caps binding), the allocation must
  // saturate some resource — otherwise rates could be raised.
  const ResourceVector caps = Caps(200e6, 180e6, 125e6, 6);
  std::vector<Flow> flows;
  for (int i = 0; i < 3; ++i) {
    Flow f;
    f.population = 4;
    f.demand[Resource::kDiskRead] = 50e6 + 10e6 * i;
    f.demand[Resource::kNetwork] = 30e6 * (i + 1);
    flows.push_back(f);
  }
  const auto rates = SolveRates(caps, flows);
  const ResourceVector util = SolutionUtilization(caps, flows, rates);
  double max_util = 0;
  for (Resource r : kAllResources) max_util = std::max(max_util, util[r]);
  EXPECT_NEAR(max_util, 1.0, 1e-9);
}

TEST(RateSolverTest, MoreContendersNeverFaster) {
  // Property: adding population to a competing flow cannot speed up flow 0.
  Flow base;
  base.population = 2;
  base.demand[Resource::kDiskRead] = 10e6;
  base.demand[Resource::kCpu] = 0.5;
  base.per_task_cap = CpuCap();
  double prev = kInf;
  for (double rival_pop : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    Flow rival;
    rival.population = rival_pop;
    rival.demand[Resource::kDiskRead] = 5e6;
    const auto rates = SolveRates(Caps(200e6, 0, 0, 6), {base, rival});
    EXPECT_LE(rates[0].progress_rate, prev + 1e-9);
    prev = rates[0].progress_rate;
  }
}

}  // namespace
}  // namespace dagperf
