#include "model/sweep.h"

#include <gtest/gtest.h>

#include <vector>

#include "model/task_time_cache.h"
#include "workloads/hibench.h"
#include "workloads/micro.h"
#include "workloads/suite.h"
#include "workloads/tpch.h"

namespace dagperf {
namespace {

const ClusterSpec kCluster = ClusterSpec::PaperCluster();
const SchedulerConfig kSched;

/// The golden-equivalence workload set: HiBench iterative DAGs, plain TPC-H
/// queries, and Table III hybrids (micro + TPC-H side by side).
std::vector<DagWorkflow> GoldenSuite() {
  std::vector<DagWorkflow> flows;
  flows.push_back(KMeansFlow(Bytes::FromGB(10), 2).value());
  flows.push_back(PageRankFlow(Bytes::FromGB(9), 2).value());
  flows.push_back(TpchQueryFlow(1, Bytes::FromGB(8)).value());
  flows.push_back(TpchQueryFlow(5, Bytes::FromGB(8)).value());
  flows.push_back(TableThreeFlow("TS-Q6", 0.1).value().flow);
  flows.push_back(TableThreeFlow("WC-KM", 0.1).value().flow);
  return flows;
}

/// Exact, bit-level comparison of two estimates. The sweep engine's
/// contract is bit-identity, so every double is compared with ==.
void ExpectIdentical(const DagEstimate& a, const DagEstimate& b) {
  EXPECT_EQ(a.makespan.seconds(), b.makespan.seconds());
  ASSERT_EQ(a.states.size(), b.states.size());
  for (size_t s = 0; s < a.states.size(); ++s) {
    EXPECT_EQ(a.states[s].index, b.states[s].index);
    EXPECT_EQ(a.states[s].start, b.states[s].start);
    EXPECT_EQ(a.states[s].duration, b.states[s].duration);
    ASSERT_EQ(a.states[s].running.size(), b.states[s].running.size());
    for (size_t r = 0; r < a.states[s].running.size(); ++r) {
      EXPECT_EQ(a.states[s].running[r].job, b.states[s].running[r].job);
      EXPECT_EQ(a.states[s].running[r].kind, b.states[s].running[r].kind);
      EXPECT_EQ(a.states[s].running[r].parallelism, b.states[s].running[r].parallelism);
      EXPECT_EQ(a.states[s].running[r].task_time_s, b.states[s].running[r].task_time_s);
    }
  }
  ASSERT_EQ(a.stages.size(), b.stages.size());
  for (size_t s = 0; s < a.stages.size(); ++s) {
    EXPECT_EQ(a.stages[s].job, b.stages[s].job);
    EXPECT_EQ(a.stages[s].kind, b.stages[s].kind);
    EXPECT_EQ(a.stages[s].start, b.stages[s].start);
    EXPECT_EQ(a.stages[s].end, b.stages[s].end);
  }
}

TEST(SweepDeterminismTest, ParallelCachedMatchesSerialUncachedBitExactly) {
  const std::vector<DagWorkflow> flows = GoldenSuite();
  const BoeModel boe(kCluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));

  // Serial ground truth: the plain estimator, no cache, one flow at a time.
  const StateBasedEstimator estimator(kCluster, kSched);
  std::vector<DagEstimate> golden;
  for (const DagWorkflow& flow : flows) {
    golden.push_back(estimator.Estimate(flow, source).value());
  }

  std::vector<EstimateRequest> requests;
  for (const DagWorkflow& flow : flows) requests.push_back({&flow, kCluster, ""});
  SweepOptions options;
  options.threads = 4;  // Parallel + shared cache: the full sweep engine.
  const SweepResult batch = EstimateBatch(requests, kSched, source, options);

  ASSERT_EQ(batch.estimates.size(), flows.size());
  for (size_t i = 0; i < flows.size(); ++i) {
    ASSERT_TRUE(batch.estimates[i].ok()) << batch.estimates[i].status().ToString();
    ExpectIdentical(*batch.estimates[i], golden[i]);
  }
}

TEST(SweepDeterminismTest, SkewAwareCachedMatchesUncached) {
  // The Alg2-Normal path queries TaskTimeDist; the memo must be exact there
  // too.
  const DagWorkflow flow = TableThreeFlow("WC-Q6", 0.1).value().flow;
  const BoeModel boe(kCluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  EstimatorOptions est_options;
  est_options.skew_aware = true;

  const StateBasedEstimator estimator(kCluster, kSched, est_options);
  const DagEstimate golden = estimator.Estimate(flow, source).value();

  TaskTimeMemo memo;
  const MemoizedTaskTimeSource cached(source, &memo);
  // Two passes: the second answers everything from the memo.
  const DagEstimate first = estimator.Estimate(flow, cached).value();
  const DagEstimate second = estimator.Estimate(flow, cached).value();
  ExpectIdentical(first, golden);
  ExpectIdentical(second, golden);
  const TaskTimeMemo::Stats stats = memo.stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.entries, 0u);
}

TEST(SweepDeterminismTest, RepeatedBatchesAreStable) {
  // Same batch twice (fresh internal cache each time, different thread
  // interleavings): identical output both times.
  const DagWorkflow flow = TpchQueryFlow(9, Bytes::FromGB(8)).value();
  const BoeModel boe(kCluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  std::vector<EstimateRequest> requests;
  for (int i = 0; i < 8; ++i) requests.push_back({&flow, kCluster, ""});
  SweepOptions options;
  options.threads = 4;
  const SweepResult a = EstimateBatch(requests, kSched, source, options);
  const SweepResult b = EstimateBatch(requests, kSched, source, options);
  for (size_t i = 0; i < requests.size(); ++i) {
    ExpectIdentical(*a.estimates[i], *b.estimates[i]);
    ExpectIdentical(*a.estimates[i], *a.estimates[0]);
  }
  // Identical candidates share everything after the first: high hit rate.
  EXPECT_GT(a.stats.cache_hit_rate, 0.5);
}

TEST(EstimateBatchTest, ReducerSweepSharesMapWork) {
  const Result<std::vector<DagWorkflow>> flows =
      BuildReducerCandidates(TsSpec(Bytes::FromGB(20)), {8, 16, 32, 64});
  ASSERT_TRUE(flows.ok());
  const BoeModel boe(kCluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  std::vector<EstimateRequest> requests;
  for (const DagWorkflow& flow : *flows) requests.push_back({&flow, kCluster, ""});
  const SweepResult result = EstimateBatch(requests, kSched, source);

  EXPECT_EQ(result.stats.candidates, 4);
  EXPECT_EQ(result.stats.failures, 0);
  // The map stage is identical across candidates; its states must hit.
  EXPECT_GT(result.stats.cache_hits, 0u);
  // best_index is the first minimal makespan.
  ASSERT_GE(result.stats.best_index, 0);
  for (const auto& estimate : result.estimates) {
    EXPECT_GE(estimate->makespan, result.stats.best_makespan);
  }
}

TEST(EstimateBatchTest, ReportsPerCandidateFailures) {
  const DagWorkflow flow = TpchQueryFlow(1, Bytes::FromGB(4)).value();
  std::vector<EstimateRequest> requests;
  requests.push_back({&flow, kCluster, "good"});
  requests.push_back({nullptr, kCluster, "no-flow"});
  ClusterSpec bad = kCluster;
  bad.num_nodes = 0;
  requests.push_back({&flow, bad, "bad-cluster"});

  const BoeModel boe(kCluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  const SweepResult result = EstimateBatch(requests, kSched, source);
  EXPECT_TRUE(result.estimates[0].ok());
  EXPECT_FALSE(result.estimates[1].ok());
  EXPECT_FALSE(result.estimates[2].ok());
  EXPECT_EQ(result.stats.failures, 2);
  EXPECT_EQ(result.stats.best_index, 0);
}

TEST(EstimateBatchTest, EmptyBatch) {
  const BoeModel boe(kCluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  const SweepResult result = EstimateBatch({}, kSched, source);
  EXPECT_TRUE(result.estimates.empty());
  EXPECT_EQ(result.stats.candidates, 0);
  EXPECT_EQ(result.stats.best_index, -1);
}

TEST(EstimateBatchTest, ExternalMemoAccumulatesAcrossCalls) {
  const DagWorkflow flow = KMeansFlow(Bytes::FromGB(5), 2).value();
  const BoeModel boe(kCluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  std::vector<EstimateRequest> requests{{&flow, kCluster, ""}};
  TaskTimeMemo memo;
  SweepOptions options;
  options.memo = &memo;
  const SweepResult first = EstimateBatch(requests, kSched, source, options);
  const SweepResult second = EstimateBatch(requests, kSched, source, options);
  // The second call answers everything from the memo warmed by the first,
  // and per-batch stats count only that batch's queries.
  EXPECT_EQ(second.stats.cache_misses, 0u);
  EXPECT_EQ(second.stats.cache_hit_rate, 1.0);
  ExpectIdentical(*first.estimates[0], *second.estimates[0]);
}

TEST(TaskTimeMemoTest, ScopeSeparatesEntries) {
  // Same context under different scopes must not collide: two node types
  // sharing one memo get distinct entries.
  DagBuilder builder("wc-scope");
  builder.AddJob(WordCountSpec(Bytes::FromGB(50)));  // CPU-bound, slots full.
  const DagWorkflow flow = std::move(builder).Build().value();
  const BoeModel boe_a(kCluster.node);
  NodeSpec slow = kCluster.node;
  slow.cores = 1;  // Same scheduler view, much weaker execution model.
  const BoeModel boe_b(slow);
  const BoeTaskTimeSource source_a(boe_a, Duration::Seconds(1));
  const BoeTaskTimeSource source_b(boe_b, Duration::Seconds(1));

  TaskTimeMemo memo;
  const MemoizedTaskTimeSource cached_a(source_a, &memo, "paper-node");
  const MemoizedTaskTimeSource cached_b(source_b, &memo, "slow-node");
  const StateBasedEstimator estimator(kCluster, kSched);
  const DagEstimate est_a = estimator.Estimate(flow, cached_a).value();
  const DagEstimate est_b = estimator.Estimate(flow, cached_b).value();
  // The scoped entries kept the two models apart: fewer cores, slower job.
  EXPECT_GT(est_b.makespan.seconds(), est_a.makespan.seconds());
  // And both match their uncached versions exactly.
  ExpectIdentical(est_a, estimator.Estimate(flow, source_a).value());
  ExpectIdentical(est_b, estimator.Estimate(flow, source_b).value());
}

}  // namespace
}  // namespace dagperf
