#include "model/sweep.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <numeric>
#include <random>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "model/task_time_cache.h"
#include "workloads/hibench.h"
#include "workloads/micro.h"
#include "workloads/suite.h"
#include "workloads/tpch.h"

namespace dagperf {
namespace {

const ClusterSpec kCluster = ClusterSpec::PaperCluster();
const SchedulerConfig kSched;

/// The golden-equivalence workload set: HiBench iterative DAGs, plain TPC-H
/// queries, and Table III hybrids (micro + TPC-H side by side).
std::vector<DagWorkflow> GoldenSuite() {
  std::vector<DagWorkflow> flows;
  flows.push_back(KMeansFlow(Bytes::FromGB(10), 2).value());
  flows.push_back(PageRankFlow(Bytes::FromGB(9), 2).value());
  flows.push_back(TpchQueryFlow(1, Bytes::FromGB(8)).value());
  flows.push_back(TpchQueryFlow(5, Bytes::FromGB(8)).value());
  flows.push_back(TableThreeFlow("TS-Q6", 0.1).value().flow);
  flows.push_back(TableThreeFlow("WC-KM", 0.1).value().flow);
  return flows;
}

/// Exact, bit-level comparison of two estimates. The sweep engine's
/// contract is bit-identity, so every double is compared with ==.
void ExpectIdentical(const DagEstimate& a, const DagEstimate& b) {
  EXPECT_EQ(a.makespan.seconds(), b.makespan.seconds());
  ASSERT_EQ(a.states.size(), b.states.size());
  for (size_t s = 0; s < a.states.size(); ++s) {
    EXPECT_EQ(a.states[s].index, b.states[s].index);
    EXPECT_EQ(a.states[s].start, b.states[s].start);
    EXPECT_EQ(a.states[s].duration, b.states[s].duration);
    const RunningSpan ra = a.running(a.states[s]);
    const RunningSpan rb = b.running(b.states[s]);
    ASSERT_EQ(ra.size(), rb.size());
    for (size_t r = 0; r < ra.size(); ++r) {
      EXPECT_EQ(ra[r].job, rb[r].job);
      EXPECT_EQ(ra[r].kind, rb[r].kind);
      EXPECT_EQ(ra[r].parallelism, rb[r].parallelism);
      EXPECT_EQ(ra[r].task_time_s, rb[r].task_time_s);
    }
  }
  ASSERT_EQ(a.stages.size(), b.stages.size());
  for (size_t s = 0; s < a.stages.size(); ++s) {
    EXPECT_EQ(a.stages[s].job, b.stages[s].job);
    EXPECT_EQ(a.stages[s].kind, b.stages[s].kind);
    EXPECT_EQ(a.stages[s].start, b.stages[s].start);
    EXPECT_EQ(a.stages[s].end, b.stages[s].end);
  }
}

TEST(SweepDeterminismTest, ParallelCachedMatchesSerialUncachedBitExactly) {
  const std::vector<DagWorkflow> flows = GoldenSuite();
  const BoeModel boe(kCluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));

  // Serial ground truth: the plain estimator, no cache, one flow at a time.
  const StateBasedEstimator estimator(kCluster, kSched);
  std::vector<DagEstimate> golden;
  for (const DagWorkflow& flow : flows) {
    golden.push_back(estimator.Estimate(flow, source).value());
  }

  std::vector<SweepCandidate> requests;
  for (const DagWorkflow& flow : flows) requests.push_back({&flow, kCluster, ""});
  SweepOptions options;
  options.threads = 4;  // Parallel + shared cache: the full sweep engine.
  const SweepResult batch = EstimateBatch(requests, kSched, source, options);

  ASSERT_EQ(batch.estimates.size(), flows.size());
  for (size_t i = 0; i < flows.size(); ++i) {
    ASSERT_TRUE(batch.estimates[i].ok()) << batch.estimates[i].status().ToString();
    ExpectIdentical(*batch.estimates[i], golden[i]);
  }
}

TEST(SweepDeterminismTest, SkewAwareCachedMatchesUncached) {
  // The Alg2-Normal path queries TaskTimeDist; the memo must be exact there
  // too.
  const DagWorkflow flow = TableThreeFlow("WC-Q6", 0.1).value().flow;
  const BoeModel boe(kCluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  EstimatorOptions est_options;
  est_options.skew_aware = true;

  const StateBasedEstimator estimator(kCluster, kSched, est_options);
  const DagEstimate golden = estimator.Estimate(flow, source).value();

  TaskTimeMemo memo;
  const MemoizedTaskTimeSource cached(source, &memo);
  // Two passes: the second answers everything from the memo.
  const DagEstimate first = estimator.Estimate(flow, cached).value();
  const DagEstimate second = estimator.Estimate(flow, cached).value();
  ExpectIdentical(first, golden);
  ExpectIdentical(second, golden);
  const TaskTimeMemo::Stats stats = memo.stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.entries, 0u);
}

TEST(SweepDeterminismTest, RepeatedBatchesAreStable) {
  // Same batch twice (fresh internal cache each time, different thread
  // interleavings): identical output both times.
  const DagWorkflow flow = TpchQueryFlow(9, Bytes::FromGB(8)).value();
  const BoeModel boe(kCluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  std::vector<SweepCandidate> requests;
  for (int i = 0; i < 8; ++i) requests.push_back({&flow, kCluster, ""});
  SweepOptions options;
  options.threads = 4;
  const SweepResult a = EstimateBatch(requests, kSched, source, options);
  const SweepResult b = EstimateBatch(requests, kSched, source, options);
  for (size_t i = 0; i < requests.size(); ++i) {
    ExpectIdentical(*a.estimates[i], *b.estimates[i]);
    ExpectIdentical(*a.estimates[i], *a.estimates[0]);
  }
  // Identical candidates share everything after the first: each one resumes
  // from the first candidate's full-depth checkpoint.
  EXPECT_EQ(a.stats.prefix_hits, requests.size() - 1);
  EXPECT_GT(a.stats.resumed_states, 0u);

  // With incremental resume off, the sharing falls back to the task-time
  // memo: high hit rate, still bit-identical.
  options.incremental = false;
  const SweepResult c = EstimateBatch(requests, kSched, source, options);
  for (size_t i = 0; i < requests.size(); ++i) {
    ExpectIdentical(*c.estimates[i], *a.estimates[i]);
  }
  EXPECT_GT(c.stats.cache_hit_rate, 0.5);
}

TEST(SweepDeterminismTest, IncrementalMatchesFullReplayOnGoldenSuite) {
  // The incremental engine's contract over the whole golden workload set:
  // resuming from prefix checkpoints must be indistinguishable, bit for bit,
  // from replaying every candidate in full.
  const std::vector<DagWorkflow> flows = GoldenSuite();
  const BoeModel boe(kCluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));

  std::vector<SweepCandidate> requests;
  for (const DagWorkflow& flow : flows) requests.push_back({&flow, kCluster, ""});
  // Duplicate the suite so every flow has a full-depth checkpoint to hit.
  for (const DagWorkflow& flow : flows) requests.push_back({&flow, kCluster, ""});

  SweepOptions incremental;
  incremental.threads = 4;
  SweepOptions replay;
  replay.threads = 4;
  replay.incremental = false;
  const SweepResult fast = EstimateBatch(requests, kSched, source, incremental);
  const SweepResult full = EstimateBatch(requests, kSched, source, replay);
  ASSERT_EQ(fast.estimates.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(fast.estimates[i].ok()) << fast.estimates[i].status().ToString();
    ExpectIdentical(*fast.estimates[i], *full.estimates[i]);
  }
  // The duplicated half actually exercised resume.
  EXPECT_GE(fast.stats.prefix_hits, flows.size());
  EXPECT_GT(fast.stats.resumed_states, 0u);
  EXPECT_EQ(full.stats.prefix_hits, 0u);
}

/// A three-job chain whose last job carries the swept knob — the dense
/// tuner-neighborhood shape the incremental engine is built for.
DagWorkflow ChainWithReducers(int reducers) {
  DagBuilder builder("chain-r" + std::to_string(reducers));
  const JobId a = builder.AddJob(WordCountSpec(Bytes::FromGB(20)));
  const JobId b = builder.AddJobAfter(a, TsSpec(Bytes::FromGB(10)));
  JobSpec last = TsSpec(Bytes::FromGB(5));
  last.num_reduce_tasks = reducers;
  builder.AddJobAfter(b, last);
  return std::move(builder).Build().value();
}

TEST(SweepDeterminismTest, RandomizedKnobOrderingsStayBitIdentical) {
  // Checkpoint resume depth depends on what happens to be in the store when
  // a candidate runs, which depends on evaluation order — but the *results*
  // must not. Sweep the same neighborhood under shuffled request orders and
  // demand every estimate equals its serial uncached golden.
  std::vector<DagWorkflow> flows;
  std::vector<int> knobs = {4, 8, 12, 16, 24, 32, 48, 64};
  for (int reducers : knobs) flows.push_back(ChainWithReducers(reducers));

  const BoeModel boe(kCluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  const StateBasedEstimator estimator(kCluster, kSched);
  std::vector<DagEstimate> golden;
  for (const DagWorkflow& flow : flows) {
    golden.push_back(estimator.Estimate(flow, source).value());
  }

  std::vector<size_t> perm(flows.size());
  std::iota(perm.begin(), perm.end(), 0);
  for (unsigned seed = 0; seed < 4; ++seed) {
    if (seed > 0) {
      std::mt19937 rng(seed);
      std::shuffle(perm.begin(), perm.end(), rng);
    }
    std::vector<SweepCandidate> requests;
    for (size_t i : perm) requests.push_back({&flows[i], kCluster, ""});
    SweepOptions options;
    options.threads = 4;
    const SweepResult batch = EstimateBatch(requests, kSched, source, options);
    for (size_t slot = 0; slot < perm.size(); ++slot) {
      ASSERT_TRUE(batch.estimates[slot].ok())
          << batch.estimates[slot].status().ToString();
      ExpectIdentical(*batch.estimates[slot], golden[perm[slot]]);
    }
    // The shared two-job prefix was found no matter the order.
    EXPECT_GT(batch.stats.prefix_hits, 0u) << "seed " << seed;
    EXPECT_GT(batch.stats.resumed_states, 0u) << "seed " << seed;
  }
}

TEST(EstimateBatchTest, ReducerSweepSharesMapWork) {
  const Result<std::vector<DagWorkflow>> flows =
      BuildReducerCandidates(TsSpec(Bytes::FromGB(20)), {8, 16, 32, 64});
  ASSERT_TRUE(flows.ok());
  const BoeModel boe(kCluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  std::vector<SweepCandidate> requests;
  for (const DagWorkflow& flow : *flows) requests.push_back({&flow, kCluster, ""});
  const SweepResult result = EstimateBatch(requests, kSched, source);

  EXPECT_EQ(result.stats.candidates, 4);
  EXPECT_EQ(result.stats.failures, 0);
  // The map stage is identical across candidates; its states must hit.
  EXPECT_GT(result.stats.cache_hits, 0u);
  // best_index is the first minimal makespan.
  ASSERT_GE(result.stats.best_index, 0);
  for (const auto& estimate : result.estimates) {
    EXPECT_GE(estimate->makespan, result.stats.best_makespan);
  }
}

TEST(EstimateBatchTest, ReportsPerCandidateFailures) {
  const DagWorkflow flow = TpchQueryFlow(1, Bytes::FromGB(4)).value();
  std::vector<SweepCandidate> requests;
  requests.push_back({&flow, kCluster, "good"});
  requests.push_back({nullptr, kCluster, "no-flow"});
  ClusterSpec bad = kCluster;
  bad.num_nodes = 0;
  requests.push_back({&flow, bad, "bad-cluster"});

  const BoeModel boe(kCluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  const SweepResult result = EstimateBatch(requests, kSched, source);
  EXPECT_TRUE(result.estimates[0].ok());
  EXPECT_FALSE(result.estimates[1].ok());
  EXPECT_FALSE(result.estimates[2].ok());
  EXPECT_EQ(result.stats.failures, 2);
  EXPECT_EQ(result.stats.best_index, 0);
}

TEST(EstimateBatchTest, EmptyBatch) {
  const BoeModel boe(kCluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  const SweepResult result = EstimateBatch({}, kSched, source);
  EXPECT_TRUE(result.estimates.empty());
  EXPECT_EQ(result.stats.candidates, 0);
  EXPECT_EQ(result.stats.best_index, -1);
}

TEST(EstimateBatchTest, ExternalMemoAccumulatesAcrossCalls) {
  const DagWorkflow flow = KMeansFlow(Bytes::FromGB(5), 2).value();
  const BoeModel boe(kCluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  std::vector<SweepCandidate> requests{{&flow, kCluster, ""}};
  TaskTimeMemo memo;
  SweepOptions options;
  options.memo = &memo;
  const SweepResult first = EstimateBatch(requests, kSched, source, options);
  const SweepResult second = EstimateBatch(requests, kSched, source, options);
  // The second call answers everything from the memo warmed by the first,
  // and per-batch stats count only that batch's queries.
  EXPECT_EQ(second.stats.cache_misses, 0u);
  EXPECT_EQ(second.stats.cache_hit_rate, 1.0);
  ExpectIdentical(*first.estimates[0], *second.estimates[0]);
}

TEST(TaskTimeMemoTest, ScopeSeparatesEntries) {
  // Same context under different scopes must not collide: two node types
  // sharing one memo get distinct entries.
  DagBuilder builder("wc-scope");
  builder.AddJob(WordCountSpec(Bytes::FromGB(50)));  // CPU-bound, slots full.
  const DagWorkflow flow = std::move(builder).Build().value();
  const BoeModel boe_a(kCluster.node);
  NodeSpec slow = kCluster.node;
  slow.cores = 1;  // Same scheduler view, much weaker execution model.
  const BoeModel boe_b(slow);
  const BoeTaskTimeSource source_a(boe_a, Duration::Seconds(1));
  const BoeTaskTimeSource source_b(boe_b, Duration::Seconds(1));

  TaskTimeMemo memo;
  const MemoizedTaskTimeSource cached_a(source_a, &memo, "paper-node");
  const MemoizedTaskTimeSource cached_b(source_b, &memo, "slow-node");
  const StateBasedEstimator estimator(kCluster, kSched);
  const DagEstimate est_a = estimator.Estimate(flow, cached_a).value();
  const DagEstimate est_b = estimator.Estimate(flow, cached_b).value();
  // The scoped entries kept the two models apart: fewer cores, slower job.
  EXPECT_GT(est_b.makespan.seconds(), est_a.makespan.seconds());
  // And both match their uncached versions exactly.
  ExpectIdentical(est_a, estimator.Estimate(flow, source_a).value());
  ExpectIdentical(est_b, estimator.Estimate(flow, source_b).value());
}

/// A deterministic source made artificially slow: every query sleeps before
/// delegating, so candidates overstay any small hedge delay and the race
/// machinery actually engages. The delay must sleep, not spin: on a one-core
/// host a busy-wait starves the hedge timer thread of the CPU and the race
/// never launches. Values are untouched — the bit-identity contract must
/// hold no matter which side of a race finishes first.
class SlowedSource : public TaskTimeSource {
 public:
  SlowedSource(const TaskTimeSource& inner, double delay_us)
      : inner_(inner), delay_us_(delay_us) {}

  Duration TaskTime(const EstimationContext& context) const override {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::micro>(delay_us_));
    return inner_.TaskTime(context);
  }

  NormalParams TaskTimeDist(const EstimationContext& context) const override {
    return inner_.TaskTimeDist(context);
  }

 private:
  const TaskTimeSource& inner_;
  const double delay_us_;
};

TEST(SweepHedgeTest, HedgedResultsAreBitIdenticalToUnhedged) {
  Result<std::vector<DagWorkflow>> flows = BuildReducerCandidates(
      WordCountSpec(Bytes::FromGB(20)), {8, 16, 24, 32, 48, 64, 96, 128});
  ASSERT_TRUE(flows.ok());
  std::vector<SweepCandidate> candidates;
  for (const DagWorkflow& flow : *flows) {
    candidates.push_back({&flow, kCluster, flow.name()});
  }
  const BoeModel boe(kCluster.node);
  const BoeTaskTimeSource fast(boe, Duration::Seconds(1));
  const SlowedSource slow(fast, /*delay_us=*/200.0);

  // Serial, unhedged, uncached: the golden bits.
  SweepOptions serial;
  serial.threads = 1;
  serial.memoize = false;
  serial.incremental = false;
  const SweepResult golden = EstimateBatch(candidates, kSched, fast, serial);

  // An explicit pool: a dedicated pool sized by `threads` is clamped to the
  // hardware, and a one-core CI machine would degrade to the serial loop
  // where hedging never arms. A caller-owned pool is taken as-is.
  ThreadPool pool(4);

  // Warm the process-wide latency window so the hedge delay is computable
  // (hedging stays dormant until the window holds min_samples completions).
  SweepOptions warm;
  warm.pool = &pool;
  warm.memoize = false;
  warm.incremental = false;
  EstimateBatch(candidates, kSched, slow, warm);

  SweepOptions hedged = warm;
  hedged.hedge.enabled = true;
  hedged.hedge.min_samples = 1;
  hedged.hedge.quantile = 0.5;
  hedged.hedge.min_delay_ms = 0.05;
  hedged.hedge.max_delay_ms = 0.1;
  const SweepResult raced = EstimateBatch(candidates, kSched, slow, hedged);

  ASSERT_EQ(raced.estimates.size(), golden.estimates.size());
  for (size_t i = 0; i < raced.estimates.size(); ++i) {
    ASSERT_TRUE(raced.estimates[i].ok())
        << raced.estimates[i].status().ToString();
    ExpectIdentical(*raced.estimates[i], *golden.estimates[i]);
  }
  // Candidates are far slower than the forced delay, so the race engaged;
  // every launched hedge either won, lost after running (wasted), or was
  // skipped before starting — never more outcomes than launches.
  EXPECT_GT(raced.stats.hedges_launched, 0u);
  EXPECT_LE(raced.stats.hedges_won + raced.stats.hedges_wasted,
            raced.stats.hedges_launched);
  // Latency is recorded per candidate whether or not its race was hedged.
  for (const double latency_ms : raced.candidate_latency_ms) {
    EXPECT_GE(latency_ms, 0.0);
  }
}

TEST(SweepHedgeTest, HedgingStaysDormantBelowMinSamples) {
  Result<std::vector<DagWorkflow>> flows =
      BuildReducerCandidates(WordCountSpec(Bytes::FromGB(10)), {8, 16});
  ASSERT_TRUE(flows.ok());
  std::vector<SweepCandidate> candidates;
  for (const DagWorkflow& flow : *flows) {
    candidates.push_back({&flow, kCluster, flow.name()});
  }
  const BoeModel boe(kCluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));

  ThreadPool pool(2);
  SweepOptions options;
  options.pool = &pool;
  options.hedge.enabled = true;
  // A threshold no test run reaches: the window cannot justify a delay, so
  // no hedge may launch even with hedging enabled.
  options.hedge.min_samples = 1000000000;
  const SweepResult result = EstimateBatch(candidates, kSched, source, options);
  for (const Result<DagEstimate>& estimate : result.estimates) {
    ASSERT_TRUE(estimate.ok());
  }
  EXPECT_EQ(result.stats.hedges_launched, 0u);
  EXPECT_EQ(result.stats.hedges_won, 0u);
  EXPECT_EQ(result.stats.hedges_wasted, 0u);
}

}  // namespace
}  // namespace dagperf
