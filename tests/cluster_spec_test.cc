#include "cluster/cluster_spec.h"

#include <gtest/gtest.h>

namespace dagperf {
namespace {

TEST(NodeSpecTest, CapacitiesMatchSpec) {
  NodeSpec node;
  node.cores = 8;
  node.disk_read_bw = Rate::MBps(400);
  node.disk_write_bw = Rate::MBps(300);
  node.network_bw = Rate::Gbps(10);
  const ResourceVector caps = node.Capacities();
  EXPECT_DOUBLE_EQ(caps[Resource::kDiskRead], 4e8);
  EXPECT_DOUBLE_EQ(caps[Resource::kDiskWrite], 3e8);
  EXPECT_DOUBLE_EQ(caps[Resource::kNetwork], 1.25e9);
  EXPECT_DOUBLE_EQ(caps[Resource::kCpu], 8.0);
}

TEST(ClusterSpecTest, PaperClusterMatchesSection5A) {
  const ClusterSpec c = ClusterSpec::PaperCluster();
  EXPECT_EQ(c.num_nodes, 11);
  EXPECT_EQ(c.node.cores, 6);
  EXPECT_EQ(c.TotalCores(), 66);
  EXPECT_DOUBLE_EQ(c.node.memory.ToGB(), 32.0);
  EXPECT_DOUBLE_EQ(c.node.network_bw.ToMBps(), 125.0);
  EXPECT_TRUE(c.Validate().ok());
}

TEST(ClusterSpecTest, ValidateRejectsNonPositive) {
  ClusterSpec c = ClusterSpec::PaperCluster();
  c.num_nodes = 0;
  EXPECT_FALSE(c.Validate().ok());

  c = ClusterSpec::PaperCluster();
  c.node.cores = -1;
  EXPECT_FALSE(c.Validate().ok());

  c = ClusterSpec::PaperCluster();
  c.node.network_bw = Rate(0);
  EXPECT_FALSE(c.Validate().ok());

  c = ClusterSpec::PaperCluster();
  c.node.memory = Bytes(0);
  EXPECT_FALSE(c.Validate().ok());
}

TEST(ResourceVectorTest, Arithmetic) {
  ResourceVector a;
  a[Resource::kCpu] = 2;
  a[Resource::kNetwork] = 10;
  ResourceVector b;
  b[Resource::kCpu] = 1;
  const ResourceVector sum = a + b;
  EXPECT_DOUBLE_EQ(sum[Resource::kCpu], 3);
  EXPECT_DOUBLE_EQ(sum[Resource::kNetwork], 10);
  const ResourceVector scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled[Resource::kCpu], 4);
}

TEST(ResourceVectorTest, Names) {
  EXPECT_STREQ(ResourceName(Resource::kDiskRead), "disk-read");
  EXPECT_STREQ(ResourceName(Resource::kDiskWrite), "disk-write");
  EXPECT_STREQ(ResourceName(Resource::kNetwork), "network");
  EXPECT_STREQ(ResourceName(Resource::kCpu), "cpu");
}

}  // namespace
}  // namespace dagperf
