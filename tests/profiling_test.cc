#include "engine/profiling.h"

#include <gtest/gtest.h>

#include "boe/boe_model.h"
#include "engine/builtin.h"
#include "engine/datagen.h"

namespace dagperf {
namespace {

TEST(ProfilingTest, SelectivitiesMatchMeasuredBytes) {
  LocalStore store;
  GenerateText(store, "in", Bytes::FromKB(500), 500, 1.0);
  MapReduceEngine engine(&store);
  const EngineJobConfig job = WordCountJob("in", "out");
  const JobMetrics metrics = engine.Run(job).value();

  const JobSpec spec = SpecFromMetrics(metrics).value();
  EXPECT_EQ(spec.name, "wordcount");
  EXPECT_NEAR(spec.map_selectivity,
              static_cast<double>(metrics.map.bytes_out) / metrics.map.bytes_in,
              1e-12);
  EXPECT_NEAR(spec.reduce_selectivity,
              static_cast<double>(metrics.reduce.bytes_out) / metrics.shuffle_bytes,
              1e-12);
  EXPECT_DOUBLE_EQ(spec.input.value(), static_cast<double>(metrics.map.bytes_in));
  // WordCount's combiner makes map output much smaller than its input.
  EXPECT_LT(spec.map_selectivity, 0.6);
  EXPECT_GT(spec.map_compute.bytes_per_sec(), 0.0);
  EXPECT_TRUE(CompileJob(spec).ok());  // The models can consume it directly.
}

TEST(ProfilingTest, MapOnlyJobProfilesAsMapOnly) {
  LocalStore store;
  GenerateText(store, "in", Bytes::FromKB(100), 100, 1.0);
  MapReduceEngine engine(&store);
  const JobSpec spec =
      ProfileEngineJob(engine, GrepJob("in", "out", "qq")).value();
  EXPECT_EQ(spec.num_reduce_tasks, 0);
  EXPECT_TRUE(store.Exists("out"));  // The run really happened.
}

TEST(ProfilingTest, InputScalePreservesRatios) {
  LocalStore store;
  GenerateText(store, "in", Bytes::FromKB(200), 300, 1.0);
  MapReduceEngine engine(&store);
  const JobMetrics metrics = engine.Run(WordCountJob("in", "out")).value();

  ProfilingOptions small;
  ProfilingOptions big;
  big.input_scale = 1000.0;
  const JobSpec s = SpecFromMetrics(metrics, small).value();
  const JobSpec b = SpecFromMetrics(metrics, big).value();
  EXPECT_NEAR(b.input.value(), 1000.0 * s.input.value(), 1.0);
  EXPECT_DOUBLE_EQ(b.map_selectivity, s.map_selectivity);
  // Reducer density preserved: 1000x data -> ~1000x reducers.
  EXPECT_NEAR(static_cast<double>(b.num_reduce_tasks),
              1000.0 * s.num_reduce_tasks, 0.51 * 1000.0);
}

TEST(ProfilingTest, DefaultsCarryNonMeasurables) {
  LocalStore store;
  GenerateText(store, "in", Bytes::FromKB(100), 100, 1.0);
  MapReduceEngine engine(&store);
  ProfilingOptions options;
  options.defaults.replicas = 3;
  options.defaults.compress_map_output = true;
  options.defaults.reduce_skew_cv = 0.2;
  const JobSpec spec =
      ProfileEngineJob(engine, WordCountJob("in", "out"), options).value();
  EXPECT_EQ(spec.replicas, 3);
  EXPECT_TRUE(spec.compress_map_output);
  EXPECT_DOUBLE_EQ(spec.reduce_skew_cv, 0.2);
}

TEST(ProfilingTest, RejectsDegenerateInput) {
  JobMetrics empty;
  empty.job_name = "empty";
  EXPECT_FALSE(SpecFromMetrics(empty).ok());

  JobMetrics ok;
  ok.job_name = "ok";
  ok.map.bytes_in = 100;
  ProfilingOptions bad_scale;
  bad_scale.input_scale = 0;
  EXPECT_FALSE(SpecFromMetrics(ok, bad_scale).ok());
}

TEST(ProfilingTest, ProfiledSpecDrivesBoeEndToEnd) {
  // The full loop: run a real job, extract its profile, scale it to
  // cluster size, and ask the analytical models about it.
  LocalStore store;
  GenerateText(store, "in", Bytes::FromKB(500), 1000, 1.0);
  MapReduceEngine engine(&store);
  ProfilingOptions options;
  options.input_scale = 2e5;  // ~100 GB modelled from a 500 KB profile run.
  const JobSpec spec =
      ProfileEngineJob(engine, WordCountJob("in", "out"), options).value();
  const JobProfile profile = CompileJob(spec).value();
  const BoeModel model(ClusterSpec::PaperCluster().node);
  const TaskEstimate est = model.EstimateTask(profile.map, 6.0);
  EXPECT_GT(est.duration.seconds(), 0.0);
  EXPECT_TRUE(std::isfinite(est.duration.seconds()));
}

}  // namespace
}  // namespace dagperf
