// TCP transport edge-case tests: real loopback sockets against ServeTcp.
// Covers the corners a stream pump never sees — connections that close
// without sending a byte, requests torn across 1-byte segments, two requests
// arriving in one packet, per-connection response ordering under concurrent
// connections, the line-length cap, PARSE_ERROR framing, and the mid-line
// idle timeout.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "service/server.h"
#include "service/service.h"
#include "workloads/suite.h"

namespace dagperf {
namespace {

DagWorkflow TestFlow() {
  Result<NamedFlow> named = TableThreeFlow("TS-Q6", 0.01);
  EXPECT_TRUE(named.ok()) << named.status().ToString();
  return std::move(named).value().flow;
}

/// Runs ServeTcp on a background thread and owns its stop token; the
/// constructor blocks until the kernel-assigned port is known.
class TestTcpServer {
 public:
  TestTcpServer(EstimationService& service, TcpServerOptions options = {}) {
    options.stop = stop_;
    std::promise<int> port_promise;
    std::future<int> port_future = port_promise.get_future();
    options.on_listen = [&port_promise](int port) {
      port_promise.set_value(port);
    };
    thread_ = std::thread(
        [this, &service, options] { result_ = ServeTcp(service, options); });
    port_ = port_future.get();
  }

  ~TestTcpServer() { Stop(); }

  /// Fires the stop token and joins; returns the serve result. Idempotent.
  const Result<TcpServeSummary>& Stop() {
    if (thread_.joinable()) {
      stop_.Cancel();
      thread_.join();
    }
    return result_;
  }

  /// Joins without firing stop — for tests where drain ends the loop.
  const Result<TcpServeSummary>& Join() {
    if (thread_.joinable()) thread_.join();
    return result_;
  }

  int port() const { return port_; }

 private:
  CancelToken stop_ = CancelToken::Cancellable();
  std::thread thread_;
  int port_ = 0;
  Result<TcpServeSummary> result_ = Status::Internal("serve never ran");
};

/// A blocking loopback client with line-oriented reads.
class TestClient {
 public:
  explicit TestClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(
        ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
        0);
  }

  ~TestClient() { Close(); }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  void Send(const std::string& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      sent += static_cast<std::size_t>(n);
    }
  }

  /// Reads until '\n' (consumed, not returned). Fails the test on timeout or
  /// early close.
  std::string ReadLine(double timeout_seconds = 10.0) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(timeout_seconds);
    for (;;) {
      const std::size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        std::string line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return line;
      }
      const auto remaining = deadline - std::chrono::steady_clock::now();
      const int wait_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(remaining)
              .count());
      if (wait_ms <= 0) {
        ADD_FAILURE() << "timed out waiting for a response line";
        return "";
      }
      pollfd pfd{fd_, POLLIN, 0};
      if (::poll(&pfd, 1, wait_ms) <= 0) continue;
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        ADD_FAILURE() << "connection closed before a full line arrived";
        return "";
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// True if the peer closes the connection within the timeout.
  bool WaitForClose(double timeout_seconds) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(timeout_seconds);
    for (;;) {
      const auto remaining = deadline - std::chrono::steady_clock::now();
      const int wait_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(remaining)
              .count());
      if (wait_ms <= 0) return false;
      pollfd pfd{fd_, POLLIN, 0};
      if (::poll(&pfd, 1, wait_ms) <= 0) continue;
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n == 0) return true;
      if (n < 0) return true;  // Reset also counts as closed.
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

Json MustParse(const std::string& line) {
  Result<Json> parsed = Json::Parse(line);
  EXPECT_TRUE(parsed.ok()) << "unparseable response: " << line;
  return parsed.ok() ? std::move(parsed).value() : Json();
}

std::string EstimateLine(int id) {
  return R"({"op":"estimate","workflow":"q6","id":)" + std::to_string(id) +
         "}\n";
}

TEST(ServerTransport, ConnectThenCloseWithoutBytesIsHarmless) {
  EstimationService service;
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());
  TestTcpServer server(service);
  {
    TestClient ghost(server.port());
    ghost.Close();
  }
  // The server is unfazed: a real client still gets served.
  TestClient client(server.port());
  client.Send(EstimateLine(1));
  const Json response = MustParse(client.ReadLine());
  EXPECT_TRUE(response.GetBool("ok", false));
  EXPECT_EQ(response.GetNumber("id", -1), 1);

  const Result<TcpServeSummary>& summary = server.Stop();
  ASSERT_TRUE(summary.ok());
  EXPECT_TRUE(summary->stopped);
  EXPECT_EQ(summary->requests, 1u);
  EXPECT_GE(summary->connections, 2u);
}

TEST(ServerTransport, RequestTornAcrossByteSizedSegmentsIsReassembled) {
  EstimationService service;
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());
  TestTcpServer server(service);
  TestClient client(server.port());

  const std::string request = EstimateLine(7);
  for (char byte : request) {
    client.Send(std::string(1, byte));
  }
  const Json response = MustParse(client.ReadLine());
  EXPECT_TRUE(response.GetBool("ok", false));
  EXPECT_EQ(response.GetNumber("id", -1), 7);
}

TEST(ServerTransport, TwoRequestsInOnePacketGetTwoOrderedResponses) {
  EstimationService service;
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());
  TestTcpServer server(service);
  TestClient client(server.port());

  client.Send(EstimateLine(1) + EstimateLine(2));
  EXPECT_EQ(MustParse(client.ReadLine()).GetNumber("id", -1), 1);
  EXPECT_EQ(MustParse(client.ReadLine()).GetNumber("id", -1), 2);
}

TEST(ServerTransport, ResponsesStayOrderedPerConnectionUnderConcurrency) {
  ServiceOptions options;
  options.threads = 4;
  EstimationService service(options);
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());
  TestTcpServer server(service);

  constexpr int kClients = 4;
  constexpr int kRequests = 5;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&server, c] {
      TestClient client(server.port());
      std::string batch;
      for (int r = 0; r < kRequests; ++r) {
        batch += EstimateLine(c * 100 + r);
      }
      client.Send(batch);
      for (int r = 0; r < kRequests; ++r) {
        const Json response = MustParse(client.ReadLine());
        EXPECT_TRUE(response.GetBool("ok", false));
        // Pipelined responses come back in request order on each connection
        // even while other connections are interleaved in the service.
        EXPECT_EQ(response.GetNumber("id", -1), c * 100 + r);
      }
    });
  }
  for (std::thread& thread : clients) thread.join();

  const Result<TcpServeSummary>& summary = server.Stop();
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->requests,
            static_cast<std::uint64_t>(kClients * kRequests));
}

TEST(ServerTransport, OversizedLineIsAnsweredAndConnectionSurvives) {
  EstimationService service;
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());
  TcpServerOptions options;
  options.max_line_bytes = 256;
  TestTcpServer server(service, options);
  TestClient client(server.port());

  client.Send(std::string(1000, 'x') + "\n");
  const Json oversized = MustParse(client.ReadLine());
  EXPECT_FALSE(oversized.GetBool("ok", true));
  const Json* id = oversized.Get("id");
  ASSERT_NE(id, nullptr);
  EXPECT_TRUE(id->is_null());
  const Json* error = oversized.Get("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->GetString("code", ""), "INVALID_ARGUMENT");

  // The connection keeps working: the oversized frame was discarded up to
  // its newline, not left to poison the buffer.
  client.Send(EstimateLine(3));
  const Json ok = MustParse(client.ReadLine());
  EXPECT_TRUE(ok.GetBool("ok", false));
  EXPECT_EQ(ok.GetNumber("id", -1), 3);
}

TEST(ServerTransport, MalformedJsonGetsParseErrorWithNullId) {
  EstimationService service;
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());
  TestTcpServer server(service);
  TestClient client(server.port());

  client.Send("this is not json\n");
  const Json response = MustParse(client.ReadLine());
  EXPECT_FALSE(response.GetBool("ok", true));
  const Json* id = response.Get("id");
  ASSERT_NE(id, nullptr);
  EXPECT_TRUE(id->is_null());
  const Json* error = response.Get("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->GetString("code", ""), "PARSE_ERROR");
  EXPECT_FALSE(error->GetBool("retryable", true));

  // Parse errors are per line, not per connection.
  client.Send(EstimateLine(9));
  EXPECT_EQ(MustParse(client.ReadLine()).GetNumber("id", -1), 9);
}

TEST(ServerTransport, MidLineIdleTimeoutClosesTheConnection) {
  EstimationService service;
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());
  TcpServerOptions options;
  options.read_idle_timeout_seconds = 0.15;
  TestTcpServer server(service, options);

  TestClient torn(server.port());
  torn.Send(R"({"op":"estimate)");  // A frame that never finishes.
  EXPECT_TRUE(torn.WaitForClose(5.0));

  // Idle *between* requests is fine: a quiet but well-framed client is kept.
  TestClient polite(server.port());
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  polite.Send(EstimateLine(1));
  EXPECT_EQ(MustParse(polite.ReadLine()).GetNumber("id", -1), 1);
}

TEST(ServerTransport, DrainVerbStopsTheServer) {
  EstimationService service;
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());
  TestTcpServer server(service);
  TestClient client(server.port());

  client.Send(R"({"op":"drain","id":1})" "\n");
  const Json response = MustParse(client.ReadLine());
  EXPECT_TRUE(response.GetBool("ok", false));
  client.Close();

  const Result<TcpServeSummary>& summary = server.Join();
  ASSERT_TRUE(summary.ok());
  EXPECT_TRUE(summary->drained);
  EXPECT_FALSE(summary->stopped);
}

}  // namespace
}  // namespace dagperf
