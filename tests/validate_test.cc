// Validation-firewall tests (docs/robustness.md): multi-error reports with
// JSON pointers for job specs, workflow topology, cluster hardware, and the
// BOE node check; plus the firewall wiring — estimator and simulator return
// InvalidArgument (never abort) on malformed-but-parseable inputs.

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "boe/boe_model.h"
#include "cluster/validate.h"
#include "common/json.h"
#include "dag/spec_io.h"
#include "dag/validate.h"
#include "model/state_estimator.h"
#include "model/task_time_source.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "workloads/micro.h"

namespace dagperf {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

DagWorkflow SingleJobFlow(const JobSpec& spec) {
  DagBuilder builder(spec.name);
  builder.AddJob(spec);
  Result<DagWorkflow> flow = std::move(builder).Build();
  EXPECT_TRUE(flow.ok()) << flow.status().ToString();
  return std::move(flow).value();
}

bool HasViolationAt(const ValidationReport& report, const std::string& pointer) {
  for (const auto& v : report.violations()) {
    if (v.pointer == pointer) return true;
  }
  return false;
}

TEST(ValidateJobSpec, AccumulatesEveryViolationWithPointers) {
  JobSpec spec = WordCountSpec(Bytes::FromGB(1));
  spec.input = Bytes(-5);
  spec.split_size = Bytes(0);
  spec.map_selectivity = kNaN;
  spec.replicas = -1;
  const ValidationReport report = ValidateJobSpec(spec);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolationAt(report, "/input_gb"));
  EXPECT_TRUE(HasViolationAt(report, "/split_mb"));
  EXPECT_TRUE(HasViolationAt(report, "/map_selectivity"));
  EXPECT_TRUE(HasViolationAt(report, "/replicas"));
  EXPECT_GE(report.violations().size(), 4u);
}

TEST(ValidateJobSpec, CleanSpecPasses) {
  EXPECT_TRUE(ValidateJobSpec(WordCountSpec(Bytes::FromGB(100))).ok());
}

TEST(ValidateJobSpec, DerivedMapCountOverflowIsCaught) {
  JobSpec spec = WordCountSpec(Bytes::FromGB(1));
  spec.input = Bytes::FromGB(1e9);
  spec.split_size = Bytes(1);
  const ValidationReport report = ValidateJobSpec(spec);
  EXPECT_TRUE(HasViolationAt(report, "/split_mb"));
}

TEST(ValidateJobSpec, AutoReducerOverflowIsCaught) {
  JobSpec spec = WordCountSpec(Bytes::FromGB(1));
  spec.num_reduce_tasks = kAutoReducers;
  spec.map_selectivity = 1e15;  // raw map output in the exabytes
  const ValidationReport report = ValidateJobSpec(spec);
  EXPECT_FALSE(report.ok());
}

TEST(ValidateWorkflowSpec, CycleAndEdgeErrorsAccumulate) {
  std::vector<JobSpec> jobs = {WordCountSpec(Bytes::FromGB(1)),
                               WordCountSpec(Bytes::FromGB(1))};
  jobs[1].name = "second";
  const std::vector<std::pair<JobId, JobId>> edges = {
      {0, 1}, {1, 0}, {0, 0}, {0, 1}, {0, 99}};
  const ValidationReport report = ValidateWorkflowSpec(jobs, edges);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolationAt(report, "/edges/2"));  // self-edge
  EXPECT_TRUE(HasViolationAt(report, "/edges/3"));  // duplicate
  EXPECT_TRUE(HasViolationAt(report, "/edges/4/1"));  // out of range
  // The cycle is reported too, naming the jobs involved.
  const std::string text = report.ToString("flow");
  EXPECT_NE(text.find("cycle"), std::string::npos) << text;
}

TEST(ValidateWorkflowSpec, EmptyWorkflowRejected) {
  const ValidationReport report = ValidateWorkflowSpec({}, {});
  EXPECT_TRUE(HasViolationAt(report, "/jobs"));
}

TEST(SpecIo, WrongTypedFieldsRejectedNotAborted) {
  const Result<Json> doc = Json::Parse(
      R"({"jobs": [{"name": "a", "input_gb": "ten"}], "edges": []})");
  ASSERT_TRUE(doc.ok());
  const Result<DagWorkflow> flow = WorkflowFromJson(*doc);
  ASSERT_FALSE(flow.ok());
  EXPECT_EQ(flow.status().code(), ErrorCode::kInvalidArgument);
}

TEST(SpecIo, HugeReducerCountRejected) {
  const Result<Json> doc = Json::Parse(
      R"({"jobs": [{"name": "a", "input_gb": 1,
                    "num_reduce_tasks": 1e12}], "edges": []})");
  ASSERT_TRUE(doc.ok());
  const Result<DagWorkflow> flow = WorkflowFromJson(*doc);
  ASSERT_FALSE(flow.ok());
  EXPECT_EQ(flow.status().code(), ErrorCode::kInvalidArgument);
}

TEST(SpecIo, StringEdgesRejected) {
  const Result<Json> doc = Json::Parse(
      R"({"jobs": [{"name": "a"}, {"name": "b"}], "edges": [["a", "b"]]})");
  ASSERT_TRUE(doc.ok());
  const Result<DagWorkflow> flow = WorkflowFromJson(*doc);
  ASSERT_FALSE(flow.ok());
  EXPECT_EQ(flow.status().code(), ErrorCode::kInvalidArgument);
}

TEST(SpecIo, CyclicDocumentReportsAllViolations) {
  const Result<Json> doc = Json::Parse(
      R"({"jobs": [{"name": "a", "input_gb": -1}, {"name": "b"}],
          "edges": [[0, 1], [1, 0]]})");
  ASSERT_TRUE(doc.ok());
  const Result<DagWorkflow> flow = WorkflowFromJson(*doc);
  ASSERT_FALSE(flow.ok());
  const std::string& msg = flow.status().message();
  EXPECT_NE(msg.find("/jobs/0/input_gb"), std::string::npos) << msg;
  EXPECT_NE(msg.find("cycle"), std::string::npos) << msg;
}

TEST(ValidateClusterSpec, FlagsEveryBadAxis) {
  ClusterSpec cluster = ClusterSpec::PaperCluster();
  cluster.num_nodes = 0;
  cluster.node.cores = -2;
  cluster.node.disk_read_bw = Rate::MBps(kNaN);
  cluster.node.network_bw = Rate::MBps(kInf);
  cluster.node.memory = Bytes(0);
  const ValidationReport report = ValidateClusterSpec(cluster);
  EXPECT_TRUE(HasViolationAt(report, "/num_nodes"));
  EXPECT_TRUE(HasViolationAt(report, "/node/cores"));
  EXPECT_TRUE(HasViolationAt(report, "/node/disk_read_bw_mbps"));
  EXPECT_TRUE(HasViolationAt(report, "/node/network_bw_mbps"));
  EXPECT_TRUE(HasViolationAt(report, "/node/memory_gb"));
}

TEST(ValidateClusterSpec, PaperClusterPasses) {
  EXPECT_TRUE(ValidateClusterSpec(ClusterSpec::PaperCluster()).ok());
}

TEST(BoeModel, ValidateNamesEachBadCapacityAxis) {
  NodeSpec node;
  node.disk_read_bw = Rate::MBps(0);
  node.network_bw = Rate::MBps(kNaN);
  const BoeModel boe(node);
  const Status status = boe.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(status.message().find("disk-read"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("network"), std::string::npos)
      << status.message();
  EXPECT_TRUE(BoeModel(NodeSpec{}).Validate().ok());
}

TEST(BoeModel, ZeroCapacityPricesInfiniteNeverNaN) {
  NodeSpec node;
  node.disk_read_bw = Rate::MBps(0);  // map input can never be read
  const BoeModel boe(node);
  const Result<JobProfile> profile = CompileJob(WordCountSpec(Bytes::FromGB(1)));
  ASSERT_TRUE(profile.ok());
  const TaskEstimate task = boe.EstimateTask(profile->map, 1.0);
  EXPECT_FALSE(std::isnan(task.duration.seconds()));
  EXPECT_TRUE(std::isinf(task.duration.seconds()));
  for (const auto& ss : task.substages) {
    EXPECT_FALSE(std::isnan(ss.duration.seconds()));
  }
}

TEST(Firewall, EstimatorRejectsInvalidClusterWithoutAborting) {
  ClusterSpec cluster = ClusterSpec::PaperCluster();
  cluster.num_nodes = -1;
  const StateBasedEstimator estimator(cluster, SchedulerConfig{});
  const BoeModel boe(cluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  const DagWorkflow flow = SingleJobFlow(WordCountSpec(Bytes::FromGB(1)));
  const Result<DagEstimate> estimate = estimator.Estimate(flow, source);
  ASSERT_FALSE(estimate.ok());
  EXPECT_EQ(estimate.status().code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(estimate.status().message().find("/num_nodes"), std::string::npos);
}

TEST(Firewall, SimulatorRejectsInvalidClusterWithoutAborting) {
  ClusterSpec cluster = ClusterSpec::PaperCluster();
  cluster.node.cores = 0;
  const Simulator sim(cluster, SchedulerConfig{});
  const DagWorkflow flow = SingleJobFlow(WordCountSpec(Bytes::FromGB(1)));
  const Result<SimResult> run = sim.Run(flow);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), ErrorCode::kInvalidArgument);
}

TEST(Firewall, SimulatorRejectsBadOptions) {
  SimOptions options;
  options.task_startup_seconds = kNaN;
  const Simulator sim(ClusterSpec::PaperCluster(), SchedulerConfig{}, options);
  const DagWorkflow flow = SingleJobFlow(WordCountSpec(Bytes::FromGB(1)));
  const Result<SimResult> run = sim.Run(flow);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), ErrorCode::kInvalidArgument);
}

TEST(Firewall, ValidationFailureCounterIncrements) {
  obs::SetMetricsEnabled(true);
  obs::Counter& failures =
      obs::MetricsRegistry::Default().GetCounter("validation.failures");
  const std::uint64_t before = failures.value();
  ValidationReport report;
  report.Add("/x", "broken");
  EXPECT_FALSE(report.ToStatus("test").ok());
  EXPECT_EQ(failures.value(), before + 1);
  obs::SetMetricsEnabled(false);
}

}  // namespace
}  // namespace dagperf
