#include "boe/boe_model.h"

#include <gtest/gtest.h>

namespace dagperf {
namespace {

/// Node from the paper's Fig. 4 example: 500 MB/s disk read, 100 MB/s
/// network, plenty of cores.
NodeSpec Fig4Node() {
  NodeSpec node;
  node.cores = 6;
  node.disk_read_bw = Rate::MBps(500);
  node.disk_write_bw = Rate::MBps(500);
  node.network_bw = Rate::MBps(100);
  return node;
}

/// The Fig. 4 task: one sub-stage reading 10000 MB, transferring 10000 MB,
/// computing at 50 MB/s per core (200 core-seconds).
StageProfile Fig4Stage() {
  StageProfile stage;
  stage.name = "fig4/map";
  stage.num_tasks = 5;
  SubStageProfile ss;
  ss.name = "pipeline";
  ss.demand[Resource::kDiskRead] = Bytes::FromMB(10000).value();
  ss.demand[Resource::kNetwork] = Bytes::FromMB(10000).value();
  ss.demand[Resource::kCpu] = 200.0;
  stage.substages.push_back(ss);
  return stage;
}

TEST(BoeModelTest, Fig4SingleTaskIsCpuBound200s) {
  const BoeModel model(Fig4Node());
  const TaskEstimate est = model.EstimateTask(Fig4Stage(), 1.0);
  EXPECT_NEAR(est.duration.seconds(), 200.0, 1e-9);
  EXPECT_EQ(est.bottleneck, Resource::kCpu);
  ASSERT_EQ(est.substages.size(), 1u);
  // Utilisations from the paper: disk 10%, network 50%.
  for (const auto& op : est.substages[0].ops) {
    if (op.resource == Resource::kDiskRead) {
      EXPECT_NEAR(op.utilization, 0.10, 1e-9);
    } else if (op.resource == Resource::kNetwork) {
      EXPECT_NEAR(op.utilization, 0.50, 1e-9);
    } else if (op.resource == Resource::kCpu) {
      EXPECT_NEAR(op.utilization, 1.0, 1e-9);
    }
  }
}

TEST(BoeModelTest, Fig4FiveTasksAreNetworkBound500s) {
  const BoeModel model(Fig4Node());
  const TaskEstimate est = model.EstimateTask(Fig4Stage(), 5.0);
  EXPECT_NEAR(est.duration.seconds(), 500.0, 1e-9);
  EXPECT_EQ(est.bottleneck, Resource::kNetwork);
  // Utilisations from the paper: disk 20%, network 100%.
  for (const auto& op : est.substages[0].ops) {
    if (op.resource == Resource::kDiskRead) {
      EXPECT_NEAR(op.utilization, 0.20, 1e-9);
    } else if (op.resource == Resource::kNetwork) {
      EXPECT_NEAR(op.utilization, 1.0, 1e-9);
    }
  }
}

TEST(BoeModelTest, CpuNotSharedBelowCoreCount) {
  // 6 cores; up to 6 tasks each get a full core: task time flat.
  const BoeModel model(Fig4Node());
  StageProfile stage;
  stage.name = "cpu-only";
  SubStageProfile ss;
  ss.name = "compute";
  ss.demand[Resource::kCpu] = 30.0;
  stage.substages.push_back(ss);
  for (double delta : {1.0, 2.0, 4.0, 6.0}) {
    const TaskEstimate est = model.EstimateTask(stage, delta);
    EXPECT_NEAR(est.duration.seconds(), 30.0, 1e-9) << "delta=" << delta;
  }
  // Past saturation the time scales linearly with parallelism.
  EXPECT_NEAR(model.EstimateTask(stage, 12.0).duration.seconds(), 60.0, 1e-9);
  EXPECT_NEAR(model.EstimateTask(stage, 9.0).duration.seconds(), 45.0, 1e-9);
}

TEST(BoeModelTest, SubStagesSumSequentially) {
  const BoeModel model(Fig4Node());
  StageProfile stage;
  stage.name = "two-substage";
  SubStageProfile read;
  read.name = "read";
  read.demand[Resource::kDiskRead] = Bytes::FromMB(500).value();  // 1 s alone.
  SubStageProfile write;
  write.name = "write";
  write.demand[Resource::kDiskWrite] = Bytes::FromMB(1000).value();  // 2 s alone.
  stage.substages = {read, write};
  const TaskEstimate est = model.EstimateTask(stage, 1.0);
  EXPECT_NEAR(est.duration.seconds(), 3.0, 1e-9);
  EXPECT_EQ(est.bottleneck, Resource::kDiskWrite);  // Longest sub-stage.
}

TEST(BoeModelTest, ParallelStagesShareBottleneckEqually) {
  // Two identical network-bound stages with equal populations halve each
  // other's bandwidth: task time doubles vs running alone at the same delta.
  const BoeModel model(Fig4Node());
  StageProfile stage;
  stage.name = "net";
  SubStageProfile ss;
  ss.name = "transfer";
  ss.demand[Resource::kNetwork] = Bytes::FromMB(100).value();
  stage.substages.push_back(ss);

  const TaskEstimate alone = model.EstimateTask(stage, 2.0);
  const auto both = model.EstimateParallel(
      {{&stage, 2.0}, {&stage, 2.0}});
  EXPECT_NEAR(both[0].duration.seconds(), 2.0 * alone.duration.seconds(), 1e-9);
  EXPECT_NEAR(both[1].duration.seconds(), both[0].duration.seconds(), 1e-12);
}

TEST(BoeModelTest, DisjointResourcesDoNotInterfere) {
  // A CPU-bound stage and a network-bound stage co-run without slowdown
  // (below CPU saturation).
  const BoeModel model(Fig4Node());
  StageProfile cpu_stage;
  cpu_stage.name = "cpu";
  SubStageProfile c;
  c.name = "compute";
  c.demand[Resource::kCpu] = 10.0;
  cpu_stage.substages.push_back(c);

  StageProfile net_stage;
  net_stage.name = "net";
  SubStageProfile t;
  t.name = "transfer";
  t.demand[Resource::kNetwork] = Bytes::FromMB(100).value();
  net_stage.substages.push_back(t);

  const double cpu_alone = model.EstimateTask(cpu_stage, 2.0).duration.seconds();
  const double net_alone = model.EstimateTask(net_stage, 2.0).duration.seconds();
  const auto both = model.EstimateParallel({{&cpu_stage, 2.0}, {&net_stage, 2.0}});
  EXPECT_NEAR(both[0].duration.seconds(), cpu_alone, 1e-9);
  EXPECT_NEAR(both[1].duration.seconds(), net_alone, 1e-9);
}

TEST(BoeModelTest, TaskTimeMonotoneInParallelism) {
  const BoeModel model(Fig4Node());
  const StageProfile stage = Fig4Stage();
  double prev = 0;
  for (double delta = 1; delta <= 16; delta += 1) {
    const double t = model.EstimateTask(stage, delta).duration.seconds();
    EXPECT_GE(t, prev - 1e-9) << "delta=" << delta;
    prev = t;
  }
}

TEST(BoeModelTest, SteadyStateModeMatchesPaperForSingleSubStage) {
  // With one sub-stage the population spread is trivial, so both contention
  // modes must agree.
  BoeOptions steady;
  steady.mode = BoeOptions::ContentionMode::kSteadyState;
  const BoeModel paper_model(Fig4Node());
  const BoeModel steady_model(Fig4Node(), steady);
  const StageProfile stage = Fig4Stage();
  for (double delta : {1.0, 3.0, 5.0, 10.0}) {
    EXPECT_NEAR(paper_model.EstimateTask(stage, delta).duration.seconds(),
                steady_model.EstimateTask(stage, delta).duration.seconds(), 1e-6)
        << "delta=" << delta;
  }
}

TEST(BoeModelTest, SteadyStateNeverSlowerThanPaperMode) {
  // Spreading the population across sub-stages can only reduce contention
  // relative to the paper's everyone-contends-everywhere assumption.
  BoeOptions steady;
  steady.mode = BoeOptions::ContentionMode::kSteadyState;
  const BoeModel paper_model(Fig4Node());
  const BoeModel steady_model(Fig4Node(), steady);

  StageProfile stage;
  stage.name = "mixed";
  SubStageProfile a;
  a.name = "read";
  a.demand[Resource::kDiskRead] = Bytes::FromMB(1000).value();
  a.demand[Resource::kCpu] = 5.0;
  SubStageProfile b;
  b.name = "write";
  b.demand[Resource::kDiskWrite] = Bytes::FromMB(500).value();
  stage.substages = {a, b};

  for (double delta : {2.0, 6.0, 12.0}) {
    const double tp = paper_model.EstimateTask(stage, delta).duration.seconds();
    const double ts = steady_model.EstimateTask(stage, delta).duration.seconds();
    EXPECT_LE(ts, tp + 1e-6) << "delta=" << delta;
  }
}

TEST(BoeModelTest, RealWordCountProfileIsCpuBoundPastSaturation) {
  // A compiled WordCount-like map stage: CPU-heavy map function.
  JobSpec spec;
  spec.name = "wc";
  spec.input = Bytes::FromGB(100);
  spec.split_size = Bytes::FromMB(256);
  spec.map_selectivity = 0.05;
  spec.compress_map_output = true;
  spec.map_compute = Rate::MBps(20);  // Slow user code.
  const JobProfile profile = CompileJob(spec).value();

  NodeSpec node = ClusterSpec::PaperCluster().node;
  const BoeModel model(node);
  const TaskEstimate est = model.EstimateTask(profile.map, 12.0);
  EXPECT_EQ(est.bottleneck, Resource::kCpu);
}

TEST(BoeModelDeathTest, RejectsZeroParallelism) {
  const BoeModel model(Fig4Node());
  const StageProfile stage = Fig4Stage();
  EXPECT_DEATH((void)model.EstimateTask(stage, 0.0), "CHECK");
}

}  // namespace
}  // namespace dagperf
