#include "model/progress.h"

#include <gtest/gtest.h>

#include "model/task_time_source.h"
#include "workloads/micro.h"

namespace dagperf {
namespace {

class ConstantSource : public TaskTimeSource {
 public:
  explicit ConstantSource(double seconds) : seconds_(seconds) {}
  Duration TaskTime(const EstimationContext&) const override {
    return Duration(seconds_);
  }

 private:
  double seconds_;
};

DagEstimate MakePlan() {
  ClusterSpec cluster = ClusterSpec::PaperCluster();
  cluster.num_nodes = 4;
  DagBuilder b("plan");
  const JobId a = b.AddJob(TsSpec(Bytes::FromGB(8)));
  JobSpec second = TsSpec(Bytes::FromGB(8));
  second.name = "TS2";
  b.AddJobAfter(a, second);
  const DagWorkflow flow = std::move(b).Build().value();
  const StateBasedEstimator estimator(cluster, SchedulerConfig{});
  return estimator.Estimate(flow, ConstantSource(10.0)).value();
}

TEST(ProgressTest, CompletionMonotoneAndClamped) {
  const ProgressIndicator progress(MakePlan());
  EXPECT_DOUBLE_EQ(progress.CompletionAt(Duration(0)), 0.0);
  double prev = 0.0;
  const double total = progress.plan().makespan.seconds();
  for (double f : {0.1, 0.3, 0.5, 0.9, 1.0, 1.5}) {
    const double c = progress.CompletionAt(Duration(f * total));
    EXPECT_GE(c, prev);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(progress.CompletionAt(Duration(2 * total)), 1.0);
}

TEST(ProgressTest, RemainingComplementsElapsed) {
  const ProgressIndicator progress(MakePlan());
  const double total = progress.plan().makespan.seconds();
  EXPECT_NEAR(progress.RemainingAt(Duration(0)).seconds(), total, 1e-9);
  EXPECT_NEAR(progress.RemainingAt(Duration(0.25 * total)).seconds(), 0.75 * total,
              1e-9);
  EXPECT_DOUBLE_EQ(progress.RemainingAt(Duration(2 * total)).seconds(), 0.0);
}

TEST(ProgressTest, StateLookupMatchesTimeline) {
  const ProgressIndicator progress(MakePlan());
  for (const auto& state : progress.plan().states) {
    if (state.duration <= 0) continue;
    const double mid = state.start + 0.5 * state.duration;
    const StateEstimate found = progress.StateAt(Duration(mid)).value();
    EXPECT_EQ(found.index, state.index);
  }
  // Past the end: no state, no running stages.
  const double total = progress.plan().makespan.seconds();
  EXPECT_FALSE(progress.StateAt(Duration(total + 1)).ok());
  EXPECT_TRUE(progress.RunningAt(Duration(total + 1)).empty());
}

TEST(ProgressTest, RunningStagesNonEmptyMidFlight) {
  const ProgressIndicator progress(MakePlan());
  const double total = progress.plan().makespan.seconds();
  EXPECT_FALSE(progress.RunningAt(Duration(0.5 * total)).empty());
}

TEST(ProgressTest, ObservationRescalesRemainingPlan) {
  ProgressIndicator progress(MakePlan());
  const double original = progress.plan().makespan.seconds();
  // Job 0's reduce actually completed 20% later than predicted.
  const StageSpanEstimate predicted =
      progress.plan().FindStage(0, StageKind::kReduce).value();
  const double observed = predicted.end * 1.2;
  ASSERT_TRUE(
      progress.ObserveStageCompletion(0, StageKind::kReduce, Duration(observed))
          .ok());
  EXPECT_NEAR(progress.plan().makespan.seconds(), original * 1.2, 1e-9);
  const StageSpanEstimate updated =
      progress.plan().FindStage(0, StageKind::kReduce).value();
  EXPECT_NEAR(updated.end, observed, 1e-9);
  // States still partition the (stretched) makespan.
  double covered = 0;
  for (const auto& s : progress.plan().states) covered += s.duration;
  EXPECT_NEAR(covered, progress.plan().makespan.seconds(), 1e-6);
}

TEST(ProgressTest, ObservationRejectsUnknownStage) {
  ProgressIndicator progress(MakePlan());
  EXPECT_FALSE(
      progress.ObserveStageCompletion(99, StageKind::kMap, Duration(10)).ok());
  EXPECT_FALSE(
      progress.ObserveStageCompletion(0, StageKind::kMap, Duration(0)).ok());
}

TEST(ProgressDeathTest, EmptyPlanAborts) {
  DagEstimate empty;
  empty.makespan = Duration(0);
  EXPECT_DEATH({ ProgressIndicator p(empty); }, "CHECK");
}

}  // namespace
}  // namespace dagperf
