#include "model/task_time_source.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace dagperf {
namespace {

NodeSpec TestNode() {
  NodeSpec node;
  node.cores = 6;
  node.disk_read_bw = Rate::MBps(500);
  node.disk_write_bw = Rate::MBps(500);
  node.network_bw = Rate::MBps(100);
  return node;
}

StageProfile NetStage(double cv = 0.0) {
  StageProfile stage;
  stage.name = "job/map";
  stage.num_tasks = 10;
  stage.task_size_cv = cv;
  SubStageProfile ss;
  ss.name = "transfer";
  ss.demand[Resource::kNetwork] = Bytes::FromMB(100).value();
  stage.substages.push_back(ss);
  return stage;
}

TEST(BoeTaskTimeSourceTest, MatchesBoeModel) {
  const BoeModel model(TestNode());
  const BoeTaskTimeSource source(model);
  const StageProfile stage = NetStage();
  EstimationContext ctx;
  ctx.running.push_back({&stage, 4.0});
  ctx.query = 0;
  // 100 MB at 100/4 = 25 MB/s -> 4 s.
  EXPECT_NEAR(source.TaskTime(ctx).seconds(), 4.0, 1e-9);
}

TEST(BoeTaskTimeSourceTest, AddsFixedOverhead) {
  const BoeModel model(TestNode());
  const BoeTaskTimeSource source(model, Duration::Seconds(1.5));
  const StageProfile stage = NetStage();
  EstimationContext ctx;
  ctx.running.push_back({&stage, 4.0});
  EXPECT_NEAR(source.TaskTime(ctx).seconds(), 5.5, 1e-9);
}

TEST(BoeTaskTimeSourceTest, DistUsesStageCv) {
  const BoeModel model(TestNode());
  const BoeTaskTimeSource source(model);
  const StageProfile stage = NetStage(/*cv=*/0.25);
  EstimationContext ctx;
  ctx.running.push_back({&stage, 4.0});
  const NormalParams dist = source.TaskTimeDist(ctx);
  EXPECT_NEAR(dist.mean, 4.0, 1e-9);
  EXPECT_NEAR(dist.stddev, 1.0, 1e-9);
}

TEST(ProfileTaskTimeSourceTest, MeanAndMedianStatistics) {
  const StageProfile stage = NetStage();
  ProfileTaskTimeSource mean_source(ProfileStatistic::kMean);
  mean_source.AddProfile("job/map", {10, 10, 10, 30});
  ProfileTaskTimeSource median_source(ProfileStatistic::kMedian);
  median_source.AddProfile("job/map", {10, 10, 10, 30});

  EstimationContext ctx;
  ctx.running.push_back({&stage, 1.0});
  EXPECT_NEAR(mean_source.TaskTime(ctx).seconds(), 15.0, 1e-9);
  EXPECT_NEAR(median_source.TaskTime(ctx).seconds(), 10.0, 1e-9);
}

TEST(ProfileTaskTimeSourceTest, DistFromSample) {
  const StageProfile stage = NetStage();
  ProfileTaskTimeSource source(ProfileStatistic::kMean);
  source.AddProfile("job/map", {8, 12});
  EstimationContext ctx;
  ctx.running.push_back({&stage, 1.0});
  const NormalParams dist = source.TaskTimeDist(ctx);
  EXPECT_NEAR(dist.mean, 10.0, 1e-9);
  EXPECT_NEAR(dist.stddev, 2.0, 1e-9);
}

TEST(ProfileTaskTimeSourceTest, FromSimulationCoversAllStages) {
  JobSpec spec;
  spec.name = "profiled";
  spec.input = Bytes::FromGB(1);
  spec.num_reduce_tasks = 2;
  spec.replicas = 1;
  DagBuilder builder("flow");
  builder.AddJob(spec);
  const DagWorkflow flow = std::move(builder).Build().value();
  const Simulator sim(ClusterSpec::PaperCluster(), SchedulerConfig{});
  const SimResult result = sim.Run(flow).value();
  const ProfileTaskTimeSource source =
      ProfileTaskTimeSource::FromSimulation(flow, result, ProfileStatistic::kMean)
          .value();
  EXPECT_TRUE(source.HasProfile("profiled/map"));
  EXPECT_TRUE(source.HasProfile("profiled/reduce"));
  EXPECT_FALSE(source.HasProfile("other/map"));
}

TEST(ProfileTaskTimeSourceDeathTest, UnknownStageAborts) {
  const StageProfile stage = NetStage();
  ProfileTaskTimeSource source(ProfileStatistic::kMean);
  EstimationContext ctx;
  ctx.running.push_back({&stage, 1.0});
  EXPECT_DEATH((void)source.TaskTime(ctx), "job/map");
}

}  // namespace
}  // namespace dagperf
