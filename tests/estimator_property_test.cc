// Property tests of the state-based estimator: structural invariants of its
// output, wave-model algebra under parallelism changes, and monotonicity in
// data size and cluster size. Parameterized over estimator variants.

#include <gtest/gtest.h>

#include "common/stats.h"
#include "model/state_estimator.h"
#include "model/task_time_source.h"
#include "sim/simulator.h"
#include "workloads/micro.h"
#include "workloads/tpch.h"

namespace dagperf {
namespace {

class ConstantSource : public TaskTimeSource {
 public:
  explicit ConstantSource(double seconds) : seconds_(seconds) {}
  Duration TaskTime(const EstimationContext&) const override {
    return Duration(seconds_);
  }

 private:
  double seconds_;
};

ClusterSpec Cluster(int nodes = 4) {
  ClusterSpec c = ClusterSpec::PaperCluster();
  c.num_nodes = nodes;
  return c;
}

struct Variant {
  std::string name;
  EstimatorOptions options;
};

class EstimatorVariantTest : public ::testing::TestWithParam<Variant> {};

TEST_P(EstimatorVariantTest, OutputStructureConsistent) {
  DagBuilder b("structure");
  b.AddJob(WordCountSpec(Bytes::FromGB(8)));
  b.AddJob(TsSpec(Bytes::FromGB(8)));
  const DagWorkflow flow = std::move(b).Build().value();
  const StateBasedEstimator estimator(Cluster(), SchedulerConfig{},
                                      GetParam().options);
  const DagEstimate est = estimator.Estimate(flow, ConstantSource(9.0)).value();

  // States partition the makespan, 1-indexed and contiguous.
  double covered = 0;
  for (size_t i = 0; i < est.states.size(); ++i) {
    EXPECT_EQ(est.states[i].index, static_cast<int>(i) + 1);
    EXPECT_GE(est.states[i].duration, 0.0);
    covered += est.states[i].duration;
  }
  EXPECT_NEAR(covered, est.makespan.seconds(), 1e-6);

  // Every stage of every job has a recorded span inside the makespan.
  EXPECT_EQ(static_cast<int>(est.stages.size()), flow.TotalStages());
  for (const auto& s : est.stages) {
    EXPECT_LE(s.start, s.end);
    EXPECT_LE(s.end, est.makespan.seconds() + 1e-6);
  }
}

TEST_P(EstimatorVariantTest, MoreDataNeverFaster) {
  const StateBasedEstimator estimator(Cluster(), SchedulerConfig{},
                                      GetParam().options);
  double prev = 0;
  for (double gb : {2.0, 4.0, 8.0, 16.0}) {
    DagBuilder b("grow");
    b.AddJob(TsSpec(Bytes::FromGB(gb)));
    const DagWorkflow flow = std::move(b).Build().value();
    const double t = estimator.Estimate(flow, ConstantSource(10.0)).value()
                         .makespan.seconds();
    EXPECT_GE(t, prev - 1e-9) << gb << " GB";
    prev = t;
  }
}

TEST_P(EstimatorVariantTest, MoreNodesNeverSlower) {
  DagBuilder b("nodes");
  b.AddJob(TsSpec(Bytes::FromGB(16)));
  const DagWorkflow flow = std::move(b).Build().value();
  double prev = 1e300;
  for (int nodes : {2, 4, 8, 16}) {
    const StateBasedEstimator estimator(Cluster(nodes), SchedulerConfig{},
                                        GetParam().options);
    const double t = estimator.Estimate(flow, ConstantSource(10.0)).value()
                         .makespan.seconds();
    EXPECT_LE(t, prev + 1e-9) << nodes << " nodes";
    prev = t;
  }
}

std::vector<Variant> AllVariants() {
  Variant discrete{"discrete", {}};
  Variant fluid{"fluid", {}};
  fluid.options.wave_model = EstimatorOptions::WaveModel::kFluid;
  Variant skew{"skew_aware", {}};
  skew.options.skew_aware = true;
  Variant hetero{"hetero_corrected", {}};
  hetero.options.skew_aware = true;
  hetero.options.node_speed_cv = 0.3;
  return {discrete, fluid, skew, hetero};
}

INSTANTIATE_TEST_SUITE_P(
    Variants, EstimatorVariantTest, ::testing::ValuesIn(AllVariants()),
    [](const ::testing::TestParamInfo<Variant>& info) { return info.param.name; });

TEST(EstimatorWaveTest, ParallelismDropRequeuesTasks) {
  // Stage A runs alone at full parallelism; a tiny job's completion brings
  // stage B online, halving A's share. The estimator must re-queue A's
  // excess in-flight tasks (mirroring preemption) rather than crediting
  // them as running: the makespan must exceed the no-contention bound.
  DagBuilder b("drop");
  JobSpec big = TsSpec(Bytes::FromGB(16));
  big.name = "big";
  b.AddJob(big);
  JobSpec tiny = TsSpec(Bytes::FromMB(256));
  tiny.name = "tiny";
  tiny.num_reduce_tasks = 1;
  const JobId t = b.AddJob(tiny);
  JobSpec second = TsSpec(Bytes::FromGB(16));
  second.name = "second";
  b.AddJobAfter(t, second);
  const DagWorkflow flow = std::move(b).Build().value();

  const StateBasedEstimator estimator(Cluster(2), SchedulerConfig{});
  const DagEstimate est = estimator.Estimate(flow, ConstantSource(10.0)).value();
  // 'big' has 64 maps + 16 reduces; alone on 2x12 slots it needs
  // ceil(64/24)*10 + ceil(16/16)... with contention it must take longer
  // than that lower bound.
  const StageSpanEstimate big_map = est.FindStage(0, StageKind::kMap).value();
  EXPECT_GT(big_map.end - big_map.start, 30.0 - 1e-9);
}

TEST(EstimatorWaveTest, LastWavePaysSkewTailOnce) {
  // With a known dist, the skew-aware discrete estimate for an N-task
  // single-stage job equals (W-1) waves at the mean plus one expected-max
  // wave.
  JobSpec spec = TsSpec(Bytes::FromMB(24 * 256));
  spec.name = "tail";
  spec.num_reduce_tasks = 0;
  spec.map_selectivity = 0.0;
  DagBuilder b("tail-flow");
  b.AddJob(spec);
  const DagWorkflow flow = std::move(b).Build().value();

  // 24 tasks on 12 slots (1 node of 12): 2 waves.
  ProfileTaskTimeSource source(ProfileStatistic::kMean);
  // Sample with mean 10 and non-trivial spread.
  source.AddProfile("tail/map", {8, 9, 10, 11, 12});

  EstimatorOptions skew;
  skew.skew_aware = true;
  const StateBasedEstimator estimator(Cluster(1), SchedulerConfig{}, skew);
  const double est = estimator.Estimate(flow, source).value().makespan.seconds();

  const double mean = 10.0;
  const double stddev = std::sqrt(2.0);  // Population stddev of the sample.
  const double expected = mean + ExpectedMaxOfNormal(mean, stddev, 12);
  EXPECT_NEAR(est, expected, 1e-6);
}

TEST(EstimatorWaveTest, FluidNeverExceedsDiscrete) {
  // Fluid ignores wave quantisation, so it lower-bounds the discrete
  // estimate for constant task times.
  for (double gb : {4.0, 7.0, 13.0}) {
    DagBuilder b("fluid-vs-discrete");
    b.AddJob(TsSpec(Bytes::FromGB(gb)));
    const DagWorkflow flow = std::move(b).Build().value();
    EstimatorOptions fluid;
    fluid.wave_model = EstimatorOptions::WaveModel::kFluid;
    const double t_fluid = StateBasedEstimator(Cluster(), SchedulerConfig{}, fluid)
                               .Estimate(flow, ConstantSource(10.0))
                               .value()
                               .makespan.seconds();
    const double t_discrete = StateBasedEstimator(Cluster(), SchedulerConfig{})
                                  .Estimate(flow, ConstantSource(10.0))
                                  .value()
                                  .makespan.seconds();
    EXPECT_LE(t_fluid, t_discrete + 1e-9) << gb;
  }
}

TEST(HeterogeneityCorrectionTest, NoopAtZeroCv) {
  DagBuilder b("hetero-zero");
  b.AddJob(TsSpec(Bytes::FromGB(8)));
  const DagWorkflow flow = std::move(b).Build().value();
  EstimatorOptions corrected;
  corrected.node_speed_cv = 0.0;
  const double plain = StateBasedEstimator(Cluster(), SchedulerConfig{})
                           .Estimate(flow, ConstantSource(10.0))
                           .value()
                           .makespan.seconds();
  const double with = StateBasedEstimator(Cluster(), SchedulerConfig{}, corrected)
                          .Estimate(flow, ConstantSource(10.0))
                          .value()
                          .makespan.seconds();
  EXPECT_DOUBLE_EQ(plain, with);
}

TEST(HeterogeneityCorrectionTest, InflatesMeanByOnePlusCvSquared) {
  // Skew-unaware path: only the E[1/speed] = 1 + cv^2 mean inflation acts.
  JobSpec spec = TsSpec(Bytes::FromMB(24 * 256));
  spec.name = "hetero";
  spec.num_reduce_tasks = 0;
  spec.map_selectivity = 0.0;
  DagBuilder b("hetero-mean");
  b.AddJob(spec);
  const DagWorkflow flow = std::move(b).Build().value();
  EstimatorOptions corrected;
  corrected.node_speed_cv = 0.5;
  const double plain = StateBasedEstimator(Cluster(1), SchedulerConfig{})
                           .Estimate(flow, ConstantSource(10.0))
                           .value()
                           .makespan.seconds();
  const double with = StateBasedEstimator(Cluster(1), SchedulerConfig{}, corrected)
                          .Estimate(flow, ConstantSource(10.0))
                          .value()
                          .makespan.seconds();
  EXPECT_NEAR(with, plain * 1.25, 1e-9);
}

TEST(HeterogeneityCorrectionTest, ImprovesAccuracyOnJitteredFleet) {
  DagBuilder b("hetero-acc");
  b.AddJob(TsSpec(Bytes::FromGB(16)));
  const DagWorkflow flow = std::move(b).Build().value();
  const ClusterSpec cluster = Cluster(8);
  const double cv = 0.5;
  double truth_total = 0;
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    SimOptions options;
    options.node_speed_cv = cv;
    options.seed = seed;
    truth_total += Simulator(cluster, SchedulerConfig{}, options)
                       .Run(flow)
                       ->makespan()
                       .seconds();
  }
  const double truth = truth_total / 4;

  const BoeModel boe(cluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  const double plain = StateBasedEstimator(cluster, SchedulerConfig{})
                           .Estimate(flow, source)
                           .value()
                           .makespan.seconds();
  EstimatorOptions options;
  options.skew_aware = true;
  options.node_speed_cv = cv;
  const double corrected = StateBasedEstimator(cluster, SchedulerConfig{}, options)
                               .Estimate(flow, source)
                               .value()
                               .makespan.seconds();
  EXPECT_GT(RelativeAccuracy(corrected, truth), RelativeAccuracy(plain, truth));
}

TEST(ContextProfileTest, MatchedBucketPreferredOverGlobal) {
  StageProfile a;
  a.name = "jobA/map";
  StageProfile other;
  other.name = "jobB/reduce";

  ProfileTaskTimeSource source(ProfileStatistic::kMean);
  source.AddProfile("jobA/map", {30.0});
  source.AddContextProfile({"jobA/map", "jobB/reduce"}, "jobA/map", {50.0});

  EstimationContext alone;
  alone.running.push_back({&a, 2.0});
  alone.query = 0;
  EXPECT_NEAR(source.TaskTime(alone).seconds(), 30.0, 1e-9);  // Global.

  EstimationContext contended;
  contended.running.push_back({&a, 2.0});
  contended.running.push_back({&other, 2.0});
  contended.query = 0;
  EXPECT_NEAR(source.TaskTime(contended).seconds(), 50.0, 1e-9);  // Bucket.
}

TEST(ContextProfileTest, SignatureOrderInsensitive) {
  StageProfile a;
  a.name = "x/map";
  StageProfile z;
  z.name = "z/map";
  ProfileTaskTimeSource source(ProfileStatistic::kMean);
  source.AddProfile("x/map", {1.0});
  // Register with one order, query with the other.
  source.AddContextProfile({"z/map", "x/map"}, "x/map", {7.0});
  EstimationContext ctx;
  ctx.running.push_back({&a, 1.0});
  ctx.running.push_back({&z, 1.0});
  ctx.query = 0;
  EXPECT_NEAR(source.TaskTime(ctx).seconds(), 7.0, 1e-9);
}

}  // namespace
}  // namespace dagperf
