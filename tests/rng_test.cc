#include "common/rng.h"

#include <gtest/gtest.h>

#include <vector>

namespace dagperf {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(5.0, 6.0);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 6.0);
  }
}

TEST(RngTest, UniformIntRespectsRange) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) counts[rng.UniformInt(10)]++;
  for (int c : counts) {
    EXPECT_GT(c, 700);  // Roughly uniform (expected 1000).
    EXPECT_LT(c, 1300);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0;
  double sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, LogNormalIsPositive) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.LogNormal(0.0, 1.0), 0.0);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(23);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) counts[rng.Zipf(100, 1.0)]++;
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[50]);
  // Rank 0 of Zipf(1.0) over 100 items gets ~19% of the mass.
  EXPECT_GT(counts[0], 2500);
}

TEST(RngTest, ZipfZeroExponentIsUniform) {
  Rng rng(29);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) counts[rng.Zipf(10, 0.0)]++;
  for (int c : counts) {
    EXPECT_GT(c, 700);
    EXPECT_LT(c, 1300);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.Fork();
  // The child stream should differ from the parent's continued stream.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.NextUint64() == child.NextUint64()) ++same;
  }
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace dagperf
