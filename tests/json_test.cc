#include "common/json.h"

#include <gtest/gtest.h>

namespace dagperf {
namespace {

TEST(JsonTest, BuildAndDump) {
  Json obj = Json::MakeObject();
  obj.Set("name", Json::MakeString("x"));
  obj.Set("count", Json::MakeNumber(3));
  obj.Set("enabled", Json::MakeBool(true));
  Json arr = Json::MakeArray();
  arr.Append(Json::MakeNumber(1));
  arr.Append(Json::MakeNumber(2.5));
  obj.Set("values", std::move(arr));
  const std::string dump = obj.Dump();
  EXPECT_NE(dump.find("\"name\": \"x\""), std::string::npos);
  EXPECT_NE(dump.find("\"count\": 3"), std::string::npos);
  EXPECT_NE(dump.find("2.5"), std::string::npos);
}

TEST(JsonTest, RoundTrip) {
  Json obj = Json::MakeObject();
  obj.Set("s", Json::MakeString("line\nbreak \"quoted\" \\slash"));
  obj.Set("n", Json::MakeNumber(-1.25e-3));
  obj.Set("b", Json::MakeBool(false));
  obj.Set("z", Json());
  Json arr = Json::MakeArray();
  arr.Append(Json::MakeString("a"));
  Json nested = Json::MakeObject();
  nested.Set("k", Json::MakeNumber(7));
  arr.Append(std::move(nested));
  obj.Set("arr", std::move(arr));

  const Json parsed = Json::Parse(obj.Dump()).value();
  EXPECT_EQ(parsed.GetString("s", ""), "line\nbreak \"quoted\" \\slash");
  EXPECT_DOUBLE_EQ(parsed.GetNumber("n", 0), -1.25e-3);
  EXPECT_FALSE(parsed.GetBool("b", true));
  EXPECT_TRUE(parsed.Get("z")->is_null());
  ASSERT_EQ(parsed.Get("arr")->AsArray().size(), 2u);
  EXPECT_DOUBLE_EQ(parsed.Get("arr")->AsArray()[1].GetNumber("k", 0), 7);
}

TEST(JsonTest, ParsesCommonForms) {
  EXPECT_TRUE(Json::Parse("null").value().is_null());
  EXPECT_TRUE(Json::Parse("true").value().AsBool());
  EXPECT_DOUBLE_EQ(Json::Parse("42").value().AsNumber(), 42);
  EXPECT_DOUBLE_EQ(Json::Parse("-3.5e2").value().AsNumber(), -350);
  EXPECT_EQ(Json::Parse("\"hi\"").value().AsString(), "hi");
  EXPECT_TRUE(Json::Parse("[]").value().AsArray().empty());
  EXPECT_TRUE(Json::Parse("{}").value().AsObject().empty());
  EXPECT_EQ(Json::Parse(" [1, [2, 3], {\"a\": []}] ").value().AsArray().size(), 3u);
}

TEST(JsonTest, RejectsMalformedInput) {
  for (const char* bad : {"", "{", "[1,", "{\"a\": }", "tru", "1 2", "{\"a\" 1}",
                          "\"unterminated", "[1,]", "nul"}) {
    EXPECT_FALSE(Json::Parse(bad).ok()) << bad;
  }
}

TEST(JsonTest, GettersFallBack) {
  const Json obj = Json::Parse("{\"a\": 1, \"s\": \"x\"}").value();
  EXPECT_DOUBLE_EQ(obj.GetNumber("a", 9), 1);
  EXPECT_DOUBLE_EQ(obj.GetNumber("missing", 9), 9);
  EXPECT_DOUBLE_EQ(obj.GetNumber("s", 9), 9);  // Wrong type -> fallback.
  EXPECT_EQ(obj.GetString("missing", "d"), "d");
  EXPECT_EQ(obj.Get("missing"), nullptr);
}

TEST(JsonDeathTest, TypeMismatchAborts) {
  const Json n = Json::MakeNumber(1);
  EXPECT_DEATH((void)n.AsString(), "CHECK");
}

}  // namespace
}  // namespace dagperf
