/// Allocation-regression guard for the estimation hot path.
///
/// The sweep engine's throughput rests on warm estimates being
/// allocation-free: per-estimate state lives in a thread-local arena,
/// EstimateInto reuses the output's vector capacity, and the BOE fast path
/// prices stages into reused scratch (docs/performance.md). This test
/// interposes the global allocator and counts operator-new calls on the
/// calling thread across warm EstimateInto iterations — a regression that
/// reintroduces per-estimate heap traffic fails here, not in a benchmark
/// someone has to read.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>

#include "boe/boe_model.h"
#include "model/state_estimator.h"
#include "model/task_time_source.h"
#include "workloads/micro.h"
#include "workloads/tpch.h"

namespace {

/// Thread-local so a background thread's allocations (none are expected,
/// but gtest internals make no promises) can never flake the count.
thread_local std::uint64_t g_new_calls = 0;
thread_local bool g_counting = false;

void* CountedAlloc(std::size_t size) {
  if (g_counting) ++g_new_calls;
  if (void* ptr = std::malloc(size != 0 ? size : 1)) return ptr;
  throw std::bad_alloc();
}

}  // namespace

// All replaceable allocation forms route through the counter, and every
// matching deallocation form frees the malloc'd block.
void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  if (g_counting) ++g_new_calls;
  return std::malloc(size != 0 ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  if (g_counting) ++g_new_calls;
  return std::malloc(size != 0 ? size : 1);
}
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}

namespace dagperf {
namespace {

/// Warm iterations measured; the bound is per-iteration zero with a small
/// absolute slack for one-time lazy growth the priming pass missed.
constexpr int kWarmIterations = 16;
constexpr std::uint64_t kMaxTotalAllocations = 4;

std::uint64_t CountWarmAllocations(const StateBasedEstimator& estimator,
                                   const DagWorkflow& flow,
                                   const TaskTimeSource& source,
                                   DagEstimate* out, double golden_makespan) {
  g_new_calls = 0;
  g_counting = true;
  for (int i = 0; i < kWarmIterations; ++i) {
    const Status status = estimator.EstimateInto(flow, source, out);
    if (!status.ok() || out->makespan.seconds() != golden_makespan) {
      g_counting = false;
      ADD_FAILURE() << "warm estimate diverged on iteration " << i;
      return g_new_calls;
    }
  }
  g_counting = false;
  return g_new_calls;
}

TEST(AllocRegressionTest, WarmEstimateIsAllocationFree) {
  const ClusterSpec cluster = ClusterSpec::PaperCluster();
  const DagWorkflow flow = TpchQueryFlow(9, Bytes::FromGB(8)).value();
  const BoeModel boe(cluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  const StateBasedEstimator estimator(cluster, SchedulerConfig{});

  // Prime: grows the thread-local arena, the BOE pricing scratch, the
  // validation firewall's buffers, and the output's pools to steady state.
  DagEstimate out;
  ASSERT_TRUE(estimator.EstimateInto(flow, source, &out).ok());
  ASSERT_TRUE(estimator.EstimateInto(flow, source, &out).ok());
  const double golden = out.makespan.seconds();

  const std::uint64_t total =
      CountWarmAllocations(estimator, flow, source, &out, golden);
  EXPECT_LE(total, kMaxTotalAllocations)
      << total << " operator-new calls across " << kWarmIterations
      << " warm estimates — the hot path regressed to per-estimate heap "
         "traffic";
}

TEST(AllocRegressionTest, WarmEstimateStaysFreeAcrossFlowSizes) {
  // Re-priming at a larger flow, then returning to the smaller one, must not
  // re-introduce allocations (the arena high-watermarks, never shrinks).
  const ClusterSpec cluster = ClusterSpec::PaperCluster();
  const DagWorkflow small = []() {
    DagBuilder b("small");
    b.AddJob(TsSpec(Bytes::FromGB(10)));
    return std::move(b).Build().value();
  }();
  const DagWorkflow large = TpchQueryFlow(9, Bytes::FromGB(8)).value();
  const BoeModel boe(cluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  const StateBasedEstimator estimator(cluster, SchedulerConfig{});

  DagEstimate out;
  ASSERT_TRUE(estimator.EstimateInto(large, source, &out).ok());
  ASSERT_TRUE(estimator.EstimateInto(small, source, &out).ok());
  ASSERT_TRUE(estimator.EstimateInto(small, source, &out).ok());
  const double golden = out.makespan.seconds();

  const std::uint64_t total =
      CountWarmAllocations(estimator, small, source, &out, golden);
  EXPECT_LE(total, kMaxTotalAllocations);
}

}  // namespace
}  // namespace dagperf
