// Tests of the resilience layer (src/resilience/): deterministic fault
// injection (same seed => same fire pattern), retry with jittered backoff,
// circuit-breaker state transitions, the request watchdog, and their
// integration into the estimation service (watchdog cancellation mapped to
// DEADLINE_EXCEEDED, bounded shutdown mapped to UNAVAILABLE, per-cluster
// breakers fast-failing while open).

#include <chrono>
#include <cmath>
#include <condition_variable>
#include <future>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "obs/metrics.h"
#include "resilience/circuit_breaker.h"
#include "resilience/fault.h"
#include "resilience/retry.h"
#include "resilience/watchdog.h"
#include "service/service.h"
#include "workloads/suite.h"

// Parts of this file exercise the pre-0.8 submission API on purpose
// (deprecated shims must keep working until removal); silence the
// migration warnings the rest of the build is expected to emit.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace dagperf {
namespace {

using resilience::BreakerState;
using resilience::CircuitBreaker;
using resilience::CircuitBreakerOptions;
using resilience::FaultInjector;
using resilience::FaultPlan;
using resilience::FaultPoint;
using resilience::RetryOptions;
using resilience::RetryPolicy;
using resilience::Watchdog;
using resilience::WatchdogOptions;

/// Every test that touches the (process-global) injector goes through this
/// guard so a failing assertion cannot leak an armed schedule into the next
/// test.
struct InjectorReset {
  InjectorReset() { FaultInjector::Default().ResetAll(); }
  ~InjectorReset() { FaultInjector::Default().ResetAll(); }
};

std::vector<int> FiredIndices(FaultPoint& point, int evaluations) {
  std::vector<int> fired;
  for (int i = 0; i < evaluations; ++i) {
    if (point.Evaluate().fired) fired.push_back(i);
  }
  return fired;
}

TEST(FaultInjector, DisarmedPointIsFreeAndNeverFires) {
  InjectorReset guard;
  FaultPoint& point = FaultInjector::Default().GetPoint("test.disarmed");
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(point.Evaluate().fired);
  }
  // Disarmed evaluations do not even count (the armed path owns counters).
  EXPECT_EQ(point.evaluations(), 0u);
}

TEST(FaultInjector, SameSeedSameFirePattern) {
  InjectorReset guard;
  FaultInjector& injector = FaultInjector::Default();
  ASSERT_TRUE(
      injector.Configure("test.pattern", {.probability = 0.3}).ok());
  FaultPoint& point = injector.GetPoint("test.pattern");

  injector.Arm(1234);
  const std::vector<int> first = FiredIndices(point, 200);
  injector.Arm(1234);  // Re-arming restarts the schedule.
  const std::vector<int> second = FiredIndices(point, 200);
  EXPECT_EQ(first, second);
  EXPECT_GT(first.size(), 30u);  // ~60 expected at p=0.3.
  EXPECT_LT(first.size(), 120u);

  injector.Arm(99);
  const std::vector<int> other_seed = FiredIndices(point, 200);
  EXPECT_NE(first, other_seed);
}

TEST(FaultInjector, SkipFirstAndMaxFiresBoundTheSchedule) {
  InjectorReset guard;
  FaultInjector& injector = FaultInjector::Default();
  ASSERT_TRUE(injector
                  .Configure("test.bounded", {.probability = 1.0,
                                              .max_fires = 3,
                                              .skip_first = 5})
                  .ok());
  FaultPoint& point = injector.GetPoint("test.bounded");
  injector.Arm(1);
  const std::vector<int> fired = FiredIndices(point, 20);
  EXPECT_EQ(fired, (std::vector<int>{5, 6, 7}));
  EXPECT_EQ(point.fires(), 3u);
}

TEST(FaultInjector, InjectedStatusCarriesThePlannedCode) {
  InjectorReset guard;
  FaultInjector& injector = FaultInjector::Default();
  ASSERT_TRUE(injector
                  .Configure("test.error", {.probability = 1.0,
                                            .error = ErrorCode::kUnavailable})
                  .ok());
  injector.Arm(7);
  const Status injected =
      resilience::InjectAt(injector.GetPoint("test.error"));
  EXPECT_EQ(injected.code(), ErrorCode::kUnavailable);
  EXPECT_TRUE(IsRetryable(injected.code()));

  injector.Disarm();
  EXPECT_TRUE(resilience::InjectAt(injector.GetPoint("test.error")).ok());
}

TEST(FaultInjector, ConfigureRejectsMalformedPlans) {
  InjectorReset guard;
  FaultInjector& injector = FaultInjector::Default();
  EXPECT_EQ(injector.Configure("", {.probability = 0.5}).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(injector.Configure("x", {.probability = 1.5}).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(injector.Configure("x", {.probability = -0.1}).code(),
            ErrorCode::kInvalidArgument);
  FaultPlan negative_latency;
  negative_latency.probability = 0.5;
  negative_latency.latency_ms = -1;
  EXPECT_EQ(injector.Configure("x", negative_latency).code(),
            ErrorCode::kInvalidArgument);
}

TEST(FaultInjector, ThreadPoolSubmitSeamFiresThroughTheHook) {
  InjectorReset guard;
  FaultInjector& injector = FaultInjector::Default();
  ASSERT_TRUE(injector.Configure("pool.submit", {.probability = 1.0}).ok());
  injector.Arm(5);
  {
    ThreadPool pool(2);
    for (int i = 0; i < 8; ++i) {
      pool.Submit([] {});
    }
    pool.Wait();
  }
  EXPECT_GE(injector.GetPoint("pool.submit").fires(), 8u);
  injector.Disarm();
  const std::uint64_t after_disarm = injector.GetPoint("pool.submit").fires();
  {
    ThreadPool pool(2);
    pool.Submit([] {});
    pool.Wait();
  }
  EXPECT_EQ(injector.GetPoint("pool.submit").fires(), after_disarm);
}

TEST(RetryPolicy, RetriesRetryableUntilSuccess) {
  RetryPolicy retry({.max_attempts = 5, .initial_backoff_ms = 0.0});
  int calls = 0;
  Result<int> result = retry.Run<int>([&]() -> Result<int> {
    ++calls;
    if (calls < 3) return Status::ResourceExhausted("shed");
    return 42;
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retry.stats().retries, 2u);
  EXPECT_EQ(retry.stats().gave_up, 0u);
}

TEST(RetryPolicy, NonRetryableFailsImmediately) {
  RetryPolicy retry({.max_attempts = 5, .initial_backoff_ms = 0.0});
  int calls = 0;
  const Status status = retry.RunStatus([&] {
    ++calls;
    return Status::InvalidArgument("bad request");
  });
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(retry.stats().retries, 0u);
}

TEST(RetryPolicy, GivesUpAfterMaxAttempts) {
  RetryPolicy retry({.max_attempts = 3, .initial_backoff_ms = 0.0});
  int calls = 0;
  const Status status = retry.RunStatus([&] {
    ++calls;
    return Status::Unavailable("still down");
  });
  EXPECT_EQ(status.code(), ErrorCode::kUnavailable);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retry.stats().gave_up, 1u);
  EXPECT_EQ(retry.stats().retries, 2u);
}

TEST(RetryPolicy, ExhaustedBudgetStopsRetrying) {
  RetryPolicy retry({.max_attempts = 100, .initial_backoff_ms = 0.0});
  Budget budget;
  budget.deadline = Deadline::AfterSeconds(0);  // Already expired.
  int calls = 0;
  const Status status = retry.RunStatus(
      [&] {
        ++calls;
        return Status::Unavailable("down");
      },
      budget);
  EXPECT_EQ(status.code(), ErrorCode::kUnavailable);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(retry.stats().gave_up, 1u);
}

TEST(RetryPolicy, BackoffIsJitteredWithinTheExponentialCap) {
  RetryPolicy retry({.max_attempts = 4,
                     .initial_backoff_ms = 10.0,
                     .max_backoff_ms = 50.0,
                     .multiplier = 2.0,
                     .seed = 42});
  for (int trial = 0; trial < 50; ++trial) {
    EXPECT_GE(retry.NextBackoffMs(0), 0.0);
    EXPECT_LE(retry.NextBackoffMs(0), 10.0);
    EXPECT_LE(retry.NextBackoffMs(1), 20.0);
    EXPECT_LE(retry.NextBackoffMs(10), 50.0);  // Clamped to max.
  }
  // Full jitter: draws differ (same policy, advancing stream).
  RetryPolicy a({.seed = 42});
  EXPECT_NE(a.NextBackoffMs(3), a.NextBackoffMs(3));
  // Same seed, fresh policy: reproducible.
  RetryPolicy b({.seed = 42});
  RetryPolicy c({.seed = 42});
  EXPECT_EQ(b.NextBackoffMs(3), c.NextBackoffMs(3));
}

TEST(RetryPolicy, BackoffOverflowStaysFiniteAndCapped) {
  // multiplier^retry overflows double to +inf long before retry counts get
  // exotic; the max_backoff clamp must win over the overflow, never produce
  // a NaN/inf sleep.
  RetryPolicy retry({.max_attempts = 4,
                     .initial_backoff_ms = 10.0,
                     .max_backoff_ms = 50.0,
                     .multiplier = 2.0,
                     .seed = 7});
  for (const int huge : {64, 1024, 1 << 20, std::numeric_limits<int>::max()}) {
    const double sleep_ms = retry.NextBackoffMs(huge);
    EXPECT_TRUE(std::isfinite(sleep_ms)) << huge;
    EXPECT_GE(sleep_ms, 0.0) << huge;
    EXPECT_LE(sleep_ms, 50.0) << huge;
  }
  // Negative retry numbers (defensive: callers count from 0) clamp too.
  EXPECT_LE(retry.NextBackoffMs(-5), 10.0);
}

TEST(RetryPolicy, ServerRetryHintFloorsTheBackoffSleep) {
  // A shed response's retry_after_ms is a floor under the jittered sleep:
  // with jitter drawn from [0, 10) the only way the retry waits >= 50ms is
  // the server hint.
  RetryPolicy retry({.max_attempts = 3, .initial_backoff_ms = 10.0});
  int calls = 0;
  const auto start = std::chrono::steady_clock::now();
  const Status status = retry.RunStatus([&] {
    ++calls;
    if (calls == 1) {
      return Status::ResourceExhausted("shed").WithRetryAfterMs(50.0);
    }
    return Status::Ok();
  });
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                start)
          .count();
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 2);
  EXPECT_GE(elapsed_ms, 45.0) << "hint must floor the sleep";
  EXPECT_EQ(retry.stats().retries, 1u);
}

TEST(RetryPolicy, BudgetCapBeatsTheServerHint) {
  // A hostile/huge hint must not sleep past the deadline: the remaining
  // budget still caps the sleep so the final attempt gets wall-clock.
  RetryPolicy retry({.max_attempts = 3, .initial_backoff_ms = 1.0});
  Budget budget;
  budget.deadline = Deadline::AfterSeconds(0.2);
  int calls = 0;
  const auto start = std::chrono::steady_clock::now();
  const Status status = retry.RunStatus(
      [&] {
        ++calls;
        if (calls == 1) {
          return Status::ResourceExhausted("shed").WithRetryAfterMs(60000.0);
        }
        return Status::Ok();
      },
      budget);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                start)
          .count();
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 2);
  EXPECT_LT(elapsed_ms, 1000.0) << "a 60s hint must be capped by the budget";
}

TEST(RetryPolicy, RetriesCounterTicksWhenMetricsEnabled) {
  obs::SetMetricsEnabled(true);
  obs::Counter& counter =
      obs::MetricsRegistry::Default().GetCounter("resilience.retries");
  const std::uint64_t before = counter.value();
  RetryPolicy retry({.max_attempts = 3, .initial_backoff_ms = 0.0});
  int calls = 0;
  (void)retry.RunStatus([&] {
    ++calls;
    return calls < 3 ? Status::Unavailable("x") : Status::Ok();
  });
  EXPECT_EQ(counter.value(), before + 2);
  obs::SetMetricsEnabled(false);
}

TEST(CircuitBreaker, OpensAfterConsecutiveFailuresAndRejectsRetryably) {
  CircuitBreaker breaker({.failure_threshold = 3, .open_seconds = 60.0});
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(breaker.Allow().ok());
    breaker.RecordFailure();
  }
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  const Status rejected = breaker.Allow();
  EXPECT_EQ(rejected.code(), ErrorCode::kUnavailable);
  EXPECT_TRUE(IsRetryable(rejected.code()));
  EXPECT_EQ(breaker.stats().opens, 1u);
  EXPECT_EQ(breaker.stats().rejected, 1u);
}

TEST(CircuitBreaker, SuccessResetsTheConsecutiveCount) {
  CircuitBreaker breaker({.failure_threshold = 2});
  breaker.Allow().ok();
  breaker.RecordFailure();
  breaker.Allow().ok();
  breaker.RecordSuccess();  // Streak broken.
  breaker.Allow().ok();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreaker, HalfOpenProbeClosesOrReopens) {
  CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.open_seconds = 0.02;
  {
    CircuitBreaker breaker(options);
    ASSERT_TRUE(breaker.Allow().ok());
    breaker.RecordFailure();
    ASSERT_EQ(breaker.state(), BreakerState::kOpen);
    EXPECT_FALSE(breaker.Allow().ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    // Cooldown over: one probe is admitted, a second is rejected while the
    // first is still in flight.
    ASSERT_TRUE(breaker.Allow().ok());
    EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
    EXPECT_FALSE(breaker.Allow().ok());
    breaker.RecordSuccess();
    EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  }
  {
    CircuitBreaker breaker(options);
    ASSERT_TRUE(breaker.Allow().ok());
    breaker.RecordFailure();
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    ASSERT_TRUE(breaker.Allow().ok());
    breaker.RecordFailure();  // Probe failed: straight back to open.
    EXPECT_EQ(breaker.state(), BreakerState::kOpen);
    EXPECT_FALSE(breaker.Allow().ok());
  }
}

TEST(CircuitBreaker, NeutralOutcomesReleaseProbesWithoutJudging) {
  CircuitBreaker breaker({.failure_threshold = 1, .open_seconds = 0.02});
  ASSERT_TRUE(breaker.Allow().ok());
  breaker.RecordFailure();
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  ASSERT_TRUE(breaker.Allow().ok());
  // A NOT_FOUND probe outcome proves nothing: the slot frees, the state
  // stays half-open, and the next probe is admitted.
  breaker.Record(Status::NotFound("no such workflow"));
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.Allow().ok());
}

TEST(CircuitBreaker, CountsOnlyServingPathFailures) {
  EXPECT_TRUE(CircuitBreaker::CountsAsFailure(ErrorCode::kInternal));
  EXPECT_TRUE(CircuitBreaker::CountsAsFailure(ErrorCode::kDeadlineExceeded));
  EXPECT_TRUE(CircuitBreaker::CountsAsFailure(ErrorCode::kUnavailable));
  EXPECT_FALSE(CircuitBreaker::CountsAsFailure(ErrorCode::kInvalidArgument));
  EXPECT_FALSE(CircuitBreaker::CountsAsFailure(ErrorCode::kNotFound));
  EXPECT_FALSE(CircuitBreaker::CountsAsFailure(ErrorCode::kCancelled));
  EXPECT_FALSE(CircuitBreaker::CountsAsFailure(ErrorCode::kResourceExhausted));
}

TEST(CircuitBreaker, DisabledBreakerIsTransparent) {
  CircuitBreaker breaker({.failure_threshold = 0});
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(breaker.Allow().ok());
    breaker.RecordFailure();
  }
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreaker, GaugeMirrorsState) {
  obs::SetMetricsEnabled(true);
  CircuitBreaker breaker({.failure_threshold = 1,
                          .open_seconds = 60.0,
                          .gauge_name = "test.breaker_state"});
  obs::Gauge& gauge =
      obs::MetricsRegistry::Default().GetGauge("test.breaker_state");
  EXPECT_EQ(gauge.value(), 0.0);
  ASSERT_TRUE(breaker.Allow().ok());
  breaker.RecordFailure();
  EXPECT_EQ(gauge.value(), 1.0);
  obs::SetMetricsEnabled(false);
}

TEST(Watchdog, FiresOverdueTokensAndSkipsCompletedOnes) {
  Watchdog watchdog({.poll_interval_ms = 5.0});
  const CancelToken overdue = CancelToken::Cancellable();
  const CancelToken completed = CancelToken::Cancellable();
  (void)watchdog.Watch(overdue, 0.01);
  const std::uint64_t done_id = watchdog.Watch(completed, 0.01);
  watchdog.Unwatch(done_id);  // The request finished in time.

  for (int i = 0; i < 200 && !overdue.cancelled(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(overdue.cancelled());
  EXPECT_FALSE(completed.cancelled());
  EXPECT_EQ(watchdog.stats().watched, 2u);
  EXPECT_EQ(watchdog.stats().fired, 1u);
  EXPECT_EQ(watchdog.pending(), 0u);
}

TEST(Watchdog, DestructionWithPendingWatchesIsClean) {
  const CancelToken token = CancelToken::Cancellable();
  {
    Watchdog watchdog;
    watchdog.Watch(token, 3600.0);
  }
  EXPECT_FALSE(token.cancelled());
}

// ---------------------------------------------------------------------------
// Service integration.

DagWorkflow TestFlow() {
  Result<NamedFlow> named = TableThreeFlow("TS-Q6", 0.01);
  EXPECT_TRUE(named.ok()) << named.status().ToString();
  return std::move(named).value().flow;
}

/// A task-time source whose queries block until Open() — parks service
/// workers mid-estimate so shutdown/watchdog behaviour can be observed with
/// requests genuinely in flight.
class GateSource : public TaskTimeSource {
 public:
  Duration TaskTime(const EstimationContext&) const override {
    std::unique_lock lock(mutex_);
    ++entered_;
    entered_cv_.notify_all();
    open_cv_.wait(lock, [&] { return open_; });
    return Duration::Seconds(1);
  }

  void Open() {
    {
      std::lock_guard lock(mutex_);
      open_ = true;
    }
    open_cv_.notify_all();
  }

  void WaitUntilEntered(int count) const {
    std::unique_lock lock(mutex_);
    entered_cv_.wait(lock, [&] { return entered_ >= count; });
  }

 private:
  mutable std::mutex mutex_;
  mutable std::condition_variable open_cv_;
  mutable std::condition_variable entered_cv_;
  mutable bool open_ = false;
  mutable int entered_ = 0;
};

TEST(ServiceResilience, WatchdogCancellationSurfacesAsDeadlineExceeded) {
  ServiceOptions options;
  options.threads = 1;
  options.watchdog_multiple = 1.0;
  EstimationService service(options);
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());
  GateSource gate;
  ASSERT_TRUE(service.RegisterSource("default", &gate, "gate").ok());

  ServiceRequest request;
  request.workflow = "q6";
  request.budget = Budget::Within(0.05);
  std::future<Result<WorkflowEstimate>> future =
      service.Submit(std::move(request));
  gate.WaitUntilEntered(1);

  // Hold the worker hostage well past watchdog_multiple x deadline, then
  // release it: the estimator's next budget poll sees the fired token.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  gate.Open();

  Result<WorkflowEstimate> result = future.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kDeadlineExceeded);
  EXPECT_NE(result.status().message().find("watchdog"), std::string::npos)
      << result.status().ToString();
  EXPECT_EQ(service.Stats().watchdog_fired, 1u);
}

TEST(ServiceResilience, ShutdownUnderLoadAnswersEveryRequestRetryably) {
  ServiceOptions options;
  options.threads = 4;
  EstimationService service(options);
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());
  GateSource gate;
  ASSERT_TRUE(service.RegisterSource("default", &gate, "gate").ok());

  std::vector<std::future<Result<WorkflowEstimate>>> futures;
  for (int i = 0; i < 8; ++i) {
    ServiceRequest request;
    request.workflow = "q6";
    // The eight requests are value-identical; since 0.8 they would coalesce
    // onto one leader and only one worker would ever enter the gate. This
    // test needs eight independent in-flight computations to park.
    request.coalesce = false;
    futures.push_back(service.Submit(std::move(request)));
  }
  gate.WaitUntilEntered(4);  // All workers parked, 4 more requests queued.

  std::thread release([&] {
    // Open the gate only after the grace period has expired and the
    // shutdown token fired — the parked workers then unwind cooperatively.
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    gate.Open();
  });
  const EstimationService::ShutdownReport report = service.Shutdown(0.05);
  release.join();

  EXPECT_EQ(report.inflight_at_shutdown, 8);
  EXPECT_FALSE(report.graceful);
  EXPECT_GT(report.cancelled, 0);

  // Hard guarantee: every future resolves, and every cancelled request is
  // answered with the retryable UNAVAILABLE, never a silent drop.
  for (std::future<Result<WorkflowEstimate>>& future : futures) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(10)),
              std::future_status::ready);
    Result<WorkflowEstimate> result = future.get();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), ErrorCode::kUnavailable);
    EXPECT_TRUE(IsRetryable(result.status().code()));
  }

  // Admission is closed for good after shutdown.
  ServiceRequest late;
  late.workflow = "q6";
  Result<WorkflowEstimate> rejected = service.Submit(std::move(late)).get();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), ErrorCode::kFailedPrecondition);
}

TEST(ServiceResilience, GracefulShutdownWithIdleServiceReportsClean) {
  EstimationService service;
  const EstimationService::ShutdownReport report = service.Shutdown(1.0);
  EXPECT_TRUE(report.graceful);
  EXPECT_EQ(report.inflight_at_shutdown, 0);
  EXPECT_EQ(report.cancelled, 0);
}

TEST(ServiceResilience, BreakerOpensOnInjectedFailuresAndFastFails) {
  InjectorReset guard;
  ServiceOptions options;
  options.threads = 1;
  options.breaker_failure_threshold = 2;
  options.breaker_open_seconds = 60.0;
  EstimationService service(options);
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());

  FaultInjector& injector = FaultInjector::Default();
  ASSERT_TRUE(injector
                  .Configure("service.execute",
                             {.probability = 1.0, .error = ErrorCode::kInternal})
                  .ok());
  injector.Arm(11);
  for (int i = 0; i < 2; ++i) {
    ServiceRequest request;
    request.workflow = "q6";
    Result<WorkflowEstimate> result = service.Submit(std::move(request)).get();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), ErrorCode::kInternal);
  }
  injector.Disarm();

  // The breaker is open: the healthy path is not even tried.
  ServiceRequest request;
  request.workflow = "q6";
  Result<WorkflowEstimate> rejected = service.Submit(std::move(request)).get();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), ErrorCode::kUnavailable);
  EXPECT_TRUE(IsRetryable(rejected.status().code()));
  EXPECT_NE(rejected.status().message().find("breaker"), std::string::npos);
}

TEST(ServiceResilience, ClientErrorsNeverOpenTheBreaker) {
  ServiceOptions options;
  options.threads = 1;
  options.breaker_failure_threshold = 2;
  EstimationService service(options);
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());

  for (int i = 0; i < 10; ++i) {
    ServiceRequest request;
    request.workflow = "missing";
    Result<WorkflowEstimate> result = service.Submit(std::move(request)).get();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), ErrorCode::kNotFound);
  }
  // A good request still flows: NOT_FOUND never tripped the breaker.
  ServiceRequest good;
  good.workflow = "q6";
  EXPECT_TRUE(service.Submit(std::move(good)).get().ok());
}

TEST(ServiceResilience, InjectedAdmitFaultShedsWithoutLeakingSlots) {
  InjectorReset guard;
  ServiceOptions options;
  options.threads = 1;
  EstimationService service(options);
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());

  FaultInjector& injector = FaultInjector::Default();
  ASSERT_TRUE(injector
                  .Configure("service.admit",
                             {.probability = 1.0,
                              .error = ErrorCode::kResourceExhausted,
                              .max_fires = 3})
                  .ok());
  injector.Arm(3);
  int rejected = 0;
  for (int i = 0; i < 3; ++i) {
    ServiceRequest request;
    request.workflow = "q6";
    Result<WorkflowEstimate> result = service.Submit(std::move(request)).get();
    if (!result.ok() &&
        result.status().code() == ErrorCode::kResourceExhausted) {
      ++rejected;
    }
  }
  injector.Disarm();
  EXPECT_EQ(rejected, 3);
  // Slots were backed out: the queue is empty and a real request succeeds.
  EXPECT_EQ(service.Stats().queue_depth, 0);
  ServiceRequest good;
  good.workflow = "q6";
  EXPECT_TRUE(service.Submit(std::move(good)).get().ok());
}

}  // namespace
}  // namespace dagperf
