#include "workloads/spark.h"

#include <gtest/gtest.h>

#include "common/stats.h"

#include "model/state_estimator.h"
#include "model/task_time_source.h"
#include "sim/simulator.h"

namespace dagperf {
namespace {

SparkStage Stage(const std::string& name, double input_gb, double ratio,
                 double mbps, bool cache = false) {
  SparkStage s;
  s.name = name;
  s.input = Bytes::FromGB(input_gb);
  s.output_ratio = ratio;
  s.compute = Rate::MBps(mbps);
  s.cache_output = cache;
  return s;
}

TEST(SparkCompilerTest, SingleStageBecomesMapOnlyJob) {
  SparkAppSpec app;
  app.name = "scan";
  app.output_replicas = 3;
  app.stages.push_back(Stage("scan", 10, 0.5, 100));
  const DagWorkflow flow = CompileSparkApp(app).value();
  ASSERT_EQ(flow.num_jobs(), 1);
  EXPECT_FALSE(flow.job(0).has_reduce());
  EXPECT_EQ(flow.job(0).spec.replicas, 3);
  EXPECT_DOUBLE_EQ(flow.job(0).spec.map_selectivity, 0.5);
}

TEST(SparkCompilerTest, WideEdgeCreatesShuffle) {
  SparkAppSpec app;
  app.stages.push_back(Stage("scan", 10, 1.0, 100));
  app.stages.push_back(Stage("agg", 0, 0.1, 80));
  app.edges.push_back({0, 1, /*wide=*/true});
  const DagWorkflow flow = CompileSparkApp(app).value();
  ASSERT_EQ(flow.num_jobs(), 2);
  EXPECT_TRUE(flow.job(0).has_reduce());  // The producer shuffles.
  // The consumer's input equals the producer's output.
  EXPECT_NEAR(flow.job(1).spec.input.value(), JobOutput(flow.job(0).spec).value(),
              1.0);
}

TEST(SparkCompilerTest, NarrowChainContracts) {
  SparkAppSpec app;
  app.stages.push_back(Stage("parse", 10, 0.5, 100));
  app.stages.push_back(Stage("filter", 0, 0.2, 200));
  app.stages.push_back(Stage("project", 0, 0.5, 400));
  app.edges.push_back({0, 1, /*wide=*/false});
  app.edges.push_back({1, 2, /*wide=*/false});
  const DagWorkflow flow = CompileSparkApp(app).value();
  // All three pipeline into a single job.
  ASSERT_EQ(flow.num_jobs(), 1);
  const JobSpec& spec = flow.job(0).spec;
  EXPECT_EQ(spec.name, "parse+filter+project");
  EXPECT_NEAR(spec.map_selectivity, 0.5 * 0.2 * 0.5, 1e-12);
  // Fused compute: 1/100 + 0.5/200 + 0.1/400 MB-cost per byte.
  const double cost = 1.0 / 100e6 + 0.5 / 200e6 + 0.1 / 400e6;
  EXPECT_NEAR(spec.map_compute.bytes_per_sec(), 1.0 / cost, 1.0);
}

TEST(SparkCompilerTest, NarrowEdgeWithFanoutDoesNotContract) {
  SparkAppSpec app;
  app.stages.push_back(Stage("scan", 10, 1.0, 100, /*cache=*/true));
  app.stages.push_back(Stage("a", 0, 0.1, 100));
  app.stages.push_back(Stage("b", 0, 0.1, 100));
  app.edges.push_back({0, 1, false});
  app.edges.push_back({0, 2, false});
  const DagWorkflow flow = CompileSparkApp(app).value();
  EXPECT_EQ(flow.num_jobs(), 3);
  // Consumers of a cached stage read from memory.
  EXPECT_DOUBLE_EQ(flow.job(1).spec.input_cache_fraction, 1.0);
  const auto& read = flow.job(1).map.substages.front();
  EXPECT_DOUBLE_EQ(read.demand[Resource::kDiskRead], 0.0);
  EXPECT_GT(read.demand[Resource::kCpu], 0.0);
}

TEST(SparkCompilerTest, RejectsBadApps) {
  SparkAppSpec empty;
  EXPECT_FALSE(CompileSparkApp(empty).ok());

  SparkAppSpec cycle;
  cycle.stages.push_back(Stage("a", 10, 1, 100));
  cycle.stages.push_back(Stage("b", 0, 1, 100));
  cycle.edges = {{0, 1, true}, {1, 0, true}};
  EXPECT_FALSE(CompileSparkApp(cycle).ok());

  SparkAppSpec double_input;
  double_input.stages.push_back(Stage("a", 10, 1, 100));
  double_input.stages.push_back(Stage("b", 5, 1, 100));  // Input + parent.
  double_input.edges = {{0, 1, true}};
  EXPECT_FALSE(CompileSparkApp(double_input).ok());

  SparkAppSpec no_input;
  no_input.stages.push_back(Stage("a", 0, 1, 100));  // Source without bytes.
  EXPECT_FALSE(CompileSparkApp(no_input).ok());
}

TEST(SparkCompilerTest, IterativeMlAppShape) {
  const SparkAppSpec app = IterativeMlApp(Bytes::FromGB(20), 4);
  const DagWorkflow flow = CompileSparkApp(app).value();
  // scan + 4 gradient stages.
  EXPECT_EQ(flow.num_jobs(), 5);
  // Gradient stages read the cache: almost all input from memory.
  for (JobId id = 1; id < flow.num_jobs(); ++id) {
    EXPECT_GT(flow.job(id).spec.input_cache_fraction, 0.99) << id;
  }
}

TEST(SparkCompilerTest, CachingSpeedsUpIterations) {
  // The same app with caching disabled must be predicted (and simulated)
  // slower: every iteration re-reads the training set from disk.
  SparkAppSpec cached = IterativeMlApp(Bytes::FromGB(20), 3);
  SparkAppSpec uncached = cached;
  uncached.stages[0].cache_output = false;

  const ClusterSpec cluster = ClusterSpec::PaperCluster();
  const auto time_of = [&](const SparkAppSpec& app) {
    const DagWorkflow flow = CompileSparkApp(app).value();
    const Simulator sim(cluster, SchedulerConfig{}, SimOptions{});
    return sim.Run(flow)->makespan().seconds();
  };
  EXPECT_LT(time_of(cached), time_of(uncached));
}

TEST(SparkCompilerTest, ModelsEstimateCompiledApps) {
  const DagWorkflow flow =
      CompileSparkApp(IterativeMlApp(Bytes::FromGB(20), 3)).value();
  const ClusterSpec cluster = ClusterSpec::PaperCluster();
  const Simulator sim(cluster, SchedulerConfig{}, SimOptions{});
  const SimResult truth = sim.Run(flow).value();
  const BoeModel boe(cluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  const StateBasedEstimator estimator(cluster, SchedulerConfig{});
  const DagEstimate est = estimator.Estimate(flow, source).value();
  EXPECT_GT(RelativeAccuracy(est.makespan.seconds(), truth.makespan().seconds()),
            0.75);
}

}  // namespace
}  // namespace dagperf
