#include <gtest/gtest.h>

#include "exp/dag_suite.h"
#include "exp/parallel_jobs.h"
#include "exp/phase_split.h"
#include "exp/single_job.h"
#include "workloads/micro.h"
#include "workloads/suite.h"

namespace dagperf {
namespace {

// Scaled-down configurations keep the unit tests quick; the benches run the
// paper-scale versions.

SingleJobSweepConfig SmallSweep() {
  SingleJobSweepConfig config;
  config.parallelisms = {1, 4, 8, 12};
  config.baseline_reference = 2;
  return config;
}

TEST(SingleJobSweepTest, WordCountShape) {
  const SingleJobSweepResult result =
      RunSingleJobSweep(WordCountSpec(Bytes::FromGB(40)), SmallSweep()).value();
  ASSERT_EQ(result.points.size(), 4u);

  // BOE tracks the truth far better than the fixed baseline at delta=12.
  const auto& p12 = result.points.back();
  EXPECT_EQ(p12.tasks_per_node, 12);
  const double boe_err = std::fabs(p12.boe.map_s - p12.truth.map_s);
  const double base_err = std::fabs(p12.baseline.map_s - p12.truth.map_s);
  EXPECT_LT(boe_err, base_err);
  EXPECT_GT(base_err / std::max(boe_err, 1e-9), 2.0);

  // WC map is CPU-bound: task time grows past core saturation (6).
  EXPECT_GT(p12.truth.map_s, 1.5 * result.points[0].truth.map_s);

  // Aggregate accuracies.
  const SweepAccuracy boe_acc = BoeSweepAccuracy(result);
  const SweepAccuracy base_acc = BaselineSweepAccuracy(result);
  EXPECT_GT(boe_acc.map, 0.85);
  EXPECT_GT(boe_acc.map, base_acc.map);
}

TEST(SingleJobSweepTest, TeraSortShuffleNetworkBound) {
  const SingleJobSweepResult result =
      RunSingleJobSweep(TsSpec(Bytes::FromGB(100)), SmallSweep()).value();
  const SweepAccuracy boe_acc = BoeSweepAccuracy(result);
  EXPECT_GT(boe_acc.map, 0.8);
  EXPECT_GT(boe_acc.shuffle, 0.7);
  EXPECT_GT(boe_acc.reduce, 0.7);
  // BOE beats the baseline on every phase.
  const SweepAccuracy base_acc = BaselineSweepAccuracy(result);
  EXPECT_GT(boe_acc.shuffle, base_acc.shuffle);
}

TEST(SingleJobSweepTest, RejectsEmptyParallelisms) {
  SingleJobSweepConfig config;
  config.parallelisms.clear();
  EXPECT_FALSE(RunSingleJobSweep(WordCountSpec(Bytes::FromGB(1)), config).ok());
}

TEST(ParallelJobsTest, WcTsStateAccuracies) {
  DagBuilder builder("WC+TS");
  builder.AddJob(WordCountSpec(Bytes::FromGB(100)));
  builder.AddJob(TsSpec(Bytes::FromGB(100)));
  const DagWorkflow flow = std::move(builder).Build().value();

  const ParallelJobsResult result =
      RunParallelJobsExperiment(flow, ClusterSpec::PaperCluster(), SchedulerConfig{},
                                SimOptions{})
          .value();
  ASSERT_FALSE(result.cells.empty());
  // Most aligned state cells should be reasonably accurate.
  double sum = 0;
  for (const auto& cell : result.cells) {
    EXPECT_GT(cell.truth_s, 0.0);
    EXPECT_GT(cell.estimate_s, 0.0);
    sum += cell.accuracy;
  }
  EXPECT_GT(sum / result.cells.size(), 0.7);
}

TEST(DagSuiteTest, EvaluateHybridWorkflow) {
  const NamedFlow nf = TableThreeFlow("WC-TS", 1.0).value();
  const DagAccuracyRow row =
      EvaluateDagWorkflow(nf, ClusterSpec::PaperCluster(), SchedulerConfig{},
                          SimOptions{})
          .value();
  EXPECT_EQ(row.name, "WC-TS");
  EXPECT_GT(row.truth_s, 0.0);
  // Profile-driven state estimation should be close (paper: > 81% minimum).
  EXPECT_GT(row.acc_mean, 0.8);
  EXPECT_GT(row.acc_median, 0.8);
  EXPECT_GT(row.acc_normal, 0.8);
  EXPECT_GT(row.stage_breakdown_acc, 0.6);
  EXPECT_LT(row.estimate_latency_ms, 1000.0);  // << 1 s per workflow.
}

TEST(DagSuiteTest, EvaluateQueryWorkflow) {
  const NamedFlow nf = TableThreeFlow("TS-Q6", 1.0).value();
  const DagAccuracyRow row =
      EvaluateDagWorkflow(nf, ClusterSpec::PaperCluster(), SchedulerConfig{},
                          SimOptions{})
          .value();
  EXPECT_GT(row.acc_mean, 0.75);
}

TEST(DagSuiteTest, SummaryAggregates) {
  DagAccuracyRow a;
  a.acc_mean = 0.9;
  a.acc_median = 0.8;
  a.acc_normal = 0.95;
  a.estimate_latency_ms = 2.0;
  DagAccuracyRow b;
  b.acc_mean = 0.7;
  b.acc_median = 1.0;
  b.acc_normal = 0.85;
  b.estimate_latency_ms = 5.0;
  const SuiteSummary s = Summarize({a, b});
  EXPECT_NEAR(s.mean_acc_mean, 0.8, 1e-9);
  EXPECT_NEAR(s.mean_acc_median, 0.9, 1e-9);
  EXPECT_NEAR(s.mean_acc_normal, 0.9, 1e-9);
  EXPECT_NEAR(s.min_acc, 0.7, 1e-9);
  EXPECT_NEAR(s.max_latency_ms, 5.0, 1e-9);
}

TEST(PhaseSplitTest, ShuffleSubStageNames) {
  EXPECT_TRUE(IsShuffleSubStage("shuffle"));
  EXPECT_TRUE(IsShuffleSubStage("merge"));
  EXPECT_FALSE(IsShuffleSubStage("reduce+write"));
  EXPECT_FALSE(IsShuffleSubStage("read+map"));
}

}  // namespace
}  // namespace dagperf
