// Integration tests: every TPC-H query plan (and the full Table III suite
// at reduced scale) simulates to completion and the profile-driven
// state-based estimate tracks the simulated execution.

#include <gtest/gtest.h>

#include "common/stats.h"
#include "exp/dag_suite.h"
#include "model/state_estimator.h"
#include "model/task_time_source.h"
#include "sim/simulator.h"
#include "workloads/suite.h"
#include "workloads/tpch.h"

namespace dagperf {
namespace {

class TpchQueryTest : public ::testing::TestWithParam<int> {};

TEST_P(TpchQueryTest, SimulatesAndEstimatesAccurately) {
  const int query = GetParam();
  const DagWorkflow flow = TpchQueryFlow(query, Bytes::FromGB(16)).value();
  const ClusterSpec cluster = ClusterSpec::PaperCluster();
  const Simulator sim(cluster, SchedulerConfig{}, SimOptions{});
  const Result<SimResult> truth = sim.Run(flow);
  ASSERT_TRUE(truth.ok()) << "Q" << query << ": " << truth.status().ToString();
  EXPECT_GT(truth->makespan().seconds(), 0.0);
  EXPECT_EQ(static_cast<int>(truth->stages().size()), flow.TotalStages());

  const ProfileTaskTimeSource source =
      ProfileTaskTimeSource::FromSimulation(flow, *truth, ProfileStatistic::kMean)
          .value();
  const StateBasedEstimator estimator(cluster, SchedulerConfig{});
  const DagEstimate est = estimator.Estimate(flow, source).value();
  EXPECT_GT(RelativeAccuracy(est.makespan.seconds(), truth->makespan().seconds()),
            0.75)
      << "Q" << query << " est " << est.makespan.seconds() << " truth "
      << truth->makespan().seconds();
}

INSTANTIATE_TEST_SUITE_P(AllQueries, TpchQueryTest, ::testing::Range(1, 23));

TEST(SuiteIntegrationTest, FullSuiteEvaluatesAtSmallScale) {
  const std::vector<NamedFlow> suite = TableThreeSuite(/*scale=*/0.1).value();
  const ClusterSpec cluster = ClusterSpec::PaperCluster();
  double worst = 1.0;
  std::string worst_name;
  for (const auto& nf : suite) {
    const Result<DagAccuracyRow> row =
        EvaluateDagWorkflow(nf, cluster, SchedulerConfig{}, SimOptions{});
    ASSERT_TRUE(row.ok()) << nf.name << ": " << row.status().ToString();
    const double m = std::min({row->acc_mean, row->acc_median, row->acc_normal});
    if (m < worst) {
      worst = m;
      worst_name = nf.name;
    }
  }
  // Even at a scale where stages are only a few waves, no workflow should
  // be estimated with less than ~50% accuracy.
  EXPECT_GT(worst, 0.5) << worst_name;
}

TEST(SuiteIntegrationTest, PaperScaleSpotChecks) {
  // A handful of full-scale workflows hit the paper's accuracy band.
  const ClusterSpec cluster = ClusterSpec::PaperCluster();
  for (const char* name : {"TS-Q1", "WC-Q6", "WC-TS", "TS-KM"}) {
    const NamedFlow nf = TableThreeFlow(name).value();
    const DagAccuracyRow row =
        EvaluateDagWorkflow(nf, cluster, SchedulerConfig{}, SimOptions{}).value();
    EXPECT_GT(row.acc_mean, 0.8) << name;
    EXPECT_LT(row.estimate_latency_ms, 1000.0) << name;
  }
}

}  // namespace
}  // namespace dagperf
