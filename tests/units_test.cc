#include "common/units.h"

#include <gtest/gtest.h>

namespace dagperf {
namespace {

TEST(BytesTest, Factories) {
  EXPECT_DOUBLE_EQ(Bytes::FromKB(1).value(), 1e3);
  EXPECT_DOUBLE_EQ(Bytes::FromMB(1).value(), 1e6);
  EXPECT_DOUBLE_EQ(Bytes::FromGB(1).value(), 1e9);
  EXPECT_DOUBLE_EQ(Bytes::FromGB(1.5).ToMB(), 1500.0);
}

TEST(BytesTest, Arithmetic) {
  const Bytes a = Bytes::FromMB(100);
  const Bytes b = Bytes::FromMB(50);
  EXPECT_DOUBLE_EQ((a + b).ToMB(), 150.0);
  EXPECT_DOUBLE_EQ((a - b).ToMB(), 50.0);
  EXPECT_DOUBLE_EQ((a * 2.0).ToMB(), 200.0);
  EXPECT_DOUBLE_EQ((a / 4.0).ToMB(), 25.0);
  EXPECT_DOUBLE_EQ(a / b, 2.0);
  EXPECT_DOUBLE_EQ((2.0 * a).ToMB(), 200.0);
  Bytes c = a;
  c += b;
  EXPECT_DOUBLE_EQ(c.ToMB(), 150.0);
  c -= b;
  EXPECT_DOUBLE_EQ(c.ToMB(), 100.0);
}

TEST(BytesTest, Comparison) {
  EXPECT_LT(Bytes::FromMB(1), Bytes::FromMB(2));
  EXPECT_EQ(Bytes::FromKB(1000), Bytes::FromMB(1));
  EXPECT_GE(Bytes::FromGB(1), Bytes::FromMB(999));
}

TEST(DurationTest, Arithmetic) {
  const Duration a = Duration::Seconds(10);
  const Duration b = Duration::Millis(500);
  EXPECT_DOUBLE_EQ((a + b).seconds(), 10.5);
  EXPECT_DOUBLE_EQ((a - b).seconds(), 9.5);
  EXPECT_DOUBLE_EQ((a * 3).seconds(), 30.0);
  EXPECT_DOUBLE_EQ(a / b, 20.0);
  EXPECT_TRUE(Duration::Infinite().is_infinite());
  EXPECT_FALSE(a.is_infinite());
}

TEST(RateTest, Factories) {
  EXPECT_DOUBLE_EQ(Rate::MBps(100).bytes_per_sec(), 1e8);
  EXPECT_DOUBLE_EQ(Rate::GBps(1).bytes_per_sec(), 1e9);
  // 1 Gbps = 125 MB/s.
  EXPECT_DOUBLE_EQ(Rate::Gbps(1).ToMBps(), 125.0);
}

TEST(CrossTypeTest, BytesOverRateIsDuration) {
  const Duration t = Bytes::FromMB(1000) / Rate::MBps(100);
  EXPECT_DOUBLE_EQ(t.seconds(), 10.0);
}

TEST(CrossTypeTest, ZeroRateYieldsInfiniteDuration) {
  const Duration t = Bytes::FromMB(1) / Rate(0);
  EXPECT_TRUE(t.is_infinite());
}

TEST(CrossTypeTest, RateTimesDurationIsBytes) {
  EXPECT_DOUBLE_EQ((Rate::MBps(50) * Duration::Seconds(4)).ToMB(), 200.0);
  EXPECT_DOUBLE_EQ((Duration::Seconds(4) * Rate::MBps(50)).ToMB(), 200.0);
}

TEST(CrossTypeTest, BytesOverDurationIsRate) {
  EXPECT_DOUBLE_EQ((Bytes::FromMB(200) / Duration::Seconds(4)).ToMBps(), 50.0);
}

TEST(ToStringTest, HumanReadable) {
  EXPECT_EQ(Bytes::FromGB(2).ToString(), "2 GB");
  EXPECT_EQ(Bytes::FromMB(1.5).ToString(), "1.5 MB");
  EXPECT_EQ(Duration::Seconds(12).ToString(), "12 s");
  EXPECT_EQ(Duration::Infinite().ToString(), "inf");
  EXPECT_EQ(Rate::MBps(100).ToString(), "100 MB/s");
}

}  // namespace
}  // namespace dagperf
