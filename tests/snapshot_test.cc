// Warm-state snapshot tests (model/snapshot.h): property-style round-trips
// (save -> load must reproduce every memo entry and checkpoint bit-exactly,
// and an estimator resuming from the restored store must answer
// bit-identically to one resuming from the original), plus corruption
// rejection — truncation at every prefix length and single-bit flips at
// every byte must fail cleanly with the stores untouched.

#include "model/snapshot.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "model/incremental.h"
#include "model/state_estimator.h"
#include "model/task_time_source.h"
#include "workloads/micro.h"

namespace dagperf {
namespace {

const ClusterSpec kCluster = ClusterSpec::PaperCluster();
const SchedulerConfig kSched;

/// Per-test temp path under the build tree; removed on destruction.
struct TempPath {
  std::string path;
  explicit TempPath(const std::string& name) : path("snapshot_test_" + name) {
    std::remove(path.c_str());
  }
  ~TempPath() { std::remove(path.c_str()); }
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Memo entries exercising every flag combination and doubles that would
/// betray any text/rounding round-trip (1/3, denormal-adjacent, negative
/// stddev never occurs but huge magnitudes do).
std::vector<TaskTimeMemo::ExportedEntry> SyntheticEntries() {
  std::vector<TaskTimeMemo::ExportedEntry> entries;
  TaskTimeMemo::ExportedEntry a;
  a.key = "cluster|wc/map|128";
  a.time = Duration::Seconds(1.0 / 3.0);
  a.has_time = true;
  entries.push_back(a);
  TaskTimeMemo::ExportedEntry b;
  b.key = "cluster|ts/reduce|7";
  b.dist = {1e-308, 2.718281828459045};
  b.has_dist = true;
  entries.push_back(b);
  TaskTimeMemo::ExportedEntry c;
  c.key = "other scope with spaces \n and newline|x|1";
  c.time = Duration::Seconds(98765.4321);
  c.dist = {0.1 + 0.2, 1e17};
  c.has_time = true;
  c.has_dist = true;
  entries.push_back(c);
  return entries;
}

DagWorkflow ChainFlow(int reducers) {
  DagBuilder builder("chain-r" + std::to_string(reducers));
  const JobId a = builder.AddJob(WordCountSpec(Bytes::FromGB(20)));
  const JobId b = builder.AddJobAfter(a, TsSpec(Bytes::FromGB(10)));
  JobSpec last = TsSpec(Bytes::FromGB(5));
  last.num_reduce_tasks = reducers;
  builder.AddJobAfter(b, last);
  return std::move(builder).Build().value();
}

void ExpectIdentical(const DagEstimate& a, const DagEstimate& b) {
  EXPECT_EQ(a.makespan.seconds(), b.makespan.seconds());
  ASSERT_EQ(a.states.size(), b.states.size());
  for (size_t s = 0; s < a.states.size(); ++s) {
    EXPECT_EQ(a.states[s].start, b.states[s].start);
    EXPECT_EQ(a.states[s].duration, b.states[s].duration);
  }
  ASSERT_EQ(a.stages.size(), b.stages.size());
  for (size_t s = 0; s < a.stages.size(); ++s) {
    EXPECT_EQ(a.stages[s].start, b.stages[s].start);
    EXPECT_EQ(a.stages[s].end, b.stages[s].end);
  }
}

TEST(SnapshotTest, MemoEntriesRoundTripBitExactly) {
  TempPath file("memo_roundtrip");
  TaskTimeMemo memo;
  memo.Import(SyntheticEntries());

  PrefixCheckpointStore empty_store;
  SnapshotStats saved;
  ASSERT_TRUE(
      SaveWarmSnapshot(file.path, memo, empty_store, &saved).ok());
  EXPECT_EQ(saved.memo_entries, 3u);
  EXPECT_EQ(saved.checkpoints, 0u);
  EXPECT_GT(saved.bytes, 0u);

  TaskTimeMemo restored;
  PrefixCheckpointStore restored_store;
  SnapshotStats loaded;
  ASSERT_TRUE(
      LoadWarmSnapshot(file.path, &restored, &restored_store, &loaded).ok());
  EXPECT_EQ(loaded.memo_entries, saved.memo_entries);
  EXPECT_EQ(loaded.bytes, saved.bytes);

  // Bit-exact: every key, flag, and double must come back with == equality
  // (no text round-trip slop permitted by the format).
  std::map<std::string, TaskTimeMemo::ExportedEntry> by_key;
  for (const auto& entry : restored.Export()) by_key[entry.key] = entry;
  for (const auto& original : memo.Export()) {
    ASSERT_TRUE(by_key.count(original.key)) << original.key;
    const TaskTimeMemo::ExportedEntry& back = by_key[original.key];
    EXPECT_EQ(original.has_time, back.has_time);
    EXPECT_EQ(original.has_dist, back.has_dist);
    EXPECT_EQ(original.time.seconds(), back.time.seconds());
    EXPECT_EQ(original.dist.mean, back.dist.mean);
    EXPECT_EQ(original.dist.stddev, back.dist.stddev);
  }
}

TEST(SnapshotTest, RestoredCheckpointsResumeBitIdentically) {
  TempPath file("checkpoint_resume");
  const BoeModel boe(kCluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));

  // Warm a store with real checkpoints, and keep the warm-resume answer the
  // restored store must reproduce.
  PrefixCheckpointStore store;
  EstimatorOptions options;
  options.checkpoints = &store;
  const StateBasedEstimator estimator(kCluster, kSched, options);
  (void)estimator.Estimate(ChainFlow(8), source).value();
  const DagEstimate warm = estimator.Estimate(ChainFlow(16), source).value();
  ASSERT_GT(store.stats().entries, 0u);

  TaskTimeMemo memo;
  ASSERT_TRUE(SaveWarmSnapshot(file.path, memo, store, nullptr).ok());

  TaskTimeMemo restored_memo;
  PrefixCheckpointStore restored;
  ASSERT_TRUE(
      LoadWarmSnapshot(file.path, &restored_memo, &restored, nullptr).ok());
  EXPECT_EQ(restored.stats().entries, store.stats().entries);
  EXPECT_EQ(restored.stats().bytes, store.stats().bytes);

  // A fresh estimator resuming from the restored store must (a) actually
  // resume and (b) produce the exact same bits as the original warm run.
  EstimatorOptions resumed_options;
  resumed_options.checkpoints = &restored;
  const StateBasedEstimator resumed_estimator(kCluster, kSched,
                                              resumed_options);
  const DagEstimate resumed =
      resumed_estimator.Estimate(ChainFlow(16), source).value();
  EXPECT_GT(restored.stats().resumed_states, 0u);
  ExpectIdentical(warm, resumed);
}

TEST(SnapshotTest, MissingFileIsNotFound) {
  TaskTimeMemo memo;
  PrefixCheckpointStore store;
  const Status status =
      LoadWarmSnapshot("snapshot_test_never_written", &memo, &store, nullptr);
  EXPECT_EQ(status.code(), ErrorCode::kNotFound);
}

TEST(SnapshotTest, EveryTruncationRejectsAndLeavesStoresUntouched) {
  TempPath file("truncate");
  TaskTimeMemo memo;
  memo.Import(SyntheticEntries());
  PrefixCheckpointStore store;
  {
    const BoeModel boe(kCluster.node);
    const BoeTaskTimeSource source(boe, Duration::Seconds(1));
    EstimatorOptions options;
    options.checkpoints = &store;
    (void)StateBasedEstimator(kCluster, kSched, options)
        .Estimate(ChainFlow(8), source)
        .value();
  }
  ASSERT_TRUE(SaveWarmSnapshot(file.path, memo, store, nullptr).ok());
  const std::string full = ReadFile(file.path);
  ASSERT_GT(full.size(), 64u);

  // Every strict prefix must be rejected: the header checks catch short
  // headers and payload-size mismatches, and nothing may be imported.
  // Stride keeps the loop fast on large payloads while still covering the
  // header region byte-by-byte.
  for (std::size_t cut = 0; cut < full.size();
       cut += (cut < 64 ? 1 : 97)) {
    WriteFile(file.path, full.substr(0, cut));
    TaskTimeMemo target;
    PrefixCheckpointStore target_store;
    const Status status =
        LoadWarmSnapshot(file.path, &target, &target_store, nullptr);
    EXPECT_FALSE(status.ok()) << "truncation at " << cut << " was accepted";
    EXPECT_EQ(target.Export().size(), 0u) << "partial import at " << cut;
    EXPECT_EQ(target_store.stats().entries, 0u) << "partial import at " << cut;
  }
}

TEST(SnapshotTest, EveryBitFlipRejectsCleanly) {
  TempPath file("bitflip");
  TaskTimeMemo memo;
  memo.Import(SyntheticEntries());
  PrefixCheckpointStore store;
  ASSERT_TRUE(SaveWarmSnapshot(file.path, memo, store, nullptr).ok());
  const std::string full = ReadFile(file.path);

  for (std::size_t at = 0; at < full.size(); ++at) {
    std::string bent = full;
    bent[at] = static_cast<char>(bent[at] ^ 0x10);
    WriteFile(file.path, bent);
    TaskTimeMemo target;
    PrefixCheckpointStore target_store;
    const Status status =
        LoadWarmSnapshot(file.path, &target, &target_store, nullptr);
    // A flip in the magic / version / layout header rejects as corrupt or
    // stale; a flip anywhere else trips the checksum. Never OK, never a
    // partial import, never a crash.
    EXPECT_FALSE(status.ok()) << "bit flip at byte " << at << " was accepted";
    EXPECT_EQ(target.Export().size(), 0u);
    EXPECT_EQ(target_store.stats().entries, 0u);
  }
}

TEST(SnapshotTest, StaleFormatAndResourceLayoutAreFailedPrecondition) {
  TempPath file("stale");
  TaskTimeMemo memo;
  memo.Import(SyntheticEntries());
  PrefixCheckpointStore store;
  ASSERT_TRUE(SaveWarmSnapshot(file.path, memo, store, nullptr).ok());
  const std::string full = ReadFile(file.path);

  // Format version lives at offset 8, resource count at offset 12 (header
  // layout documented in model/snapshot.h).
  std::string future = full;
  future[8] = static_cast<char>(future[8] + 1);
  WriteFile(file.path, future);
  TaskTimeMemo target;
  PrefixCheckpointStore target_store;
  EXPECT_EQ(
      LoadWarmSnapshot(file.path, &target, &target_store, nullptr).code(),
      ErrorCode::kFailedPrecondition);

  std::string other_layout = full;
  other_layout[12] = static_cast<char>(other_layout[12] + 1);
  WriteFile(file.path, other_layout);
  EXPECT_EQ(
      LoadWarmSnapshot(file.path, &target, &target_store, nullptr).code(),
      ErrorCode::kFailedPrecondition);
}

TEST(SnapshotTest, TrailingBytesAreRejected) {
  TempPath file("trailing");
  TaskTimeMemo memo;
  memo.Import(SyntheticEntries());
  PrefixCheckpointStore store;
  ASSERT_TRUE(SaveWarmSnapshot(file.path, memo, store, nullptr).ok());
  WriteFile(file.path, ReadFile(file.path) + "x");
  TaskTimeMemo target;
  PrefixCheckpointStore target_store;
  const Status status =
      LoadWarmSnapshot(file.path, &target, &target_store, nullptr);
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(target.Export().size(), 0u);
}

TEST(SnapshotTest, ImportIntoWarmStoresIsFirstWins) {
  TempPath file("firstwins");
  TaskTimeMemo memo;
  memo.Import(SyntheticEntries());
  PrefixCheckpointStore store;
  ASSERT_TRUE(SaveWarmSnapshot(file.path, memo, store, nullptr).ok());

  // The target already knows one of the keys with a different value; the
  // loaded entry must not clobber it.
  TaskTimeMemo target;
  TaskTimeMemo::ExportedEntry mine;
  mine.key = "cluster|wc/map|128";
  mine.time = Duration::Seconds(42.0);
  mine.has_time = true;
  target.Import({mine});
  PrefixCheckpointStore target_store;
  ASSERT_TRUE(LoadWarmSnapshot(file.path, &target, &target_store, nullptr).ok());

  bool found = false;
  for (const auto& entry : target.Export()) {
    if (entry.key == mine.key) {
      found = true;
      EXPECT_EQ(entry.time.seconds(), 42.0);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(target.Export().size(), 3u);
}

}  // namespace
}  // namespace dagperf
