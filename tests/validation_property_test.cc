// Property: every workload the library ships validates clean through the
// firewall, and survives a Save -> Load -> validate round-trip — i.e. the
// validators reject only genuinely malformed inputs, and the JSON codec
// neither loses nor corrupts any field the validators inspect.

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dag/spec_io.h"
#include "dag/validate.h"
#include "workloads/hibench.h"
#include "workloads/micro.h"
#include "workloads/suite.h"
#include "workloads/tpch.h"
#include "workloads/web_analytics.h"

namespace dagperf {
namespace {

std::vector<DagWorkflow> BuiltInFlows() {
  std::vector<DagWorkflow> flows;
  const Result<std::vector<NamedFlow>> suite = TableThreeSuite(0.1);
  EXPECT_TRUE(suite.ok());
  if (suite.ok()) {
    for (const NamedFlow& nf : *suite) flows.push_back(nf.flow);
  }
  const auto add = [&](Result<DagWorkflow> flow) {
    EXPECT_TRUE(flow.ok()) << flow.status().ToString();
    if (flow.ok()) flows.push_back(std::move(flow).value());
  };
  add(WebAnalyticsFlow(Bytes::FromGB(50)));
  add(KMeansFlow(Bytes::FromGB(20), 2));
  add(PageRankFlow(Bytes::FromGB(20), 2));
  for (int query : {1, 2, 3, 4}) add(TpchQueryFlow(query, Bytes::FromGB(40)));
  for (const JobSpec& spec :
       {WordCountSpec(Bytes::FromGB(25)), TsSpec(Bytes::FromGB(25)),
        TscSpec(Bytes::FromGB(25)), Ts2rSpec(Bytes::FromGB(25)),
        Ts3rSpec(Bytes::FromGB(25))}) {
    DagBuilder builder(spec.name);
    builder.AddJob(spec);
    add(std::move(builder).Build());
  }
  return flows;
}

TEST(ValidationProperty, EveryBuiltInWorkloadValidatesClean) {
  const std::vector<DagWorkflow> flows = BuiltInFlows();
  ASSERT_FALSE(flows.empty());
  for (const DagWorkflow& flow : flows) {
    const ValidationReport report = ValidateWorkflow(flow);
    EXPECT_TRUE(report.ok()) << report.ToString(flow.name());
  }
}

TEST(ValidationProperty, SaveLoadRoundTripValidatesClean) {
  const std::vector<DagWorkflow> flows = BuiltInFlows();
  ASSERT_FALSE(flows.empty());
  const std::string path = ::testing::TempDir() + "/roundtrip_flow.json";
  for (const DagWorkflow& flow : flows) {
    ASSERT_TRUE(SaveWorkflow(flow, path).ok()) << flow.name();
    const Result<DagWorkflow> loaded = LoadWorkflow(path);
    ASSERT_TRUE(loaded.ok()) << flow.name() << ": "
                             << loaded.status().ToString();
    const ValidationReport report = ValidateWorkflow(*loaded);
    EXPECT_TRUE(report.ok()) << report.ToString(flow.name());
    EXPECT_EQ(loaded->name(), flow.name());
    EXPECT_EQ(loaded->num_jobs(), flow.num_jobs());
  }
  std::remove(path.c_str());
}

TEST(ValidationProperty, SerialisedFormReparsesViaJson) {
  // WorkflowToJson output must be accepted by WorkflowFromJson directly
  // (the same property the fuzzer assumes when mutating valid corpus seeds).
  const std::vector<DagWorkflow> flows = BuiltInFlows();
  for (const DagWorkflow& flow : flows) {
    const Result<DagWorkflow> reparsed = WorkflowFromJson(WorkflowToJson(flow));
    EXPECT_TRUE(reparsed.ok())
        << flow.name() << ": " << reparsed.status().ToString();
  }
}

}  // namespace
}  // namespace dagperf
