#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/parallel.h"

// Parts of this file exercise the pre-0.8 submission API on purpose
// (deprecated shims must keep working until removal); silence the
// migration warnings the rest of the build is expected to emit.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace dagperf {
namespace {

/// Enables metrics for the test body and restores the previous state —
/// the flag is process-wide and other tests rely on the default (off).
class ScopedMetrics {
 public:
  ScopedMetrics() : was_enabled_(obs::MetricsEnabled()) {
    obs::SetMetricsEnabled(true);
  }
  ~ScopedMetrics() { obs::SetMetricsEnabled(was_enabled_); }

 private:
  bool was_enabled_;
};

TEST(ObsMetricsTest, DisabledRecordingIsANoOp) {
  obs::Counter counter;
  obs::Gauge gauge;
  obs::Histogram histogram;
  ASSERT_FALSE(obs::MetricsEnabled());
  counter.Add(7);
  gauge.Set(3.5);
  histogram.Record(1.0);
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(gauge.value(), 0.0);
  EXPECT_EQ(histogram.Snap().count, 0u);
}

TEST(ObsMetricsTest, HandlesRegisteredWhileDisabledGoLiveOnEnable) {
  obs::Counter& counter =
      obs::MetricsRegistry::Default().GetCounter("test.pre_registered");
  counter.Add(1);  // Dropped: disabled.
  EXPECT_EQ(counter.value(), 0u);
  {
    ScopedMetrics on;
    counter.Add(2);
  }
  EXPECT_EQ(counter.value(), 2u);
  counter.Reset();
}

TEST(ObsMetricsTest, HistogramBucketBoundaries) {
  EXPECT_EQ(obs::Histogram::BucketIndex(0.0), 0);
  EXPECT_EQ(obs::Histogram::BucketIndex(-5.0), 0);
  EXPECT_EQ(obs::Histogram::BucketIndex(1.0), obs::Histogram::kZeroBucket);
  EXPECT_EQ(obs::Histogram::BucketIndex(2.0), obs::Histogram::kZeroBucket + 1);
  EXPECT_EQ(obs::Histogram::BucketIndex(0.5), obs::Histogram::kZeroBucket - 1);
  EXPECT_EQ(obs::Histogram::BucketIndex(1e300), obs::Histogram::kBuckets - 1);
  EXPECT_DOUBLE_EQ(obs::Histogram::BucketLowerBound(obs::Histogram::kZeroBucket),
                   1.0);
  // Every finite positive value lands in the bucket covering it.
  for (double v : {1e-6, 0.02, 0.9, 1.0, 3.7, 1000.0, 1e9}) {
    const int i = obs::Histogram::BucketIndex(v);
    EXPECT_GE(v, obs::Histogram::BucketLowerBound(i)) << v;
    if (i + 1 < obs::Histogram::kBuckets) {
      EXPECT_LT(v, obs::Histogram::BucketLowerBound(i + 1)) << v;
    }
  }
}

TEST(ObsMetricsTest, HistogramQuantileIsWithinBucketCoveringTheMass) {
  ScopedMetrics on;
  obs::Histogram histogram;
  for (int i = 0; i < 100; ++i) histogram.Record(10.0);
  const obs::Histogram::Snapshot snap = histogram.Snap();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_DOUBLE_EQ(snap.sum, 1000.0);
  const double p50 = snap.Quantile(0.5);
  // The geometric-midpoint estimate stays within the covering bucket.
  EXPECT_GE(p50, 8.0);
  EXPECT_LE(p50, 16.0);
}

// The TSan-targeted hammer: many pool threads pounding one counter and one
// histogram. Counters must be exact and histogram totals conserved (count ==
// records, sum == sum of recorded values, bucket counts sum to count).
TEST(ObsMetricsTest, ConcurrentRecordingConservesTotals) {
  ScopedMetrics on;
  obs::Counter& counter =
      obs::MetricsRegistry::Default().GetCounter("test.hammer_counter");
  obs::Histogram& histogram =
      obs::MetricsRegistry::Default().GetHistogram("test.hammer_histogram");
  counter.Reset();
  histogram.Reset();

  constexpr std::int64_t kIterations = 20000;
  ThreadPool pool(8);
  ParallelFor(
      0, kIterations,
      [&](std::int64_t i) {
        counter.Add(1);
        // Values 1, 2 and 4 are exactly representable, so the atomic
        // double sum must come out exact whatever the interleaving.
        histogram.Record(static_cast<double>(1 << (i % 3)));
      },
      &pool);

  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kIterations));
  const obs::Histogram::Snapshot snap = histogram.Snap();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kIterations));
  double expected_sum = 0.0;
  for (std::int64_t i = 0; i < kIterations; ++i) expected_sum += 1 << (i % 3);
  EXPECT_DOUBLE_EQ(snap.sum, expected_sum);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
}

// Concurrent first-time registration of the same name must yield one metric.
TEST(ObsMetricsTest, ConcurrentRegistrationYieldsOneHandle) {
  ScopedMetrics on;
  std::vector<obs::Counter*> handles(64, nullptr);
  ThreadPool pool(8);
  ParallelFor(
      0, static_cast<std::int64_t>(handles.size()),
      [&](std::int64_t i) {
        obs::Counter& c =
            obs::MetricsRegistry::Default().GetCounter("test.race_registration");
        c.Add(1);
        handles[static_cast<size_t>(i)] = &c;
      },
      &pool);
  for (const obs::Counter* h : handles) EXPECT_EQ(h, handles[0]);
  EXPECT_EQ(handles[0]->value(), handles.size());
  handles[0]->Reset();
}

TEST(ObsMetricsTest, ThreadPoolInstrumentationCountsTasks) {
  ScopedMetrics on;
  obs::Counter& executed =
      obs::MetricsRegistry::Default().GetCounter("pool.tasks_executed");
  const std::uint64_t before = executed.value();
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { ran.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(ran.load(), 100);
  EXPECT_EQ(executed.value() - before, 100u);
}

TEST(ObsMetricsTest, RegistryJsonParsesAndCarriesValues) {
  ScopedMetrics on;
  obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter("test.json");
  counter.Reset();
  counter.Add(5);
  obs::MetricsRegistry::Default().GetGauge("test.json_gauge").Set(2.25);
  obs::MetricsRegistry::Default().GetHistogram("test.json_hist").Record(3.0);

  const Result<Json> doc = Json::Parse(obs::MetricsRegistry::Default().ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_TRUE(doc->GetBool("metrics_enabled", false));
  const Json* counters = doc->Get("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->GetNumber("test.json", -1), 5);
  const Json* gauges = doc->Get("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->GetNumber("test.json_gauge", -1), 2.25);
  const Json* histograms = doc->Get("histograms");
  ASSERT_NE(histograms, nullptr);
  const Json* hist = histograms->Get("test.json_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_GE(hist->GetNumber("count", 0), 1);
  counter.Reset();
}

TEST(ObsMetricsTest, ResetAllZeroesEverythingButKeepsHandles) {
  ScopedMetrics on;
  obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter("test.reset");
  counter.Add(3);
  obs::MetricsRegistry::Default().ResetAll();
  EXPECT_EQ(counter.value(), 0u);
  counter.Add(1);
  EXPECT_EQ(counter.value(), 1u);
  counter.Reset();
}

}  // namespace
}  // namespace dagperf
