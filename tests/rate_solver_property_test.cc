// Property-based tests of the max-min fair-share rate solver: invariants
// that must hold for arbitrary flow mixes, swept over seeded random
// populations via parameterized gtest.

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/rate_solver.h"
#include "common/rng.h"

namespace dagperf {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

ResourceVector PaperCaps() {
  ResourceVector caps;
  caps[Resource::kDiskRead] = 240e6;
  caps[Resource::kDiskWrite] = 240e6;
  caps[Resource::kNetwork] = 125e6;
  caps[Resource::kCpu] = 6;
  return caps;
}

std::vector<Flow> RandomFlows(uint64_t seed, int count) {
  Rng rng(seed);
  std::vector<Flow> flows;
  for (int i = 0; i < count; ++i) {
    Flow f;
    f.population = rng.Uniform(0.5, 8.0);
    // Each flow demands a random subset of resources.
    if (rng.NextDouble() < 0.7) f.demand[Resource::kDiskRead] = rng.Uniform(1e6, 5e8);
    if (rng.NextDouble() < 0.7) f.demand[Resource::kDiskWrite] = rng.Uniform(1e6, 5e8);
    if (rng.NextDouble() < 0.7) f.demand[Resource::kNetwork] = rng.Uniform(1e6, 5e8);
    if (rng.NextDouble() < 0.7) f.demand[Resource::kCpu] = rng.Uniform(0.1, 20.0);
    f.per_task_cap[Resource::kCpu] = 1.0;
    // Ensure at least one demand so the flow is non-trivial.
    if (f.demand == ResourceVector{}) f.demand[Resource::kNetwork] = 1e7;
    flows.push_back(f);
  }
  return flows;
}

class RateSolverPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RateSolverPropertyTest, CapacityNeverExceeded) {
  const auto flows = RandomFlows(GetParam(), 1 + GetParam() % 9);
  const auto rates = SolveRates(PaperCaps(), flows);
  const ResourceVector util = SolutionUtilization(PaperCaps(), flows, rates);
  for (Resource r : kAllResources) {
    EXPECT_LE(util[r], 1.0 + 1e-6) << ResourceName(r) << " seed=" << GetParam();
  }
}

TEST_P(RateSolverPropertyTest, AllRatesPositiveAndFinite) {
  const auto flows = RandomFlows(GetParam(), 1 + GetParam() % 9);
  const auto rates = SolveRates(PaperCaps(), flows);
  for (const auto& r : rates) {
    EXPECT_GT(r.progress_rate, 0.0);
    EXPECT_TRUE(std::isfinite(r.progress_rate));
  }
}

TEST_P(RateSolverPropertyTest, SomeResourceSaturatedOrAllCapped) {
  // Pareto optimality: either a resource is fully used, or every flow is
  // pinned at its own per-task cap.
  const auto flows = RandomFlows(GetParam(), 2 + GetParam() % 6);
  const auto rates = SolveRates(PaperCaps(), flows);
  const ResourceVector util = SolutionUtilization(PaperCaps(), flows, rates);
  double max_util = 0;
  for (Resource r : kAllResources) max_util = std::max(max_util, util[r]);
  if (max_util < 1.0 - 1e-6) {
    for (size_t f = 0; f < flows.size(); ++f) {
      const double cpu_d = flows[f].demand[Resource::kCpu];
      ASSERT_GT(cpu_d, 0.0) << "uncapped flow below saturation";
      EXPECT_NEAR(rates[f].progress_rate * cpu_d, 1.0, 1e-6)
          << "flow " << f << " not at its CPU cap though nothing is saturated";
    }
  }
}

TEST_P(RateSolverPropertyTest, ScaleInvariance) {
  // Scaling all demands by k (per-task bandwidth caps unchanged) scales all
  // progress rates by exactly 1/k: the same bandwidth allocation moves k
  // times more slowly through each task.
  const auto flows = RandomFlows(GetParam(), 2 + GetParam() % 5);
  std::vector<Flow> scaled = flows;
  const double k = 3.7;
  for (auto& f : scaled) {
    for (Resource r : kAllResources) f.demand[r] *= k;
  }
  const auto base = SolveRates(PaperCaps(), flows);
  const auto after = SolveRates(PaperCaps(), scaled);
  for (size_t f = 0; f < flows.size(); ++f) {
    EXPECT_NEAR(after[f].progress_rate * k, base[f].progress_rate,
                1e-6 * base[f].progress_rate);
  }
}

TEST_P(RateSolverPropertyTest, AddingFlowNeverSpeedsSingleResourcePeers) {
  // With multiple resources, adding a flow CAN speed up a third party (it
  // slows a competitor on one device, freeing another) — so monotonicity is
  // only guaranteed when all flows contend on one resource.
  Rng rng(GetParam() * 7919);
  std::vector<Flow> flows;
  const int count = 2 + GetParam() % 5;
  for (int i = 0; i < count; ++i) {
    Flow f;
    f.population = rng.Uniform(0.5, 6.0);
    f.demand[Resource::kNetwork] = rng.Uniform(1e6, 5e8);
    flows.push_back(f);
  }
  auto extended = flows;
  Flow extra;
  extra.population = 3.0;
  extra.demand[Resource::kNetwork] = 5e7;
  extended.push_back(extra);
  const auto base = SolveRates(PaperCaps(), flows);
  const auto after = SolveRates(PaperCaps(), extended);
  for (size_t f = 0; f < flows.size(); ++f) {
    EXPECT_LE(after[f].progress_rate, base[f].progress_rate * (1.0 + 1e-9));
  }
}

TEST_P(RateSolverPropertyTest, MoreCapacityNeverSlower) {
  const auto flows = RandomFlows(GetParam(), 2 + GetParam() % 5);
  ResourceVector bigger = PaperCaps();
  for (Resource r : kAllResources) bigger[r] *= 2.0;
  const auto base = SolveRates(PaperCaps(), flows);
  const auto after = SolveRates(bigger, flows);
  for (size_t f = 0; f < flows.size(); ++f) {
    EXPECT_GE(after[f].progress_rate, base[f].progress_rate * (1.0 - 1e-9));
  }
}

TEST_P(RateSolverPropertyTest, OfferedShareCoversConsumption) {
  // A flow's consumption on each resource never exceeds what it was offered,
  // and the bottleneck is consumed fully.
  const auto flows = RandomFlows(GetParam(), 2 + GetParam() % 6);
  const auto rates = SolveRates(PaperCaps(), flows);
  for (size_t f = 0; f < flows.size(); ++f) {
    for (Resource r : kAllResources) {
      const double d = flows[f].demand[r];
      if (d <= 0) continue;
      const double consumed = d * rates[f].progress_rate;
      EXPECT_LE(consumed, rates[f].offered[r] * (1.0 + 1e-6))
          << ResourceName(r) << " flow " << f;
    }
    if (rates[f].bottleneck >= 0) {
      const Resource b = static_cast<Resource>(rates[f].bottleneck);
      if (flows[f].demand[b] > 0 && rates[f].offered[b] > 0) {
        EXPECT_NEAR(flows[f].demand[b] * rates[f].progress_rate,
                    rates[f].offered[b], 1e-6 * rates[f].offered[b]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RateSolverPropertyTest,
                         ::testing::Range<uint64_t>(1, 33));

TEST(RateSolverEdgeTest, EmptyFlowsIsEmpty) {
  EXPECT_TRUE(SolveRates(PaperCaps(), {}).empty());
}

TEST(RateSolverEdgeTest, HugePopulationStillPositive) {
  Flow f;
  f.population = 1e6;
  f.demand[Resource::kNetwork] = 1e6;
  const auto rates = SolveRates(PaperCaps(), {f});
  EXPECT_GT(rates[0].progress_rate, 0.0);
  EXPECT_NEAR(rates[0].progress_rate, 125e6 / 1e6 / 1e6, 1e-12);
}

TEST(RateSolverEdgeTest, TinyDemandIsAlmostInstant) {
  Flow f;
  f.population = 1;
  f.demand[Resource::kDiskRead] = 1e-6;
  const auto rates = SolveRates(PaperCaps(), {f});
  EXPECT_GT(rates[0].progress_rate, 1e12);
  EXPECT_NE(rates[0].progress_rate, kInf);
}

}  // namespace
}  // namespace dagperf
