#include "common/table.h"

#include <gtest/gtest.h>

namespace dagperf {
namespace {

TEST(TextTableTest, RendersHeaderAndRows) {
  TextTable t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  // Separator line present.
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TextTableTest, ColumnsAligned) {
  TextTable t({"a", "b"});
  t.AddRow({"xxxx", "1"});
  t.AddRow({"y", "2"});
  const std::string out = t.ToString();
  // Both value cells start at the same column.
  size_t line_start = 0;
  std::vector<std::string> lines;
  for (size_t i = 0; i <= out.size(); ++i) {
    if (i == out.size() || out[i] == '\n') {
      lines.push_back(out.substr(line_start, i - line_start));
      line_start = i + 1;
    }
  }
  ASSERT_GE(lines.size(), 4u);
  EXPECT_EQ(lines[2].find('1'), lines[3].find('2'));
}

TEST(TextTableTest, ShortRowsPadded) {
  TextTable t({"a", "b", "c"});
  t.AddRow({"x"});
  EXPECT_NO_FATAL_FAILURE(t.ToString());
}

TEST(TextTableTest, CellFormatsDoubles) {
  EXPECT_EQ(TextTable::Cell(0.98765, 2), "0.99");
  EXPECT_EQ(TextTable::Cell(1.0, 4), "1.0000");
}

TEST(TextTableDeathTest, OverlongRowAborts) {
  TextTable t({"only"});
  EXPECT_DEATH(t.AddRow({"a", "b"}), "CHECK");
}

}  // namespace
}  // namespace dagperf
