#include "workload/job_profile.h"

#include <gtest/gtest.h>

namespace dagperf {
namespace {

JobSpec BaseSpec() {
  JobSpec spec;
  spec.name = "test-job";
  spec.input = Bytes::FromGB(10);
  spec.split_size = Bytes::FromMB(250);
  spec.num_reduce_tasks = 20;
  spec.map_selectivity = 1.0;
  spec.reduce_selectivity = 1.0;
  spec.compress_map_output = false;
  spec.replicas = 1;
  spec.remote_read_fraction = 0.0;
  spec.shuffle_cache_hit = 1.0;
  spec.reduce_skew_cv = 0.0;
  return spec;
}

TEST(CompileJobTest, MapTaskCountFromSplitSize) {
  const JobProfile p = CompileJob(BaseSpec()).value();
  EXPECT_EQ(p.map.num_tasks, 40);  // 10 GB / 250 MB.
  EXPECT_EQ(p.map.kind, StageKind::kMap);
  ASSERT_TRUE(p.has_reduce());
  EXPECT_EQ(p.reduce->num_tasks, 20);
  EXPECT_EQ(p.reduce->kind, StageKind::kReduce);
}

TEST(CompileJobTest, MapReadDemandEqualsSplit) {
  const JobProfile p = CompileJob(BaseSpec()).value();
  const auto& read_map = p.map.substages.front();
  EXPECT_EQ(read_map.name, "read+map");
  EXPECT_DOUBLE_EQ(read_map.demand[Resource::kDiskRead], Bytes::FromMB(250).value());
  EXPECT_DOUBLE_EQ(read_map.demand[Resource::kNetwork], 0.0);
  // 250 MB at 100 MB/s per core = 2.5 core-seconds.
  EXPECT_NEAR(read_map.demand[Resource::kCpu], 2.5, 1e-9);
}

TEST(CompileJobTest, RemoteReadFractionMovesBytesToNetwork) {
  JobSpec spec = BaseSpec();
  spec.remote_read_fraction = 0.2;
  const JobProfile p = CompileJob(spec).value();
  const auto& read_map = p.map.substages.front();
  EXPECT_DOUBLE_EQ(read_map.demand[Resource::kDiskRead],
                   Bytes::FromMB(200).value());
  EXPECT_DOUBLE_EQ(read_map.demand[Resource::kNetwork], Bytes::FromMB(50).value());
}

TEST(CompileJobTest, CompressionShrinksSpillAndAddsCpu) {
  JobSpec raw = BaseSpec();
  JobSpec compressed = BaseSpec();
  compressed.compress_map_output = true;
  compressed.compression_ratio = 0.3;
  const JobProfile p_raw = CompileJob(raw).value();
  const JobProfile p_c = CompileJob(compressed).value();
  const auto find_spill = [](const JobProfile& p) {
    for (const auto& ss : p.map.substages) {
      if (ss.name == "spill") return ss;
    }
    ADD_FAILURE() << "no spill sub-stage";
    return p.map.substages.front();
  };
  const auto spill_raw = find_spill(p_raw);
  const auto spill_c = find_spill(p_c);
  EXPECT_NEAR(spill_c.demand[Resource::kDiskWrite],
              0.3 * spill_raw.demand[Resource::kDiskWrite], 1e-6);
  EXPECT_GT(spill_c.demand[Resource::kCpu], spill_raw.demand[Resource::kCpu]);
}

TEST(CompileJobTest, LargeMapOutputPaysMergePass) {
  JobSpec spec = BaseSpec();
  spec.sort_buffer = Bytes::FromMB(100);  // Split output 250 MB > buffer.
  const JobProfile p = CompileJob(spec).value();
  bool has_merge = false;
  for (const auto& ss : p.map.substages) has_merge = has_merge || ss.name == "merge";
  EXPECT_TRUE(has_merge);

  spec.sort_buffer = Bytes::FromGB(1);
  const JobProfile p2 = CompileJob(spec).value();
  for (const auto& ss : p2.map.substages) EXPECT_NE(ss.name, "merge");
}

TEST(CompileJobTest, ReducePartitionDerivedFromMapOutput) {
  const JobProfile p = CompileJob(BaseSpec()).value();
  // 10 GB raw map output over 20 reducers = 500 MB per partition.
  const auto& shuffle = p.reduce->substages.front();
  EXPECT_EQ(shuffle.name, "shuffle");
  EXPECT_DOUBLE_EQ(shuffle.demand[Resource::kNetwork], Bytes::FromMB(500).value());
  // Cache hit 1.0: no source disk reads.
  EXPECT_DOUBLE_EQ(shuffle.demand[Resource::kDiskRead], 0.0);
  // Materialise reduce input on disk.
  EXPECT_DOUBLE_EQ(shuffle.demand[Resource::kDiskWrite], Bytes::FromMB(500).value());
}

TEST(CompileJobTest, ReplicationMultipliesWriteAndNetwork) {
  JobSpec spec = BaseSpec();
  spec.replicas = 3;
  const JobProfile p = CompileJob(spec).value();
  const auto& apply = p.reduce->substages.back();
  EXPECT_EQ(apply.name, "reduce+write");
  // Output per reducer = 500 MB; 3 replicas -> 1500 MB disk, 1000 MB network.
  EXPECT_DOUBLE_EQ(apply.demand[Resource::kDiskWrite], Bytes::FromMB(1500).value());
  EXPECT_DOUBLE_EQ(apply.demand[Resource::kNetwork], Bytes::FromMB(1000).value());
}

TEST(CompileJobTest, SingleReplicaHasNoReplicationTraffic) {
  const JobProfile p = CompileJob(BaseSpec()).value();
  const auto& apply = p.reduce->substages.back();
  EXPECT_DOUBLE_EQ(apply.demand[Resource::kNetwork], 0.0);
}

TEST(CompileJobTest, MapOnlyJobWritesHdfsDirectly) {
  JobSpec spec = BaseSpec();
  spec.num_reduce_tasks = 0;
  spec.replicas = 3;
  spec.map_selectivity = 0.5;
  const JobProfile p = CompileJob(spec).value();
  EXPECT_FALSE(p.has_reduce());
  ASSERT_EQ(p.map.substages.size(), 2u);
  const auto& write = p.map.substages.back();
  EXPECT_EQ(write.name, "hdfs-write");
  // 125 MB output per 250 MB split, 3 replicas.
  EXPECT_DOUBLE_EQ(write.demand[Resource::kDiskWrite], Bytes::FromMB(375).value());
  EXPECT_DOUBLE_EQ(write.demand[Resource::kNetwork], Bytes::FromMB(250).value());
}

TEST(CompileJobTest, AutoReducersScaleWithShuffleVolume) {
  JobSpec spec = BaseSpec();
  spec.num_reduce_tasks = kAutoReducers;
  spec.input = Bytes::FromGB(50);
  spec.map_selectivity = 1.0;
  EXPECT_EQ(ResolveReducers(spec), 50);  // 1 reducer per GB of raw output.
  spec.map_selectivity = 0.01;
  EXPECT_EQ(ResolveReducers(spec), 1);
}

TEST(CompileJobTest, SkewPropagatesToReduceStage) {
  JobSpec spec = BaseSpec();
  spec.reduce_skew_cv = 0.25;
  const JobProfile p = CompileJob(spec).value();
  EXPECT_DOUBLE_EQ(p.reduce->task_size_cv, 0.25);
  EXPECT_DOUBLE_EQ(p.map.task_size_cv, 0.0);
}

TEST(CompileJobTest, TotalDemandSumsSubStages) {
  const JobProfile p = CompileJob(BaseSpec()).value();
  const ResourceVector total = p.map.TotalDemand();
  ResourceVector manual;
  for (const auto& ss : p.map.substages) manual = manual + ss.demand;
  EXPECT_EQ(total, manual);
}

TEST(CompileJobTest, StageAccessor) {
  const JobProfile p = CompileJob(BaseSpec()).value();
  EXPECT_EQ(&p.stage(StageKind::kMap), &p.map);
  EXPECT_EQ(&p.stage(StageKind::kReduce), &*p.reduce);
}

TEST(CompileJobTest, RejectsInvalidSpecs) {
  JobSpec spec = BaseSpec();
  spec.input = Bytes(0);
  EXPECT_FALSE(CompileJob(spec).ok());

  spec = BaseSpec();
  spec.compression_ratio = 0.0;
  EXPECT_FALSE(CompileJob(spec).ok());

  spec = BaseSpec();
  spec.replicas = 0;
  EXPECT_FALSE(CompileJob(spec).ok());

  spec = BaseSpec();
  spec.remote_read_fraction = 1.5;
  EXPECT_FALSE(CompileJob(spec).ok());

  spec = BaseSpec();
  spec.map_compute = Rate(0);
  EXPECT_FALSE(CompileJob(spec).ok());

  spec = BaseSpec();
  spec.map_selectivity = -0.1;
  EXPECT_FALSE(CompileJob(spec).ok());
}

TEST(CompileJobTest, VolumeHelpers) {
  JobSpec spec = BaseSpec();
  spec.map_selectivity = 0.2;
  spec.reduce_selectivity = 0.5;
  EXPECT_DOUBLE_EQ(RawMapOutput(spec).ToGB(), 2.0);
  EXPECT_DOUBLE_EQ(JobOutput(spec).ToGB(), 1.0);
}

}  // namespace
}  // namespace dagperf
