#include "scheduler/drf.h"

#include <gtest/gtest.h>

namespace dagperf {
namespace {

DrfAllocator PaperAllocator(int max_tasks_per_node = 0) {
  SchedulerConfig config;
  config.vcores_per_core = 2.0;
  config.max_tasks_per_node = max_tasks_per_node;
  return DrfAllocator(ClusterSpec::PaperCluster(), config);
}

TEST(DrfTest, NodeSlotsLimitedByVcores) {
  // 6 cores * 2 vcores/core = 12 vcores, 1 vcore per task; memory allows 16.
  const DrfAllocator alloc = PaperAllocator();
  SlotDemand demand;
  demand.vcores = 1.0;
  demand.memory = Bytes::FromGB(2);
  EXPECT_EQ(alloc.NodeSlots(demand), 12);
  EXPECT_EQ(alloc.ClusterSlots(demand), 132);
}

TEST(DrfTest, NodeSlotsLimitedByMemory) {
  const DrfAllocator alloc = PaperAllocator();
  SlotDemand demand;
  demand.vcores = 1.0;
  demand.memory = Bytes::FromGB(8);  // 32 GB / 8 GB = 4 per node.
  EXPECT_EQ(alloc.NodeSlots(demand), 4);
}

TEST(DrfTest, ExplicitPerNodeCap) {
  const DrfAllocator alloc = PaperAllocator(/*max_tasks_per_node=*/3);
  SlotDemand demand;
  EXPECT_EQ(alloc.NodeSlots(demand), 3);
  EXPECT_EQ(alloc.ClusterSlots(demand), 33);
}

TEST(DrfTest, SingleJobGetsWholeCluster) {
  const DrfAllocator alloc = PaperAllocator();
  StageDemand stage;
  stage.remaining_tasks = 1000;
  const std::vector<int> granted = alloc.Allocate({stage});
  EXPECT_EQ(granted[0], 132);
}

TEST(DrfTest, BacklogCapsAllocation) {
  const DrfAllocator alloc = PaperAllocator();
  StageDemand stage;
  stage.remaining_tasks = 7;
  EXPECT_EQ(alloc.Allocate({stage})[0], 7);
}

TEST(DrfTest, EqualDemandsSplitEqually) {
  const DrfAllocator alloc = PaperAllocator();
  StageDemand a;
  a.remaining_tasks = 1000;
  StageDemand b;
  b.remaining_tasks = 1000;
  const std::vector<int> granted = alloc.Allocate({a, b});
  EXPECT_EQ(granted[0], 66);
  EXPECT_EQ(granted[1], 66);
}

TEST(DrfTest, SmallJobSurplusGoesToBigJob) {
  const DrfAllocator alloc = PaperAllocator();
  StageDemand small;
  small.remaining_tasks = 10;
  StageDemand big;
  big.remaining_tasks = 1000;
  const std::vector<int> granted = alloc.Allocate({small, big});
  EXPECT_EQ(granted[0], 10);
  EXPECT_EQ(granted[1], 122);
}

TEST(DrfTest, DominantShareEqualisedForAsymmetricDemands) {
  // Job A is memory-heavy (dominant = memory); job B is vcore-heavy
  // (dominant = vcores). DRF should equalise dominant shares.
  const DrfAllocator alloc = PaperAllocator();
  StageDemand a;
  a.slot.vcores = 1.0;
  a.slot.memory = Bytes::FromGB(4);
  a.remaining_tasks = 10000;
  StageDemand b;
  b.slot.vcores = 2.0;
  b.slot.memory = Bytes::FromGB(1);
  b.remaining_tasks = 10000;
  const std::vector<int> granted = alloc.Allocate({a, b});
  const double total_vcores = 11 * 12.0;
  const double total_mem = 11 * 32.0;  // In GB.
  const double share_a =
      std::max(granted[0] * 1.0 / total_vcores, granted[0] * 4.0 / total_mem);
  const double share_b =
      std::max(granted[1] * 2.0 / total_vcores, granted[1] * 1.0 / total_mem);
  EXPECT_NEAR(share_a, share_b, 0.03);
  // Capacity respected.
  EXPECT_LE(granted[0] * 1.0 + granted[1] * 2.0, total_vcores + 1e-9);
  EXPECT_LE(granted[0] * 4.0 + granted[1] * 1.0, total_mem + 1e-9);
}

TEST(DrfTest, ZeroBacklogReceivesNothing) {
  const DrfAllocator alloc = PaperAllocator();
  StageDemand idle;
  idle.remaining_tasks = 0;
  StageDemand busy;
  busy.remaining_tasks = 50;
  const std::vector<int> granted = alloc.Allocate({idle, busy});
  EXPECT_EQ(granted[0], 0);
  EXPECT_EQ(granted[1], 50);
}

TEST(DrfTest, EmptyRequestListIsEmptyAllocation) {
  const DrfAllocator alloc = PaperAllocator();
  EXPECT_TRUE(alloc.Allocate({}).empty());
}

TEST(DrfTest, ThreeWaySplit) {
  const DrfAllocator alloc = PaperAllocator();
  std::vector<StageDemand> stages(3);
  for (auto& s : stages) s.remaining_tasks = 1000;
  const std::vector<int> granted = alloc.Allocate(stages);
  EXPECT_EQ(granted[0] + granted[1] + granted[2], 132);
  for (int g : granted) EXPECT_EQ(g, 44);
}

TEST(DrfTest, PerNodeCapAppliesAcrossJobs) {
  const DrfAllocator alloc = PaperAllocator(/*max_tasks_per_node=*/2);
  StageDemand a;
  a.remaining_tasks = 100;
  StageDemand b;
  b.remaining_tasks = 100;
  const std::vector<int> granted = alloc.Allocate({a, b});
  EXPECT_EQ(granted[0] + granted[1], 22);
}

}  // namespace
}  // namespace dagperf
