#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <vector>

// Parts of this file exercise the pre-0.8 submission API on purpose
// (deprecated shims must keep working until removal); silence the
// migration warnings the rest of the build is expected to emit.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace dagperf {
namespace {

// --- ThreadPool regression suite (locked down before the pool was promoted
// --- from src/engine/ to src/common/).

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, TasksCanSubmitTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  });
  pool.Wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolStressTest, DeepTaskRecursionCompletes) {
  // Tasks submitting tasks submitting tasks: a chain deeper than the worker
  // count must still drain (workers never block on children).
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::function<void(int)> recurse = [&](int depth) {
    counter.fetch_add(1);
    if (depth > 0) pool.Submit([&recurse, depth] { recurse(depth - 1); });
  };
  pool.Submit([&recurse] { recurse(200); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 201);
}

TEST(ThreadPoolStressTest, ManyConcurrentWaiters) {
  // Several threads blocked in Wait() must all wake when the pool drains.
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 500; ++i) {
    pool.Submit([&done] { done.fetch_add(1); });
  }
  std::vector<std::thread> waiters;
  std::atomic<int> woke{0};
  for (int w = 0; w < 8; ++w) {
    waiters.emplace_back([&] {
      pool.Wait();
      EXPECT_EQ(done.load(), 500);
      woke.fetch_add(1);
    });
  }
  for (auto& t : waiters) t.join();
  EXPECT_EQ(woke.load(), 8);
}

TEST(ThreadPoolStressTest, DestructionDrainsQueuedWork) {
  // The destructor joins only after queued tasks ran: work submitted before
  // destruction is never dropped.
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 300; ++i) {
      pool.Submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(10));
        counter.fetch_add(1);
      });
    }
    // No Wait(): destruction races the queue.
  }
  EXPECT_EQ(counter.load(), 300);
}

TEST(ThreadPoolStressTest, SubmitWaitChurn) {
  // Interleaved submit/wait cycles from the owner while workers hammer the
  // queue — the pattern the engine's per-stage pools exercise.
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 40; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 40);
  }
}

// --- ParallelFor / ParallelMap.

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kN = 10000;
  std::vector<std::atomic<int>> counts(kN);
  ParallelFor(0, kN, [&](std::int64_t i) { counts[i].fetch_add(1); }, &pool);
  for (int i = 0; i < kN; ++i) EXPECT_EQ(counts[i].load(), 1) << i;
}

TEST(ParallelForTest, EmptyAndSingletonRanges) {
  ThreadPool pool(2);
  int calls = 0;
  ParallelFor(5, 5, [&](std::int64_t) { ++calls; }, &pool);
  EXPECT_EQ(calls, 0);
  std::atomic<int> one{0};
  ParallelFor(7, 8, [&](std::int64_t i) { one.fetch_add(static_cast<int>(i)); },
              &pool);
  EXPECT_EQ(one.load(), 7);
}

TEST(ParallelForTest, PropagatesFirstException) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      ParallelFor(
          0, 1000,
          [&](std::int64_t i) {
            if (i == 17) throw std::runtime_error("boom");
            ran.fetch_add(1);
          },
          &pool),
      std::runtime_error);
  // After the throw the remaining iterations are skipped, not wedged.
  EXPECT_LT(ran.load(), 1000);
}

TEST(ParallelForTest, NestedCallsDoNotDeadlock) {
  // An outer ParallelFor whose body runs inner ParallelFors on the same
  // pool: the caller-participates design keeps this deadlock-free even when
  // every worker is occupied.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  ParallelFor(
      0, 8,
      [&](std::int64_t) {
        ParallelFor(0, 8, [&](std::int64_t) { total.fetch_add(1); }, &pool);
      },
      &pool);
  EXPECT_EQ(total.load(), 64);
}

TEST(ParallelForTest, UsesDefaultPoolWhenUnspecified) {
  std::atomic<int> total{0};
  ParallelFor(0, 100, [&](std::int64_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 100);
  EXPECT_GE(DefaultPool().size(), 1);
}

TEST(ParallelMapTest, PreservesInputOrder) {
  ThreadPool pool(4);
  std::vector<int> items(1000);
  for (int i = 0; i < 1000; ++i) items[i] = i;
  const std::vector<int> out =
      ParallelMap(items, [](int x) { return 3 * x + 1; }, &pool);
  ASSERT_EQ(out.size(), items.size());
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(out[i], 3 * i + 1);
}

}  // namespace
}  // namespace dagperf
