#include "sim/trace_writer.h"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/simulator.h"
#include "workloads/micro.h"

namespace dagperf {
namespace {

DagWorkflow MakeFlow() {
  DagBuilder b("trace \"flow\"");  // Name needing JSON escaping.
  b.AddJob(TsSpec(Bytes::FromGB(2)));
  return std::move(b).Build().value();
}

SimResult MakeResult(const DagWorkflow& flow) {
  ClusterSpec cluster = ClusterSpec::PaperCluster();
  cluster.num_nodes = 2;
  return Simulator(cluster, SchedulerConfig{}, SimOptions{}).Run(flow).value();
}

struct Fixture {
  Fixture() : flow(MakeFlow()), result(MakeResult(flow)) {}
  DagWorkflow flow;
  SimResult result;
};

TEST(TraceWriterTest, JsonContainsAllSections) {
  Fixture fx;
  std::ostringstream out;
  WriteJson(fx.flow, fx.result, out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"workflow\""), std::string::npos);
  EXPECT_NE(json.find("\"makespan_s\""), std::string::npos);
  EXPECT_NE(json.find("\"stages\""), std::string::npos);
  EXPECT_NE(json.find("\"states\""), std::string::npos);
  EXPECT_NE(json.find("\"tasks\""), std::string::npos);
  // The quote in the workflow name is escaped.
  EXPECT_NE(json.find("trace \\\"flow\\\""), std::string::npos);
  // Balanced braces (crude structural check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(TraceWriterTest, CsvHasHeaderAndOneRowPerTask) {
  Fixture fx;
  std::ostringstream out;
  WriteTaskCsv(fx.flow, fx.result, out);
  const std::string csv = out.str();
  const size_t lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(lines, fx.result.tasks().size() + 1);  // Header + rows.
  EXPECT_EQ(csv.rfind("job,stage,task,node,start_s,end_s,duration_s,startup_s", 0),
            0u);
}

TEST(TraceWriterTest, ChromeTraceLanesNeverOverlap) {
  Fixture fx;
  std::ostringstream out;
  WriteChromeTrace(fx.flow, fx.result, out);
  const std::string trace = out.str();
  EXPECT_EQ(trace.front(), '[');
  // Parse back (pid, tid, ts, dur) tuples crudely and verify lane packing.
  struct Span {
    int pid;
    int tid;
    double ts;
    double dur;
  };
  std::vector<Span> spans;
  size_t pos = 0;
  while ((pos = trace.find("\"ts\": ", pos)) != std::string::npos) {
    Span s{};
    s.ts = std::stod(trace.substr(pos + 6));
    const size_t dur_pos = trace.find("\"dur\": ", pos);
    s.dur = std::stod(trace.substr(dur_pos + 7));
    const size_t pid_pos = trace.find("\"pid\": ", pos);
    s.pid = std::stoi(trace.substr(pid_pos + 7));
    const size_t tid_pos = trace.find("\"tid\": ", pos);
    s.tid = std::stoi(trace.substr(tid_pos + 7));
    spans.push_back(s);
    pos = tid_pos;
  }
  ASSERT_GT(spans.size(), fx.result.tasks().size());  // Tasks + state markers.
  for (size_t i = 0; i < spans.size(); ++i) {
    for (size_t j = i + 1; j < spans.size(); ++j) {
      if (spans[i].pid != spans[j].pid || spans[i].tid != spans[j].tid) continue;
      const double a0 = spans[i].ts;
      const double a1 = spans[i].ts + spans[i].dur;
      const double b0 = spans[j].ts;
      const double b1 = spans[j].ts + spans[j].dur;
      EXPECT_TRUE(a1 <= b0 + 1e-3 || b1 <= a0 + 1e-3)
          << "overlap in pid " << spans[i].pid << " tid " << spans[i].tid;
    }
  }
}

}  // namespace
}  // namespace dagperf
