// Parameterized invariant tests of the simulator across the full workload
// library: structural properties that must hold for any workload, plus
// preemption-specific behaviour.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "sim/simulator.h"
#include "workloads/hibench.h"
#include "workloads/micro.h"
#include "workloads/tpch.h"
#include "workloads/web_analytics.h"

namespace dagperf {
namespace {

ClusterSpec SmallPaperCluster() {
  ClusterSpec c = ClusterSpec::PaperCluster();
  c.num_nodes = 4;
  return c;
}

/// Builds one of the named library workflows at test scale.
DagWorkflow BuildFlow(const std::string& name) {
  const Bytes micro = Bytes::FromGB(8);
  if (name == "WC") {
    DagBuilder b(name);
    JobSpec spec = WordCountSpec(micro);
    spec.num_reduce_tasks = 24;
    b.AddJob(spec);
    return std::move(b).Build().value();
  }
  if (name == "TS") {
    DagBuilder b(name);
    b.AddJob(TsSpec(micro));
    return std::move(b).Build().value();
  }
  if (name == "TSC") {
    DagBuilder b(name);
    b.AddJob(TscSpec(micro));
    return std::move(b).Build().value();
  }
  if (name == "TS3R") {
    DagBuilder b(name);
    b.AddJob(Ts3rSpec(micro));
    return std::move(b).Build().value();
  }
  if (name == "KMeans") return KMeansFlow(micro, 2).value();
  if (name == "PageRank") return PageRankFlow(micro, 2).value();
  if (name == "WebAnalytics") return WebAnalyticsFlow(Bytes::FromGB(10)).value();
  if (name == "Q5") return TpchQueryFlow(5, Bytes::FromGB(8)).value();
  ADD_FAILURE() << "unknown workload " << name;
  DagBuilder b("fallback");
  b.AddJob(TsSpec(Bytes::FromGB(1)));
  return std::move(b).Build().value();
}

class SimInvariantsTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SimInvariantsTest, CompletesWithConsistentRecords) {
  const DagWorkflow flow = BuildFlow(GetParam());
  const Simulator sim(SmallPaperCluster(), SchedulerConfig{}, SimOptions{});
  const SimResult result = sim.Run(flow).value();

  // Every stage of every job ran exactly its task count.
  for (JobId id = 0; id < flow.num_jobs(); ++id) {
    const JobProfile& job = flow.job(id);
    EXPECT_EQ(result.TaskDurations(id, StageKind::kMap).size(),
              static_cast<size_t>(job.map.num_tasks))
        << job.name;
    if (job.has_reduce()) {
      EXPECT_EQ(result.TaskDurations(id, StageKind::kReduce).size(),
                static_cast<size_t>(job.reduce->num_tasks))
          << job.name;
    }
  }

  // One stage record per executed stage, spanning positive time.
  EXPECT_EQ(static_cast<int>(result.stages().size()), flow.TotalStages());
  for (const auto& s : result.stages()) {
    EXPECT_LT(s.start, s.end);
    EXPECT_LE(s.end, result.makespan().seconds() + 1e-9);
  }

  // The makespan is exactly the last stage completion.
  double last_end = 0;
  for (const auto& s : result.stages()) last_end = std::max(last_end, s.end);
  EXPECT_NEAR(result.makespan().seconds(), last_end, 1e-9);
}

TEST_P(SimInvariantsTest, PhaseTimesSumToDuration) {
  const DagWorkflow flow = BuildFlow(GetParam());
  SimOptions options;
  options.task_startup_seconds = 0.7;
  const Simulator sim(SmallPaperCluster(), SchedulerConfig{}, options);
  const SimResult result = sim.Run(flow).value();
  for (const auto& t : result.tasks()) {
    double sum = t.startup_s;
    for (double s : t.substage_s) sum += s;
    EXPECT_NEAR(sum, t.duration(), 1e-6);
    EXPECT_NEAR(t.startup_s, 0.7, 1e-9);
  }
}

TEST_P(SimInvariantsTest, StatesPartitionTheMakespan) {
  const DagWorkflow flow = BuildFlow(GetParam());
  const Simulator sim(SmallPaperCluster(), SchedulerConfig{}, SimOptions{});
  const SimResult result = sim.Run(flow).value();
  double covered = 0;
  for (const auto& st : result.states()) covered += st.duration();
  EXPECT_NEAR(covered, result.makespan().seconds(), 1e-6);
  // Every state has at least one running stage.
  for (const auto& st : result.states()) {
    EXPECT_FALSE(st.running.empty()) << "state " << st.index;
  }
}

TEST_P(SimInvariantsTest, DagOrderRespected) {
  const DagWorkflow flow = BuildFlow(GetParam());
  const Simulator sim(SmallPaperCluster(), SchedulerConfig{}, SimOptions{});
  const SimResult result = sim.Run(flow).value();
  for (const auto& [from, to] : flow.edges()) {
    const StageKind last_of_parent =
        flow.job(from).has_reduce() ? StageKind::kReduce : StageKind::kMap;
    const double parent_end = result.FindStage(from, last_of_parent)->end;
    const double child_start = result.FindStage(to, StageKind::kMap)->start;
    EXPECT_GE(child_start, parent_end - 1e-9)
        << flow.job(from).name << " -> " << flow.job(to).name;
  }
}

TEST_P(SimInvariantsTest, SlotCapNeverExceeded) {
  const DagWorkflow flow = BuildFlow(GetParam());
  SchedulerConfig sched;
  sched.max_tasks_per_node = 3;
  const Simulator sim(SmallPaperCluster(), sched, SimOptions{});
  const SimResult result = sim.Run(flow).value();
  // Sweep the timeline: concurrent tasks per node never exceed the cap.
  std::vector<std::pair<double, int>> events;  // (+1 at start, -1 at end).
  std::map<int, std::vector<std::pair<double, int>>> per_node;
  for (const auto& t : result.tasks()) {
    per_node[t.node].push_back({t.start, +1});
    per_node[t.node].push_back({t.end, -1});
  }
  for (auto& [node, evs] : per_node) {
    std::sort(evs.begin(), evs.end(), [](const auto& a, const auto& b) {
      // Process ends before starts at equal times (a slot frees then fills).
      return a.first < b.first || (a.first == b.first && a.second < b.second);
    });
    int running = 0;
    for (const auto& [time, delta] : evs) {
      running += delta;
      EXPECT_LE(running, 3) << "node " << node << " at t=" << time;
    }
  }
}

TEST_P(SimInvariantsTest, PreemptionOffStillCompletes) {
  const DagWorkflow flow = BuildFlow(GetParam());
  SimOptions options;
  options.enable_preemption = false;
  const Simulator sim(SmallPaperCluster(), SchedulerConfig{}, options);
  const SimResult result = sim.Run(flow).value();
  EXPECT_GT(result.makespan().seconds(), 0.0);
  EXPECT_EQ(static_cast<int>(result.stages().size()), flow.TotalStages());
}

TEST_P(SimInvariantsTest, SeedChangesOnlySkewedOutcomes) {
  const DagWorkflow flow = BuildFlow(GetParam());
  SimOptions a;
  a.seed = 1;
  SimOptions b;
  b.seed = 2;
  const double t_a =
      Simulator(SmallPaperCluster(), SchedulerConfig{}, a).Run(flow)->makespan().seconds();
  const double t_b =
      Simulator(SmallPaperCluster(), SchedulerConfig{}, b).Run(flow)->makespan().seconds();
  bool any_skew = false;
  for (const auto& job : flow.jobs()) {
    if (job.has_reduce() && job.reduce->task_size_cv > 1e-9) any_skew = true;
  }
  if (!any_skew) {
    EXPECT_DOUBLE_EQ(t_a, t_b);
  } else {
    // Skewed draws differ, but totals stay within a plausible band.
    EXPECT_NEAR(t_a, t_b, 0.25 * t_a);
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, SimInvariantsTest,
                         ::testing::Values("WC", "TS", "TSC", "TS3R", "KMeans",
                                           "PageRank", "WebAnalytics", "Q5"));

TEST(PreemptionTest, RestoresFairShareFaster) {
  // A long job is running on the whole cluster when a second job arrives
  // (chained behind a tiny trigger job). With preemption, the second job's
  // map stage should start and finish earlier than without.
  const auto build = [] {
    DagBuilder b("preempt-scenario");
    JobSpec hog = TsSpec(Bytes::FromGB(20));
    hog.name = "hog";
    b.AddJob(hog);
    JobSpec trigger = TsSpec(Bytes::FromMB(256));
    trigger.name = "trigger";
    trigger.num_reduce_tasks = 1;
    const JobId t = b.AddJob(trigger);
    JobSpec late = WordCountSpec(Bytes::FromGB(8));
    late.name = "late";
    late.num_reduce_tasks = 8;
    b.AddJobAfter(t, late);
    return std::move(b).Build().value();
  };
  const DagWorkflow flow = build();
  SimOptions with;
  SimOptions without;
  without.enable_preemption = false;
  const ClusterSpec cluster = SmallPaperCluster();
  const SimResult r_with =
      Simulator(cluster, SchedulerConfig{}, with).Run(flow).value();
  const SimResult r_without =
      Simulator(cluster, SchedulerConfig{}, without).Run(flow).value();
  const double with_span = r_with.FindStage(2, StageKind::kMap)->end -
                           r_with.FindStage(2, StageKind::kMap)->start;
  const double without_span = r_without.FindStage(2, StageKind::kMap)->end -
                              r_without.FindStage(2, StageKind::kMap)->start;
  EXPECT_LT(with_span, without_span + 1e-9);
}

}  // namespace
}  // namespace dagperf
