// Deadline & cooperative-cancellation tests (docs/robustness.md): token and
// deadline semantics, the shared CheckBudget poll, the cancellable
// ParallelFor, per-state polling in the estimator, and EstimateBatch's
// partial results, per-candidate statuses, and bounded retries — with the
// matching obs counters asserted.

#include <vector>

#include <gtest/gtest.h>

#include "boe/boe_model.h"
#include "common/cancel.h"
#include "common/parallel.h"
#include "dag/dag_workflow.h"
#include "model/state_estimator.h"
#include "model/sweep.h"
#include "model/task_time_source.h"
#include "obs/metrics.h"
#include "workloads/micro.h"

namespace dagperf {
namespace {

DagWorkflow SingleJobFlow(const JobSpec& spec) {
  DagBuilder builder(spec.name);
  builder.AddJob(spec);
  Result<DagWorkflow> flow = std::move(builder).Build();
  EXPECT_TRUE(flow.ok()) << flow.status().ToString();
  return std::move(flow).value();
}

TEST(CancelToken, DefaultTokenIsInert) {
  const CancelToken token;
  EXPECT_FALSE(token.can_cancel());
  EXPECT_FALSE(token.cancelled());
  token.Cancel();  // no-op, not a crash
  EXPECT_FALSE(token.cancelled());
}

TEST(CancelToken, CopiesShareOneFlag) {
  const CancelToken token = CancelToken::Cancellable();
  const CancelToken copy = token;
  EXPECT_TRUE(copy.can_cancel());
  EXPECT_FALSE(copy.cancelled());
  token.Cancel();
  EXPECT_TRUE(copy.cancelled());
}

TEST(CancelToken, LinkedTokenObservesParentsWithoutPropagatingUp) {
  const CancelToken caller = CancelToken::Cancellable();
  const CancelToken shutdown = CancelToken::Cancellable();
  const CancelToken linked = CancelToken::LinkedTo({caller, shutdown});
  EXPECT_TRUE(linked.can_cancel());
  EXPECT_FALSE(linked.cancelled());

  // Cancelling the child (the watchdog path) fires only the child.
  linked.Cancel();
  EXPECT_TRUE(linked.cancelled());
  EXPECT_FALSE(caller.cancelled());
  EXPECT_FALSE(shutdown.cancelled());

  // Any parent firing is observed by a fresh child.
  const CancelToken linked2 = CancelToken::LinkedTo({caller, shutdown});
  EXPECT_FALSE(linked2.cancelled());
  shutdown.Cancel();
  EXPECT_TRUE(linked2.cancelled());
  EXPECT_FALSE(caller.cancelled());
}

TEST(CancelToken, LinkingFlattensAndSkipsInertParents) {
  const CancelToken root = CancelToken::Cancellable();
  // Linking through an intermediate linked token still observes the root
  // (parent lists are flattened, not chained).
  const CancelToken middle = CancelToken::LinkedTo({root, CancelToken()});
  const CancelToken leaf = CancelToken::LinkedTo({middle});
  EXPECT_FALSE(leaf.cancelled());
  root.Cancel();
  EXPECT_TRUE(leaf.cancelled());

  // All-inert parents yield a plain cancellable token, not a dead one.
  const CancelToken orphan = CancelToken::LinkedTo({CancelToken()});
  EXPECT_TRUE(orphan.can_cancel());
  EXPECT_FALSE(orphan.cancelled());
  orphan.Cancel();
  EXPECT_TRUE(orphan.cancelled());
}

TEST(Deadline, NeverAndExpired) {
  const Deadline never = Deadline::Never();
  EXPECT_TRUE(never.never());
  EXPECT_FALSE(never.expired());
  const Deadline expired = Deadline::AfterSeconds(0);
  EXPECT_FALSE(expired.never());
  EXPECT_TRUE(expired.expired());
  EXPECT_LE(expired.remaining_seconds(), 0.0);
  EXPECT_FALSE(Deadline::AfterSeconds(3600).expired());
}

TEST(CheckBudget, CancellationWinsTies) {
  const CancelToken cancel = CancelToken::Cancellable();
  cancel.Cancel();
  const Status both = CheckBudget(cancel, Deadline::AfterSeconds(0), "op");
  EXPECT_EQ(both.code(), ErrorCode::kCancelled);
  const Status deadline_only =
      CheckBudget(CancelToken(), Deadline::AfterSeconds(0), "op");
  EXPECT_EQ(deadline_only.code(), ErrorCode::kDeadlineExceeded);
  EXPECT_TRUE(CheckBudget(CancelToken(), Deadline::Never(), "op").ok());
}

TEST(ParallelFor, ExpiredDeadlineSkipsUnclaimedIterations) {
  std::vector<char> ran(64, 0);
  const Status status = ParallelFor(
      0, 64, [&](std::int64_t i) { ran[static_cast<size_t>(i)] = 1; },
      CancelToken(), Deadline::AfterSeconds(0));
  EXPECT_EQ(status.code(), ErrorCode::kDeadlineExceeded);
  int count = 0;
  for (char c : ran) count += c;
  EXPECT_LT(count, 64);
}

TEST(ParallelFor, CompletesUnderNeverBudget) {
  std::vector<char> ran(16, 0);
  const Status status = ParallelFor(
      0, 16, [&](std::int64_t i) { ran[static_cast<size_t>(i)] = 1; },
      CancelToken(), Deadline::Never());
  EXPECT_TRUE(status.ok());
  for (char c : ran) EXPECT_EQ(c, 1);
}

TEST(Estimator, ExpiredDeadlineUnwindsPerState) {
  obs::SetMetricsEnabled(true);
  obs::Counter& exceeded = obs::MetricsRegistry::Default().GetCounter(
      "estimator.deadline_exceeded");
  const std::uint64_t before = exceeded.value();
  EstimatorOptions options;
  options.budget.deadline = Deadline::AfterSeconds(0);
  const ClusterSpec cluster = ClusterSpec::PaperCluster();
  const StateBasedEstimator estimator(cluster, SchedulerConfig{}, options);
  const BoeModel boe(cluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  const DagWorkflow flow = SingleJobFlow(WordCountSpec(Bytes::FromGB(10)));
  const Result<DagEstimate> estimate = estimator.Estimate(flow, source);
  ASSERT_FALSE(estimate.ok());
  EXPECT_EQ(estimate.status().code(), ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(exceeded.value(), before + 1);
  obs::SetMetricsEnabled(false);
}

TEST(Estimator, PreCancelledTokenUnwinds) {
  EstimatorOptions options;
  options.budget.cancel = CancelToken::Cancellable();
  options.budget.cancel.Cancel();
  const ClusterSpec cluster = ClusterSpec::PaperCluster();
  const StateBasedEstimator estimator(cluster, SchedulerConfig{}, options);
  const BoeModel boe(cluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  const DagWorkflow flow = SingleJobFlow(WordCountSpec(Bytes::FromGB(10)));
  const Result<DagEstimate> estimate = estimator.Estimate(flow, source);
  ASSERT_FALSE(estimate.ok());
  EXPECT_EQ(estimate.status().code(), ErrorCode::kCancelled);
}

TEST(EstimateBatch, ExpiredDeadlineYieldsPartialResultsAndCounts) {
  obs::SetMetricsEnabled(true);
  const ClusterSpec cluster = ClusterSpec::PaperCluster();
  const BoeModel boe(cluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  const DagWorkflow flow = SingleJobFlow(WordCountSpec(Bytes::FromGB(10)));
  const std::vector<SweepCandidate> requests(8,
                                              SweepCandidate{&flow, cluster, ""});
  SweepOptions options;
  options.threads = 1;
  options.budget.deadline = Deadline::AfterSeconds(0);
  const SweepResult sweep =
      EstimateBatch(requests, SchedulerConfig{}, source, options);
  ASSERT_EQ(sweep.estimates.size(), requests.size());
  // Every candidate carries a definite status; none completed, none counted
  // as a plain failure — the batch is deadline-cut, not broken.
  EXPECT_EQ(sweep.stats.completed, 0);
  EXPECT_EQ(sweep.stats.deadline_exceeded, sweep.stats.candidates);
  EXPECT_EQ(sweep.stats.failures, 0);
  EXPECT_EQ(sweep.stats.best_index, -1);
  for (const auto& estimate : sweep.estimates) {
    ASSERT_FALSE(estimate.ok());
    EXPECT_EQ(estimate.status().code(), ErrorCode::kDeadlineExceeded);
  }
  EXPECT_GE(obs::MetricsRegistry::Default()
                .GetCounter("sweep.deadline_exceeded")
                .value(),
            static_cast<std::uint64_t>(requests.size()));
  obs::SetMetricsEnabled(false);
}

TEST(EstimateBatch, CancelledBatchStampsCancelled) {
  obs::SetMetricsEnabled(true);
  const std::uint64_t before =
      obs::MetricsRegistry::Default().GetCounter("sweep.cancelled").value();
  const ClusterSpec cluster = ClusterSpec::PaperCluster();
  const BoeModel boe(cluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  const DagWorkflow flow = SingleJobFlow(WordCountSpec(Bytes::FromGB(10)));
  const std::vector<SweepCandidate> requests(4,
                                              SweepCandidate{&flow, cluster, ""});
  SweepOptions options;
  options.threads = 1;
  options.budget.cancel = CancelToken::Cancellable();
  options.budget.cancel.Cancel();
  const SweepResult sweep =
      EstimateBatch(requests, SchedulerConfig{}, source, options);
  EXPECT_EQ(sweep.stats.cancelled, sweep.stats.candidates);
  for (const auto& estimate : sweep.estimates) {
    ASSERT_FALSE(estimate.ok());
    EXPECT_EQ(estimate.status().code(), ErrorCode::kCancelled);
  }
  EXPECT_GT(
      obs::MetricsRegistry::Default().GetCounter("sweep.cancelled").value(),
      before);
  obs::SetMetricsEnabled(false);
}

TEST(EstimateBatch, UnexpiredBudgetIsHarmless) {
  const ClusterSpec cluster = ClusterSpec::PaperCluster();
  const BoeModel boe(cluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  const DagWorkflow flow = SingleJobFlow(WordCountSpec(Bytes::FromGB(10)));
  const std::vector<SweepCandidate> requests(3,
                                              SweepCandidate{&flow, cluster, ""});
  SweepOptions options;
  options.budget.cancel = CancelToken::Cancellable();
  options.budget.deadline = Deadline::AfterSeconds(3600);
  const SweepResult sweep =
      EstimateBatch(requests, SchedulerConfig{}, source, options);
  EXPECT_EQ(sweep.stats.completed, sweep.stats.candidates);
  EXPECT_EQ(sweep.stats.best_index, 0);
  for (const auto& estimate : sweep.estimates) EXPECT_TRUE(estimate.ok());
}

TEST(EstimateBatch, RetryableFailuresRetryBoundedTimes) {
  obs::SetMetricsEnabled(true);
  const std::uint64_t before =
      obs::MetricsRegistry::Default().GetCounter("sweep.retries").value();
  const ClusterSpec cluster = ClusterSpec::PaperCluster();
  const BoeModel boe(cluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  const DagWorkflow flow = SingleJobFlow(WordCountSpec(Bytes::FromGB(10)));
  const std::vector<SweepCandidate> requests(2,
                                              SweepCandidate{&flow, cluster, ""});
  SweepOptions options;
  options.threads = 1;
  options.max_retries = 3;
  // max_states = 0 makes every attempt fail with kInternal, the retryable
  // code, so each candidate burns exactly max_retries retries.
  options.estimator.max_states = 0;
  const SweepResult sweep =
      EstimateBatch(requests, SchedulerConfig{}, source, options);
  EXPECT_EQ(sweep.stats.completed, 0);
  EXPECT_EQ(sweep.stats.failures, sweep.stats.candidates);
  EXPECT_EQ(sweep.stats.retries, 3 * sweep.stats.candidates);
  for (const auto& estimate : sweep.estimates) {
    ASSERT_FALSE(estimate.ok());
    EXPECT_EQ(estimate.status().code(), ErrorCode::kInternal);
  }
  EXPECT_EQ(
      obs::MetricsRegistry::Default().GetCounter("sweep.retries").value(),
      before + static_cast<std::uint64_t>(sweep.stats.retries));
  obs::SetMetricsEnabled(false);
}

TEST(EstimateBatch, InvalidArgumentIsNotRetried) {
  const ClusterSpec cluster = ClusterSpec::PaperCluster();
  ClusterSpec bad = cluster;
  bad.num_nodes = -1;
  const BoeModel boe(cluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  const DagWorkflow flow = SingleJobFlow(WordCountSpec(Bytes::FromGB(10)));
  const std::vector<SweepCandidate> requests = {{&flow, bad, ""}};
  SweepOptions options;
  options.threads = 1;
  options.max_retries = 5;
  const SweepResult sweep =
      EstimateBatch(requests, SchedulerConfig{}, source, options);
  EXPECT_EQ(sweep.stats.retries, 0);
  EXPECT_EQ(sweep.stats.failures, 1);
  ASSERT_FALSE(sweep.estimates[0].ok());
  EXPECT_EQ(sweep.estimates[0].status().code(), ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace dagperf
