// Paper-shape regression suite: the headline claims of the reproduction,
// asserted at paper scale so refactors cannot silently degrade them.
// (EXPERIMENTS.md narrates these numbers; this file enforces them.)

#include <gtest/gtest.h>

#include "boe/boe_model.h"
#include "exp/dag_suite.h"
#include "exp/single_job.h"
#include "workloads/micro.h"
#include "workloads/suite.h"

namespace dagperf {
namespace {

TEST(PaperValuesTest, Fig4ExactArithmetic) {
  NodeSpec node;
  node.cores = 6;
  node.disk_read_bw = Rate::MBps(500);
  node.disk_write_bw = Rate::MBps(500);
  node.network_bw = Rate::MBps(100);
  StageProfile stage;
  stage.name = "fig4";
  SubStageProfile ss;
  ss.name = "pipeline";
  ss.demand[Resource::kDiskRead] = Bytes::FromMB(10000).value();
  ss.demand[Resource::kNetwork] = Bytes::FromMB(10000).value();
  ss.demand[Resource::kCpu] = 200.0;
  stage.substages.push_back(ss);
  const BoeModel model(node);
  EXPECT_NEAR(model.EstimateTask(stage, 1.0).duration.seconds(), 200.0, 1e-9);
  EXPECT_NEAR(model.EstimateTask(stage, 5.0).duration.seconds(), 500.0, 1e-9);
}

TEST(PaperValuesTest, Fig6BoeBeatsBaselineByAtLeastFive) {
  // "The BOE model outperforms the state-of-the-art models by a factor of
  // five for task execution time estimation" — enforced on the shuffle and
  // reduce error-reduction at delta=12 for both WC and TS (the map factor
  // diverges because BOE's map error is ~0 on the simulator).
  for (const JobSpec& spec : {WordCountSpec(), TsSpec()}) {
    SingleJobSweepConfig config;
    config.parallelisms = {12};
    config.baseline_reference = 2;
    const SingleJobSweepResult sweep = RunSingleJobSweep(spec, config).value();
    const auto& p = sweep.points.front();
    const auto factor = [](double base_est, double boe_est, double truth) {
      return std::fabs(base_est - truth) / std::max(std::fabs(boe_est - truth), 1e-9);
    };
    EXPECT_GT(factor(p.baseline.shuffle_s, p.boe.shuffle_s, p.truth.shuffle_s), 5.0)
        << spec.name << " shuffle";
    EXPECT_GT(factor(p.baseline.map_s, p.boe.map_s, p.truth.map_s), 5.0)
        << spec.name << " map";
  }
}

TEST(PaperValuesTest, TableOneBottlenecks) {
  const BoeModel model(ClusterSpec::PaperCluster().node);
  // WC map CPU-bound at saturation.
  const JobProfile wc = CompileJob(WordCountSpec()).value();
  EXPECT_EQ(model.EstimateTask(wc.map, 12.0).bottleneck, Resource::kCpu);
  // TS map disk-bound; its reduce's shuffle sub-stage network-bound.
  const JobProfile ts = CompileJob(TsSpec()).value();
  const Resource ts_map = model.EstimateTask(ts.map, 12.0).bottleneck;
  EXPECT_TRUE(ts_map == Resource::kDiskRead || ts_map == Resource::kDiskWrite);
  const TaskEstimate ts_reduce = model.EstimateTask(*ts.reduce, 12.0);
  EXPECT_EQ(ts_reduce.substages.front().bottleneck, Resource::kNetwork);
  // TS3R reduce+write network-bound (3-replica pipeline).
  const JobProfile ts3r = CompileJob(Ts3rSpec()).value();
  const TaskEstimate r = model.EstimateTask(*ts3r.reduce, 12.0);
  EXPECT_EQ(r.substages.back().bottleneck, Resource::kNetwork);
}

TEST(PaperValuesTest, TableThreeSuiteAccuracyFloor) {
  // Full 51-workflow suite at paper scale: averages above 88% for every
  // variant, Alg2-Normal the best or tied, no cell below 65%, estimation
  // latency well under the paper's 1 s bound.
  const std::vector<NamedFlow> suite = TableThreeSuite(1.0).value();
  std::vector<DagAccuracyRow> rows;
  for (const auto& nf : suite) {
    rows.push_back(EvaluateDagWorkflow(nf, ClusterSpec::PaperCluster(),
                                       SchedulerConfig{}, SimOptions{})
                       .value());
  }
  const SuiteSummary summary = Summarize(rows);
  EXPECT_GT(summary.mean_acc_mean, 0.88);
  EXPECT_GT(summary.mean_acc_median, 0.88);
  EXPECT_GT(summary.mean_acc_normal, 0.88);
  EXPECT_GE(summary.mean_acc_normal + 0.02, summary.mean_acc_mean);
  EXPECT_GT(summary.min_acc, 0.65);
  EXPECT_LT(summary.max_latency_ms, 1000.0);
}

}  // namespace
}  // namespace dagperf
