#include "model/explain.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "boe/boe_model.h"
#include "common/json.h"
#include "workloads/micro.h"

namespace dagperf {
namespace {

ClusterSpec TestCluster(int nodes = 8) {
  ClusterSpec c = ClusterSpec::PaperCluster();
  c.num_nodes = nodes;
  return c;
}

/// The WordCount fixture from the paper's HiBench suite, small enough to
/// keep the test fast but with distinct map and reduce contention regimes.
DagWorkflow WordCountFlow() {
  DagBuilder b("wordcount");
  b.AddJob(WordCountSpec(Bytes::FromGB(20)));
  return std::move(b).Build().value();
}

/// WordCount feeding TeraSort: exercises multi-job states and critical-path
/// hand-off between jobs.
DagWorkflow ChainedFlow() {
  DagBuilder b("wc-ts");
  const JobId wc = b.AddJob(WordCountSpec(Bytes::FromGB(20)));
  b.AddJobAfter(wc, TsSpec(Bytes::FromGB(10)));
  return std::move(b).Build().value();
}

ExplainReport MustExplain(const DagWorkflow& flow, const ClusterSpec& cluster,
                          const BoeTaskTimeSource& source) {
  Result<ExplainReport> report =
      Explain(flow, cluster, SchedulerConfig{}, source);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return std::move(report).value();
}

// Golden property: the bottleneck the explain report names for every running
// stage must be exactly the BoeModel's arg-max, recomputed independently
// from the state's recorded contention context.
TEST(ExplainTest, BottleneckMatchesBoeArgMaxPerState) {
  const DagWorkflow flow = WordCountFlow();
  const ClusterSpec cluster = TestCluster();
  const BoeModel boe(cluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  const ExplainReport report = MustExplain(flow, cluster, source);

  ASSERT_FALSE(report.estimate.states.empty());
  int attributed = 0;
  for (const StateEstimate& state : report.estimate.states) {
    // Rebuild the estimator's EstimationContext: stages granted parallelism,
    // at delta / num_nodes tasks per node.
    const RunningSpan span = report.estimate.running(state);
    std::vector<ParallelStage> running;
    std::vector<size_t> slot_of(span.size(), SIZE_MAX);
    for (size_t i = 0; i < span.size(); ++i) {
      const RunningStageEstimate& rs = span[i];
      if (rs.parallelism <= 0) continue;
      const JobProfile& job = flow.job(rs.job);
      ParallelStage ps;
      ps.stage = rs.kind == StageKind::kMap ? &job.map : &*job.reduce;
      ps.tasks_per_node =
          static_cast<double>(rs.parallelism) / cluster.num_nodes;
      slot_of[i] = running.size();
      running.push_back(ps);
    }
    const std::vector<TaskEstimate> golden = boe.EstimateParallel(running);
    for (size_t i = 0; i < span.size(); ++i) {
      const RunningStageEstimate& rs = span[i];
      if (slot_of[i] == SIZE_MAX) continue;
      ASSERT_TRUE(rs.has_attribution);
      EXPECT_EQ(rs.bottleneck, golden[slot_of[i]].bottleneck)
          << "state " << state.index << " stage " << i;
      // The bottleneck resource paces some sub-stage fully.
      EXPECT_GT(rs.utilization[rs.bottleneck], 0.0);
      for (Resource r : kAllResources) {
        EXPECT_GE(rs.utilization[r], 0.0);
        EXPECT_LE(rs.utilization[r], 1.0);
      }
      ++attributed;
    }
  }
  EXPECT_GT(attributed, 0);
}

TEST(ExplainTest, CriticalPathSegmentsAreContiguousAndSumToMakespan) {
  const ClusterSpec cluster = TestCluster();
  const BoeModel boe(cluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  for (const DagWorkflow& flow : {WordCountFlow(), ChainedFlow()}) {
    const ExplainReport report = MustExplain(flow, cluster, source);
    ASSERT_FALSE(report.critical_path.empty()) << flow.name();

    double sum = 0.0;
    double cursor = 0.0;
    for (const CriticalSegment& segment : report.critical_path) {
      EXPECT_NEAR(segment.start, cursor, 1e-9) << flow.name();
      EXPECT_GT(segment.duration, 0.0);
      cursor = segment.start + segment.duration;
      sum += segment.duration;
    }
    EXPECT_NEAR(sum, report.estimate.makespan.seconds(), 1e-9) << flow.name();
    EXPECT_NEAR(report.critical_total_s, sum, 1e-9) << flow.name();
    // Adjacent segments belong to different stages (maximal merging).
    for (size_t i = 1; i < report.critical_path.size(); ++i) {
      const CriticalSegment& a = report.critical_path[i - 1];
      const CriticalSegment& b = report.critical_path[i];
      EXPECT_TRUE(a.job != b.job || a.kind != b.kind) << flow.name();
    }
  }
}

TEST(ExplainTest, EveryStateNamesItsCriticalStage) {
  const DagWorkflow flow = ChainedFlow();
  const ClusterSpec cluster = TestCluster();
  const BoeModel boe(cluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  const ExplainReport report = MustExplain(flow, cluster, source);
  for (const StateEstimate& state : report.estimate.states) {
    ASSERT_GE(state.critical, 0);
    ASSERT_LT(state.critical,
              static_cast<int>(report.estimate.running(state).size()));
  }
}

TEST(ExplainTest, DefaultEstimateSkipsAttribution) {
  const DagWorkflow flow = WordCountFlow();
  const ClusterSpec cluster = TestCluster();
  const BoeModel boe(cluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  const StateBasedEstimator estimator(cluster, SchedulerConfig{});
  const DagEstimate estimate = estimator.Estimate(flow, source).value();
  for (const StateEstimate& state : estimate.states) {
    for (const RunningStageEstimate& rs : estimate.running(state)) {
      EXPECT_FALSE(rs.has_attribution);
    }
    // The critical index is tracked regardless of attribution.
    EXPECT_GE(state.critical, 0);
  }
}

TEST(ExplainTest, AttributionDoesNotChangeTheEstimate) {
  const DagWorkflow flow = ChainedFlow();
  const ClusterSpec cluster = TestCluster();
  const BoeModel boe(cluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  const StateBasedEstimator plain(cluster, SchedulerConfig{});
  const DagEstimate baseline = plain.Estimate(flow, source).value();
  const ExplainReport report = MustExplain(flow, cluster, source);
  EXPECT_EQ(report.estimate.makespan.seconds(), baseline.makespan.seconds());
  EXPECT_EQ(report.estimate.states.size(), baseline.states.size());
}

TEST(ExplainTest, JsonReportParsesWithRequiredKeys) {
  const DagWorkflow flow = WordCountFlow();
  const ClusterSpec cluster = TestCluster();
  const BoeModel boe(cluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  const ExplainReport report = MustExplain(flow, cluster, source);

  const Json doc = ExplainToJson(flow, report);
  const Result<Json> parsed = Json::Parse(doc.Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->GetString("workflow", ""), "wordcount");
  EXPECT_NEAR(parsed->GetNumber("makespan_s", -1),
              report.estimate.makespan.seconds(), 1e-9);
  EXPECT_NEAR(parsed->GetNumber("critical_total_s", -1),
              report.estimate.makespan.seconds(), 1e-9);
  const Json* path = parsed->Get("critical_path");
  ASSERT_NE(path, nullptr);
  EXPECT_EQ(path->AsArray().size(), report.critical_path.size());
  const Json* states = parsed->Get("states");
  ASSERT_NE(states, nullptr);
  ASSERT_EQ(states->AsArray().size(), report.estimate.states.size());
  const Json* running = states->AsArray()[0].Get("running");
  ASSERT_NE(running, nullptr);
  ASSERT_FALSE(running->AsArray().empty());
  EXPECT_NE(running->AsArray()[0].GetString("bottleneck", ""), "");
  ASSERT_NE(running->AsArray()[0].Get("utilization"), nullptr);

  // The text rendering carries the same headline number.
  const std::string text = ExplainToText(flow, report);
  EXPECT_NE(text.find("wordcount"), std::string::npos);
  EXPECT_NE(text.find("critical path"), std::string::npos);
}

TEST(ExplainTest, EstimateChromeTraceIsValidJson) {
  const DagWorkflow flow = ChainedFlow();
  const ClusterSpec cluster = TestCluster();
  const BoeModel boe(cluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  const ExplainReport report = MustExplain(flow, cluster, source);

  std::ostringstream out;
  WriteEstimateChromeTrace(flow, report.estimate, out);
  const Result<Json> doc = Json::Parse(out.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  size_t spans = 0;
  size_t counters = 0;
  for (const Json& event : doc->AsArray()) {
    const std::string ph = event.GetString("ph", "");
    if (ph == "X") ++spans;
    if (ph == "C") ++counters;
  }
  // One span per stage plus one per state; attribution is on, so the
  // resource-load counter track is present too.
  EXPECT_EQ(spans,
            report.estimate.stages.size() + report.estimate.states.size());
  EXPECT_EQ(counters, report.estimate.states.size() + 1);
}

}  // namespace
}  // namespace dagperf
