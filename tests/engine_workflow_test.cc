#include "engine/workflow.h"

#include <gtest/gtest.h>

#include <map>

#include "engine/builtin.h"
#include "engine/datagen.h"

namespace dagperf {
namespace {

TEST(EngineWorkflowTest, ChainPassesDataThrough) {
  LocalStore store;
  GenerateText(store, "corpus", Bytes::FromKB(200), 200, 1.0);
  MapReduceEngine engine(&store);

  // grep "a"-containing lines, then count their words.
  EngineWorkflow workflow;
  workflow.name = "grep-then-count";
  workflow.jobs.push_back(GrepJob("corpus", "filtered", "a"));
  workflow.jobs.push_back(WordCountJob("filtered", "counts"));
  workflow.edges = {{0, 1}};

  const WorkflowMetrics metrics = RunEngineWorkflow(engine, workflow).value();
  EXPECT_TRUE(store.Exists("filtered"));
  EXPECT_TRUE(store.Exists("counts"));
  ASSERT_EQ(metrics.jobs.size(), 2u);
  // The counter consumed exactly what the filter produced.
  EXPECT_EQ(metrics.jobs[1].map.records_in, metrics.jobs[0].map.records_out);
  // Dependency respected in wall-clock terms.
  EXPECT_GE(metrics.job_start_s[1], metrics.job_end_s[0] - 1e-9);
  EXPECT_GE(metrics.wall_seconds, metrics.job_end_s[1] - 1e-9);
}

TEST(EngineWorkflowTest, DiamondProducesJoinableResults) {
  LocalStore store;
  GenerateKeyedInts(store, "events", 20000, 500, 0.7);
  MapReduceEngine engine(&store);

  // Two aggregations of the same input feed a join — Fig. 2-style diamond.
  EngineWorkflow workflow;
  workflow.name = "diamond";
  workflow.jobs.push_back(SumByKeyJob("events", "sums"));
  workflow.jobs.push_back(WordCountJob("events", "counts-of-values"));
  EngineJobConfig merge;
  merge.name = "merge";
  merge.input = "sums";
  merge.output = "merged";
  merge.map = [](const Record& r, MapContext& out) { out.Emit(r.key, r.value); };
  workflow.jobs.push_back(merge);
  workflow.edges = {{0, 2}, {1, 2}};

  const WorkflowMetrics metrics = RunEngineWorkflow(engine, workflow).value();
  // Sources may genuinely overlap in time.
  EXPECT_LT(metrics.job_start_s[0], metrics.job_end_s[1]);
  EXPECT_GE(metrics.job_start_s[2],
            std::max(metrics.job_end_s[0], metrics.job_end_s[1]) - 1e-9);
  EXPECT_EQ(store.Read("merged").value()->size(),
            store.Read("sums").value()->size());
}

TEST(EngineWorkflowTest, IndependentJobsRunConcurrently) {
  LocalStore store;
  GenerateText(store, "corpus", Bytes::FromKB(800), 500, 1.0);
  MapReduceEngine engine(&store);
  EngineWorkflow workflow;
  workflow.jobs.push_back(WordCountJob("corpus", "a"));
  workflow.jobs.push_back(WordCountJob("corpus", "b"));
  const WorkflowMetrics metrics = RunEngineWorkflow(engine, workflow).value();
  // Both started before either finished (true overlap).
  const double first_end = std::min(metrics.job_end_s[0], metrics.job_end_s[1]);
  EXPECT_LE(metrics.job_start_s[0], first_end);
  EXPECT_LE(metrics.job_start_s[1], first_end);
}

TEST(EngineWorkflowTest, RejectsBadTopologies) {
  LocalStore store;
  store.Write("in", {{"k", "v"}});
  MapReduceEngine engine(&store);

  EngineWorkflow empty;
  EXPECT_FALSE(RunEngineWorkflow(engine, empty).ok());

  EngineWorkflow cycle;
  cycle.jobs.push_back(GrepJob("in", "x", "k"));
  cycle.jobs.push_back(GrepJob("x", "y", "k"));
  cycle.edges = {{0, 1}, {1, 0}};
  EXPECT_FALSE(RunEngineWorkflow(engine, cycle).ok());

  EngineWorkflow bad_edge;
  bad_edge.jobs.push_back(GrepJob("in", "x", "k"));
  bad_edge.edges = {{0, 7}};
  EXPECT_FALSE(RunEngineWorkflow(engine, bad_edge).ok());
}

TEST(EngineWorkflowTest, FailedJobAbortsWorkflow) {
  LocalStore store;
  store.Write("in", {{"k", "v"}});
  MapReduceEngine engine(&store);
  EngineWorkflow workflow;
  workflow.jobs.push_back(GrepJob("does-not-exist", "x", "k"));
  workflow.jobs.push_back(GrepJob("x", "y", "k"));
  workflow.edges = {{0, 1}};
  const auto result = RunEngineWorkflow(engine, workflow);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kNotFound);
  EXPECT_FALSE(store.Exists("y"));  // The child never ran.
}

}  // namespace
}  // namespace dagperf
