// Tests of the BOE model's parallel-stage contention modes (Eq. 5,
// steady-state, wave-aligned) and its utilisation reporting.

#include <gtest/gtest.h>

#include "boe/boe_model.h"

namespace dagperf {
namespace {

NodeSpec TestNode() {
  NodeSpec node;
  node.cores = 6;
  node.disk_read_bw = Rate::MBps(240);
  node.disk_write_bw = Rate::MBps(240);
  node.network_bw = Rate::MBps(125);
  return node;
}

StageProfile SingleOpStage(const std::string& name, Resource r, double amount) {
  StageProfile stage;
  stage.name = name;
  SubStageProfile ss;
  ss.name = "op";
  ss.demand[r] = amount;
  stage.substages.push_back(ss);
  return stage;
}

BoeModel ModelWithMode(BoeOptions::ContentionMode mode) {
  BoeOptions options;
  options.mode = mode;
  return BoeModel(TestNode(), options);
}

class AllModesTest
    : public ::testing::TestWithParam<BoeOptions::ContentionMode> {};

TEST_P(AllModesTest, SymmetricStagesGetEqualTimes) {
  const BoeModel model = ModelWithMode(GetParam());
  const StageProfile a = SingleOpStage("a", Resource::kNetwork, 100e6);
  const StageProfile b = SingleOpStage("b", Resource::kNetwork, 100e6);
  const auto est = model.EstimateParallel({{&a, 3.0}, {&b, 3.0}});
  EXPECT_NEAR(est[0].duration.seconds(), est[1].duration.seconds(), 1e-9);
  // 6 tasks split 125 MB/s: 100 MB at ~20.8 MB/s.
  EXPECT_NEAR(est[0].duration.seconds(), 100e6 / (125e6 / 6.0), 1e-6);
}

TEST_P(AllModesTest, SingleSubStageStageMatchesPaperFormula) {
  // For one stage with one sub-stage, every mode must reduce to Eq. 5.
  const BoeModel model = ModelWithMode(GetParam());
  const StageProfile stage = SingleOpStage("s", Resource::kDiskRead, 240e6);
  for (double delta : {1.0, 4.0, 8.0}) {
    EXPECT_NEAR(model.EstimateTask(stage, delta).duration.seconds(), delta, 1e-6)
        << "delta=" << delta;
  }
}

TEST_P(AllModesTest, BottleneckUtilisationIsOne) {
  const BoeModel model = ModelWithMode(GetParam());
  StageProfile stage;
  stage.name = "mixed";
  SubStageProfile ss;
  ss.name = "pipeline";
  ss.demand[Resource::kDiskRead] = 60e6;
  ss.demand[Resource::kNetwork] = 125e6;
  ss.demand[Resource::kCpu] = 0.2;
  stage.substages.push_back(ss);
  const TaskEstimate est = model.EstimateTask(stage, 4.0);
  ASSERT_EQ(est.substages.size(), 1u);
  double max_util = 0;
  for (const auto& op : est.substages[0].ops) {
    EXPECT_LE(op.utilization, 1.0 + 1e-9);
    max_util = std::max(max_util, op.utilization);
    if (op.resource == est.substages[0].bottleneck) {
      EXPECT_NEAR(op.utilization, 1.0, 1e-9);
    }
  }
  EXPECT_NEAR(max_util, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Modes, AllModesTest,
                         ::testing::Values(BoeOptions::ContentionMode::kPaper,
                                           BoeOptions::ContentionMode::kSteadyState,
                                           BoeOptions::ContentionMode::kAlignedSelf),
                         [](const auto& info) {
                           switch (info.param) {
                             case BoeOptions::ContentionMode::kPaper:
                               return "paper";
                             case BoeOptions::ContentionMode::kSteadyState:
                               return "steady";
                             case BoeOptions::ContentionMode::kAlignedSelf:
                               return "aligned";
                           }
                           return "unknown";
                         });

TEST(AlignedSelfTest, LightCoRunnerBarelySlowsHeavyUser) {
  // A CPU-capped co-runner takes almost no disk; the aligned mode should
  // give the disk-heavy stage nearly the whole device, unlike Eq. 5 which
  // halves it.
  const StageProfile disk_heavy = SingleOpStage("disk", Resource::kDiskRead, 240e6);
  StageProfile cpu_light;
  cpu_light.name = "cpu";
  SubStageProfile ss;
  ss.name = "op";
  ss.demand[Resource::kCpu] = 10.0;
  ss.demand[Resource::kDiskRead] = 1e6;  // Trickle of disk.
  cpu_light.substages.push_back(ss);

  const BoeModel aligned = ModelWithMode(BoeOptions::ContentionMode::kAlignedSelf);
  const BoeModel paper = ModelWithMode(BoeOptions::ContentionMode::kPaper);
  const auto est_aligned = aligned.EstimateParallel({{&disk_heavy, 2.0}, {&cpu_light, 2.0}});
  const auto est_paper = paper.EstimateParallel({{&disk_heavy, 2.0}, {&cpu_light, 2.0}});

  // Paper mode: 4 contenders on disk -> 60 MB/s each -> 4 s.
  EXPECT_NEAR(est_paper[0].duration.seconds(), 4.0, 1e-6);
  // Aligned: the CPU-bound tasks use ~0.1 MB/s each; disk tasks get ~119.9.
  EXPECT_LT(est_aligned[0].duration.seconds(), 2.1);
}

TEST(AlignedSelfTest, OwnSubStagesStayAligned) {
  // A stage with two sub-stages on the same device: aligned-self counts all
  // of its own tasks in the current sub-stage (not spread), so the per-task
  // share is capacity/population in both sub-stages.
  StageProfile stage;
  stage.name = "two-phase";
  SubStageProfile read;
  read.name = "read";
  read.demand[Resource::kDiskRead] = 120e6;
  SubStageProfile write;
  write.name = "write";
  write.demand[Resource::kDiskWrite] = 120e6;
  stage.substages = {read, write};
  const BoeModel aligned = ModelWithMode(BoeOptions::ContentionMode::kAlignedSelf);
  const TaskEstimate est = aligned.EstimateTask(stage, 4.0);
  // Each sub-stage: 120 MB at 240/4 = 60 MB/s -> 2 s; total 4 s.
  EXPECT_NEAR(est.duration.seconds(), 4.0, 1e-6);
  // Steady-state would spread 2 tasks per sub-stage -> 120 MB/s -> 1 s each.
  const BoeModel steady = ModelWithMode(BoeOptions::ContentionMode::kSteadyState);
  EXPECT_NEAR(steady.EstimateTask(stage, 4.0).duration.seconds(), 2.0, 1e-3);
}

TEST(AlignedSelfTest, ConvergesForManyStages) {
  // Ten heterogeneous stages: the fixed point must converge and stay sane.
  std::vector<StageProfile> stages;
  for (int i = 0; i < 10; ++i) {
    StageProfile s;
    s.name = "s" + std::to_string(i);
    SubStageProfile ss;
    ss.name = "op";
    ss.demand[Resource::kDiskRead] = 10e6 * (1 + i % 4);
    ss.demand[Resource::kNetwork] = 15e6 * (1 + i % 3);
    ss.demand[Resource::kCpu] = 0.2 * (1 + i % 5);
    s.substages.push_back(ss);
    stages.push_back(s);
  }
  const BoeModel model(TestNode());
  std::vector<ParallelStage> parallel;
  for (const auto& s : stages) parallel.push_back({&s, 1.5});
  const auto est = model.EstimateParallel(parallel);
  for (const auto& e : est) {
    EXPECT_GT(e.duration.seconds(), 0.0);
    EXPECT_TRUE(std::isfinite(e.duration.seconds()));
  }
}

}  // namespace
}  // namespace dagperf
