// Fleet tests: a real router::Router supervising real `dagperf serve` child
// processes (the binary comes from $DAGPERF_BIN, set by ctest to the built
// CLI). These are the robustness headline tests:
//   - routing is sticky (one key, one shard) and stats fan out with a
//     fleet-wide aggregate;
//   - saturating one shard sheds with retryable UNAVAILABLE + retry_after_ms
//     while other shards keep serving;
//   - SIGKILLing a shard under 64-client mixed-tenant load produces zero
//     non-retryable client errors, the supervisor restarts it, readmission
//     waits for the probe quorum, and the restarted shard rejoins *warm*
//     (>= 0.5x its pre-kill memo entries, restored from its DPWARM01
//     snapshot);
//   - fleet-wide conservation: submitted == completed + failed + shed +
//     expired across the shard fan-out when quiescent;
//   - a drain verb gracefully stops the fleet, leaving every shard's final
//     snapshot on disk.
// Seeded like chaos_test: DAGPERF_CHAOS_SEED drives client scheduling
// jitter and is logged for repro.

#include <signal.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <iostream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "router/router.h"
#include "service/line_client.h"

namespace dagperf {
namespace router {
namespace {

std::uint64_t ChaosSeed() {
  static const std::uint64_t seed = [] {
    const char* env = std::getenv("DAGPERF_CHAOS_SEED");
    std::uint64_t value = 1;
    if (env != nullptr && env[0] != '\0') {
      if (std::string(env) == "random") {
        std::random_device device;
        value = (static_cast<std::uint64_t>(device()) << 32) ^ device();
      } else {
        value = std::strtoull(env, nullptr, 10);
      }
    }
    std::cout << "[fleet] seed " << value
              << "  (repro: DAGPERF_CHAOS_SEED=" << value << ")" << std::endl;
    return value;
  }();
  return seed;
}

std::string DagperfBin() {
  const char* env = std::getenv("DAGPERF_BIN");
  return env == nullptr ? "" : env;
}

/// Spins a Router over N real `dagperf serve` children in a private
/// directory under the build tree. Serve() runs on a background thread; the
/// harness hands out the listen port and joins on destruction.
class FleetHarness {
 public:
  FleetHarness(const std::string& name, int shards, RouterOptions options)
      : dir_("fleet_test_" + name) {
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    std::vector<ShardSpec> specs;
    for (int i = 0; i < shards; ++i) {
      const std::string shard_id = "shard-" + std::to_string(i);
      const std::string shard_dir = dir_ + "/" + shard_id;
      std::filesystem::create_directories(shard_dir);
      ShardSpec spec;
      spec.shard_id = shard_id;
      spec.port_file = dir_ + "/" + shard_id + ".port";
      spec.stderr_file = dir_ + "/" + shard_id + ".log";
      spec.command = {DagperfBin(),
                      "serve",
                      "--port",
                      "0",
                      "--port-file",
                      spec.port_file,
                      "--shard-id",
                      shard_id,
                      "--snapshot-dir",
                      shard_dir,
                      "--snapshot-interval-seconds",
                      "0.2",
                      "--scale",
                      "0.01",
                      "--threads",
                      "2"};
      specs.push_back(std::move(spec));
    }
    options.stop = stop_;
    std::future<int> port_future = port_promise_.get_future();
    options.on_listen = [this](int port) {
      try {
        port_promise_.set_value(port);
      } catch (const std::future_error&) {
      }
    };
    router_ = std::make_unique<Router>(std::move(specs), options);
    thread_ = std::thread([this] {
      result_ = router_->Serve();
      // Serve() can fail before on_listen (e.g. no shard came up); resolve
      // the port future either way so the ctor never hangs on a boot
      // failure.
      try {
        port_promise_.set_value(-1);
      } catch (const std::future_error&) {
      }
    });
    port_ = port_future.get();
  }

  ~FleetHarness() {
    Stop();
    std::filesystem::remove_all(dir_);
  }

  const Result<RouterSummary>& Stop() {
    if (thread_.joinable()) {
      stop_.Cancel();
      thread_.join();
    }
    return result_;
  }

  /// Joins Serve() without firing the stop token — for drain-verb tests.
  const Result<RouterSummary>& Join() {
    if (thread_.joinable()) thread_.join();
    return result_;
  }

  Router& router() { return *router_; }
  int port() const { return port_; }
  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  CancelToken stop_ = CancelToken::Cancellable();
  std::unique_ptr<Router> router_;
  std::promise<int> port_promise_;
  std::thread thread_;
  int port_ = -1;
  Result<RouterSummary> result_ = Status::Internal("serve never ran");
};

std::string EstimateLine(const std::string& workflow, int id,
                         const std::string& tenant = "") {
  std::string line = R"({"op":"estimate","workflow":")" + workflow + "\"";
  if (!tenant.empty()) line += R"(,"tenant":")" + tenant + "\"";
  line += ",\"id\":" + std::to_string(id) + "}";
  return line;
}

/// One request with client-side retries of retryable errors. Returns true
/// once served; any non-retryable error is an immediate test failure (the
/// fleet's core promise). Reconnects on severed connections — the router
/// itself never drops a healthy client, but harness shutdown races are not
/// what this asserts.
bool EstimateWithRetry(protocol::LineClient& client, int port,
                       const std::string& workflow, int id,
                       std::atomic<int>& retries) {
  for (int attempt = 0; attempt < 60; ++attempt) {
    if (!client.connected() && !client.Connect(port).ok()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    Result<std::string> response =
        client.Call(EstimateLine(workflow, id, "tenant-" +
                                                   std::to_string(id % 4)),
                    60.0);
    if (!response.ok()) {
      // Transport trouble talking to the router itself; reconnect.
      client.Close();
      retries.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    Result<Json> parsed = Json::Parse(response.value());
    EXPECT_TRUE(parsed.ok()) << response.value();
    if (!parsed.ok()) return false;
    EXPECT_EQ(parsed.value().GetNumber("id", -1), id) << response.value();
    if (parsed.value().GetBool("ok", false)) return true;

    const Json* error = parsed.value().Get("error");
    EXPECT_NE(error, nullptr) << response.value();
    if (error == nullptr) return false;
    // The headline invariant: under shard death, failover, shedding, and
    // drain, a client never sees a non-retryable error.
    EXPECT_TRUE(error->GetBool("retryable", false))
        << "non-retryable error (seed " << ChaosSeed()
        << "): " << response.value();
    if (!error->GetBool("retryable", false)) return false;
    if (error->GetString("code", "") == "UNAVAILABLE") {
      EXPECT_GT(error->GetNumber("retry_after_ms", 0.0), 0.0)
          << "UNAVAILABLE without retry_after_ms: " << response.value();
    }
    retries.fetch_add(1);
    const double pace_ms =
        std::min(error->GetNumber("retry_after_ms", 10.0), 50.0);
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(pace_ms));
  }
  ADD_FAILURE() << "request " << id << " for " << workflow
                << " never served after 60 attempts (seed " << ChaosSeed()
                << ")";
  return false;
}

Result<Json> CallJson(int port, const std::string& request) {
  protocol::LineClient client;
  if (Status s = client.Connect(port); !s.ok()) return s;
  Result<std::string> response = client.Call(request, 30.0);
  if (!response.ok()) return response.status();
  return Json::Parse(response.value());
}

/// Per-shard entry from a stats fan-out response, nullptr when absent.
const Json* ShardEntry(const Json& response, const std::string& shard_id) {
  const Json* result = response.Get("result");
  if (result == nullptr) return nullptr;
  const Json* shards = result->Get("shards");
  if (shards == nullptr) return nullptr;
  for (const Json& shard : shards->AsArray()) {
    if (shard.GetString("shard_id", "") == shard_id) return &shard;
  }
  return nullptr;
}

/// Fleet-wide conservation: submitted == completed + failed + shed +
/// expired, with an idle queue — every request the fan-out can see is
/// accounted for by exactly one terminal counter.
void ExpectFleetConservation(const Json& stats_response) {
  const Json* result = stats_response.Get("result");
  ASSERT_NE(result, nullptr);
  const Json* fleet = result->Get("fleet");
  ASSERT_NE(fleet, nullptr) << result->Dump();
  const double submitted = fleet->GetNumber("submitted", -1);
  const double accounted = fleet->GetNumber("completed", 0) +
                           fleet->GetNumber("failed", 0) +
                           fleet->GetNumber("shed", 0) +
                           fleet->GetNumber("expired_in_queue", 0);
  EXPECT_GE(submitted, 0);
  EXPECT_EQ(submitted, accounted)
      << "fleet conservation broken (seed " << ChaosSeed()
      << "): " << fleet->Dump();
  EXPECT_EQ(fleet->GetNumber("queue_depth", -1), 0);
}

// ---------------------------------------------------------------------------

TEST(FleetTest, RoutesStickilyAndAggregatesStats) {
  ASSERT_FALSE(DagperfBin().empty())
      << "DAGPERF_BIN must point at the dagperf CLI (ctest sets it)";
  RouterOptions options;
  options.probe_interval_seconds = 0.02;
  FleetHarness fleet("sticky", 2, options);
  ASSERT_GT(fleet.port(), 0);

  // Every repeat of one route key lands on the shard the ring elects.
  const std::string owner =
      fleet.router().OwnerOf(Router::RouteKey("default", "TS-Q1"));
  ASSERT_FALSE(owner.empty());

  protocol::LineClient client;
  std::atomic<int> retries{0};
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(EstimateWithRetry(client, fleet.port(), "TS-Q1", i, retries));
  }

  Result<Json> stats = CallJson(fleet.port(), R"({"op":"stats","id":1})");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_TRUE(stats.value().GetBool("ok", false)) << stats.value().Dump();

  // All six landed on `owner`, none elsewhere.
  const Json* owner_entry = ShardEntry(stats.value(), owner);
  ASSERT_NE(owner_entry, nullptr);
  const Json* owner_stats = owner_entry->Get("stats");
  ASSERT_NE(owner_stats, nullptr);
  EXPECT_EQ(owner_stats->GetNumber("submitted", -1), 6);
  for (const std::string other : {std::string("shard-0"),
                                  std::string("shard-1")}) {
    if (other == owner) continue;
    const Json* entry = ShardEntry(stats.value(), other);
    ASSERT_NE(entry, nullptr);
    const Json* entry_stats = entry->Get("stats");
    ASSERT_NE(entry_stats, nullptr);
    EXPECT_EQ(entry_stats->GetNumber("submitted", -1), 0)
        << "request leaked to " << other;
    // Shard-mode attribution: each shard echoes its id and readiness.
    EXPECT_EQ(entry_stats->GetString("shard_id", ""), other);
    EXPECT_TRUE(entry_stats->GetBool("ready", false));
  }
  ExpectFleetConservation(stats.value());

  // The router block reports fleet shape.
  const Json* router_block = stats.value().Get("result")->Get("router");
  ASSERT_NE(router_block, nullptr);
  EXPECT_EQ(router_block->GetNumber("shards_total", -1), 2);
  EXPECT_EQ(router_block->GetNumber("shards_up", -1), 2);

  // Unknown verbs name the supported set without disturbing the fleet.
  Result<Json> unknown = CallJson(fleet.port(), R"({"op":"nope","id":2})");
  ASSERT_TRUE(unknown.ok());
  EXPECT_FALSE(unknown.value().GetBool("ok", true));
  EXPECT_EQ(unknown.value().Get("error")->GetString("code", ""),
            "INVALID_ARGUMENT");

  const Result<RouterSummary>& summary = fleet.Stop();
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_TRUE(summary->stopped);
  EXPECT_GE(summary->requests, 8u);
}

TEST(FleetTest, SaturatedShardShedsRetryablyAndRecovers) {
  ASSERT_FALSE(DagperfBin().empty());
  RouterOptions options;
  options.probe_interval_seconds = 0.02;
  // A single in-flight slot per shard: concurrent clients hammering one
  // route key must overflow and shed at the router.
  options.max_in_flight_per_shard = 1;
  FleetHarness fleet("shed", 2, options);
  ASSERT_GT(fleet.port(), 0);

  constexpr int kClients = 8;
  constexpr int kPerClient = 6;
  std::atomic<int> retries{0};
  std::atomic<int> served{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      protocol::LineClient client;
      for (int r = 0; r < kPerClient; ++r) {
        // Everyone asks for the same key: one shard takes the storm.
        if (EstimateWithRetry(client, fleet.port(), "WC-Q3", c * 100 + r,
                              retries)) {
          served.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  EXPECT_EQ(served.load(), kClients * kPerClient);

  Result<Json> stats = CallJson(fleet.port(), R"({"op":"stats","id":3})");
  ASSERT_TRUE(stats.ok());
  ExpectFleetConservation(stats.value());

  const Result<RouterSummary>& summary = fleet.Stop();
  ASSERT_TRUE(summary.ok());
  // With 8 concurrent clients against 1 slot, the router must have shed at
  // least once — and every shed above was retryable UNAVAILABLE (asserted
  // inside EstimateWithRetry).
  EXPECT_GT(summary->sheds, 0u) << "seed " << ChaosSeed();
}

TEST(FleetTest, ShardKillUnderLoadFailsOverAndRejoinsWarm) {
  ASSERT_FALSE(DagperfBin().empty());
  const std::uint64_t seed = ChaosSeed();
  RouterOptions options;
  options.probe_interval_seconds = 0.02;
  options.readmit_quorum = 2;
  FleetHarness fleet("chaos", 3, options);
  ASSERT_GT(fleet.port(), 0);

  // The workflow population: 16 distinct route keys spread over the ring.
  std::vector<std::string> workflows;
  for (int q = 1; q <= 16; ++q) {
    workflows.push_back("TS-Q" + std::to_string(q));
  }

  // Warm-up: serve each key twice so every shard holds warm state worth
  // snapshotting, then give the 0.2s snapshot timer time to persist it.
  {
    protocol::LineClient client;
    std::atomic<int> retries{0};
    int id = 100000;
    for (int round = 0; round < 2; ++round) {
      for (const std::string& workflow : workflows) {
        ASSERT_TRUE(EstimateWithRetry(client, fleet.port(), workflow, id++,
                                      retries));
      }
    }
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(600));

  // Victim: the shard owning TS-Q1 — guaranteed warm for at least one key.
  const std::string victim =
      fleet.router().OwnerOf(Router::RouteKey("default", "TS-Q1"));
  ASSERT_FALSE(victim.empty());
  double victim_entries_pre = 0;
  pid_t victim_pid = -1;
  std::uint64_t victim_launches_pre = 0;
  {
    Result<Json> stats = CallJson(fleet.port(), R"({"op":"stats","id":4})");
    ASSERT_TRUE(stats.ok());
    const Json* entry = ShardEntry(stats.value(), victim);
    ASSERT_NE(entry, nullptr);
    const Json* cache = entry->Get("stats")->Get("cache");
    ASSERT_NE(cache, nullptr);
    victim_entries_pre = cache->GetNumber("entries", 0);
    EXPECT_GT(victim_entries_pre, 0) << "victim never warmed up";
    for (const ShardInfo& info : fleet.router().Shards()) {
      if (info.shard_id == victim) {
        victim_pid = info.pid;
        victim_launches_pre = info.launches;
      }
    }
    ASSERT_GT(victim_pid, 0);
  }

  // 64 mixed-tenant clients, seeded start jitter, retrying retryables.
  constexpr int kClients = 64;
  constexpr int kPerClient = 4;
  std::mt19937_64 rng(seed);
  std::vector<std::uint64_t> jitters;
  for (int c = 0; c < kClients; ++c) jitters.push_back(rng() % 50000);
  std::atomic<int> retries{0};
  std::atomic<int> served{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::this_thread::sleep_for(std::chrono::microseconds(jitters[c]));
      protocol::LineClient client;
      for (int r = 0; r < kPerClient; ++r) {
        if (EstimateWithRetry(client, fleet.port(),
                              workflows[(c + r) % workflows.size()],
                              c * 1000 + r, retries)) {
          served.fetch_add(1);
        }
      }
    });
  }

  // Kill the victim mid-storm. SIGKILL: no handler runs, no goodbye — the
  // supervisor must notice, restart, and the ring must carry its arc to the
  // successor meanwhile.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_EQ(::kill(victim_pid, SIGKILL), 0);

  for (std::thread& thread : clients) thread.join();
  // Zero lost requests: every one of the 256 eventually succeeded, and any
  // error on the way was retryable (enforced inside EstimateWithRetry).
  EXPECT_EQ(served.load(), kClients * kPerClient);

  // The supervisor restarts the victim and readmission waits for the probe
  // quorum; poll until it is back up.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  bool rejoined = false;
  while (std::chrono::steady_clock::now() < deadline) {
    for (const ShardInfo& info : fleet.router().Shards()) {
      if (info.shard_id == victim && info.state == ShardState::kUp &&
          info.launches > victim_launches_pre) {
        rejoined = true;
      }
    }
    if (rejoined) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(rejoined) << "victim never rejoined the ring (seed " << seed
                        << ")";

  // Warm rejoin: the restarted process restored its periodic DPWARM01
  // snapshot, so its memo starts at >= half its pre-kill population rather
  // than from zero.
  {
    Result<Json> stats = CallJson(fleet.port(), R"({"op":"stats","id":5})");
    ASSERT_TRUE(stats.ok());
    const Json* entry = ShardEntry(stats.value(), victim);
    ASSERT_NE(entry, nullptr);
    ASSERT_TRUE(entry->GetBool("reachable", false));
    const Json* cache = entry->Get("stats")->Get("cache");
    ASSERT_NE(cache, nullptr);
    EXPECT_GE(cache->GetNumber("entries", 0), 0.5 * victim_entries_pre)
        << "restarted shard came back cold (seed " << seed << ")";
    ExpectFleetConservation(stats.value());
  }

  // Graceful drain via the wire: the fleet saves final snapshots and
  // Serve() returns with drained set.
  Result<Json> drained = CallJson(fleet.port(), R"({"op":"drain","id":6})");
  ASSERT_TRUE(drained.ok());
  EXPECT_TRUE(drained.value().GetBool("ok", false)) << drained.value().Dump();

  const Result<RouterSummary>& summary = fleet.Join();
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_TRUE(summary->drained);
  EXPECT_FALSE(summary->stopped);
  EXPECT_GE(summary->restarts, 1u) << "supervisor never restarted the victim";

  // Every shard left a final snapshot behind (drain handoff).
  for (int i = 0; i < 3; ++i) {
    const std::string snapshot =
        fleet.dir() + "/shard-" + std::to_string(i) + "/warm.snapshot";
    EXPECT_TRUE(std::filesystem::exists(snapshot))
        << snapshot << " missing after graceful drain";
  }
}

}  // namespace
}  // namespace router
}  // namespace dagperf
