#include <gtest/gtest.h>

#include <set>

#include "workload/job_profile.h"
#include "workloads/hibench.h"
#include "workloads/micro.h"
#include "workloads/suite.h"
#include "workloads/tpch.h"
#include "workloads/web_analytics.h"

namespace dagperf {
namespace {

TEST(MicroWorkloadsTest, TableOneConfigurations) {
  const JobSpec wc = WordCountSpec();
  EXPECT_TRUE(wc.compress_map_output);
  EXPECT_EQ(wc.replicas, 3);

  const JobSpec tsc = TscSpec();
  EXPECT_TRUE(tsc.compress_map_output);
  EXPECT_EQ(tsc.replicas, 1);
  EXPECT_EQ(tsc.name, "TSC");

  const JobSpec ts = TsSpec();
  EXPECT_FALSE(ts.compress_map_output);
  EXPECT_EQ(ts.replicas, 1);
  EXPECT_EQ(ts.name, "TS");

  EXPECT_EQ(Ts2rSpec().replicas, 2);
  EXPECT_EQ(Ts2rSpec().name, "TS2R");
  EXPECT_EQ(Ts3rSpec().replicas, 3);
  EXPECT_EQ(Ts3rSpec().name, "TS3R");
}

TEST(MicroWorkloadsTest, SpecsCompile) {
  for (const JobSpec& spec :
       {WordCountSpec(), TsSpec(), TscSpec(), Ts2rSpec(), Ts3rSpec()}) {
    EXPECT_TRUE(CompileJob(spec).ok()) << spec.name;
  }
}

TEST(WebAnalyticsTest, FourJobDiamond) {
  const DagWorkflow flow = WebAnalyticsFlow().value();
  ASSERT_EQ(flow.num_jobs(), 4);
  // j1 -> {j2, j3} -> j4.
  EXPECT_EQ(flow.Sources().size(), 1u);
  EXPECT_EQ(flow.children(0).size(), 2u);
  EXPECT_EQ(flow.parents(3).size(), 2u);
  // 4 MapReduce jobs = 8 stages; the paper counts 7 workflow states because
  // two boundaries coincide, but the stage count is fixed by the jobs.
  EXPECT_EQ(flow.TotalStages(), 8);
}

TEST(HiBenchTest, KMeansChainShape) {
  const DagWorkflow flow = KMeansFlow(Bytes::FromGB(10), 3).value();
  // 3 iterations + classification.
  ASSERT_EQ(flow.num_jobs(), 4);
  // Linear chain.
  for (JobId id = 1; id < flow.num_jobs(); ++id) {
    EXPECT_EQ(flow.parents(id).size(), 1u);
  }
  // Classification job is map-only.
  EXPECT_FALSE(flow.job(3).has_reduce());
  // Iteration maps are CPU-heavy: compute demand dominates read demand.
  const auto& read_map = flow.job(0).map.substages.front();
  const double cpu_core_s = read_map.demand[Resource::kCpu];
  const double read_bytes = read_map.demand[Resource::kDiskRead];
  EXPECT_GT(cpu_core_s, read_bytes / 200e6);  // Slower than the disk feed.
}

TEST(HiBenchTest, PageRankChainShape) {
  const DagWorkflow flow = PageRankFlow(Bytes::FromGB(9), 3).value();
  // prepare + 3 x (join, agg).
  ASSERT_EQ(flow.num_jobs(), 7);
  for (JobId id = 1; id < flow.num_jobs(); ++id) {
    EXPECT_EQ(flow.parents(id), std::vector<JobId>{id - 1});
  }
}

TEST(TpchTest, TableSizesSumToTotal) {
  const Bytes total = Bytes::FromGB(80);
  double sum = 0;
  for (TpchTable t :
       {TpchTable::kLineitem, TpchTable::kOrders, TpchTable::kPartsupp,
        TpchTable::kCustomer, TpchTable::kPart, TpchTable::kSupplier,
        TpchTable::kNation, TpchTable::kRegion}) {
    sum += TpchTableSize(t, total).ToGB();
  }
  EXPECT_NEAR(sum, 80.0, 1.0);
  // Lineitem dominates.
  EXPECT_GT(TpchTableSize(TpchTable::kLineitem, total).ToGB(), 50.0);
}

TEST(TpchTest, AllQueriesBuild) {
  for (int q = 1; q <= 22; ++q) {
    const auto flow = TpchQueryFlow(q);
    ASSERT_TRUE(flow.ok()) << "Q" << q << ": " << flow.status().ToString();
    EXPECT_EQ(flow->num_jobs(), TpchQueryJobCount(q)) << "Q" << q;
    EXPECT_GE(flow->num_jobs(), 2) << "Q" << q;
  }
}

TEST(TpchTest, Q21HasNineJobsPerPaper) {
  EXPECT_EQ(TpchQueryJobCount(21), 9);
}

TEST(TpchTest, DataFlowShrinksDownstream) {
  // Aggregation queries end in small jobs: the last job's input should be
  // far below the initial scan volume.
  const DagWorkflow q1 = TpchQueryFlow(1).value();
  const Bytes first = q1.job(0).spec.input;
  const Bytes last = q1.job(q1.num_jobs() - 1).spec.input;
  EXPECT_LT(last.value(), 0.2 * first.value());
}

TEST(TpchTest, FinalJobReplicatedIntermediatesNot) {
  const DagWorkflow q5 = TpchQueryFlow(5).value();
  for (JobId id = 0; id < q5.num_jobs(); ++id) {
    const int expected = id + 1 == q5.num_jobs() ? 3 : 1;
    EXPECT_EQ(q5.job(id).spec.replicas, expected) << "job " << id;
  }
}

TEST(SuiteTest, FiftyOneWorkflows) {
  const std::vector<NamedFlow> suite = TableThreeSuite(/*scale=*/0.05).value();
  ASSERT_EQ(suite.size(), 51u);
  std::set<std::string> names;
  for (const auto& nf : suite) names.insert(nf.name);
  EXPECT_EQ(names.size(), 51u);  // All distinct.
  EXPECT_TRUE(names.count("TS-Q1"));
  EXPECT_TRUE(names.count("TS-Q22"));
  EXPECT_TRUE(names.count("WC-Q21"));
  EXPECT_TRUE(names.count("WC-TS3R"));
  EXPECT_TRUE(names.count("TS-PR"));
}

TEST(SuiteTest, HybridFlowsHaveParallelRoots) {
  const NamedFlow nf = TableThreeFlow("WC-Q5", 0.05).value();
  // WordCount plus the query's scan jobs all start immediately.
  EXPECT_GE(nf.flow.Sources().size(), 2u);
}

TEST(SuiteTest, Q21HybridStageCount) {
  // Q21 has 9 jobs -> 18 stages; paper: "18 stages when run in parallel
  // with the WC job" (i.e. the query side alone).
  const NamedFlow nf = TableThreeFlow("WC-Q21", 0.05).value();
  EXPECT_EQ(nf.flow.num_jobs(), 10);  // WC + 9.
  int query_stages = 0;
  for (JobId id = 0; id < nf.flow.num_jobs(); ++id) {
    if (nf.flow.job(id).name.rfind("Q21-", 0) == 0) {
      query_stages += nf.flow.job(id).has_reduce() ? 2 : 1;
    }
  }
  EXPECT_EQ(query_stages, 18);
}

TEST(SuiteTest, UnknownNameRejected) {
  EXPECT_FALSE(TableThreeFlow("WC-Q23").ok());
  EXPECT_FALSE(TableThreeFlow("bogus").ok());
}

TEST(SuiteTest, ScaleShrinksInputs) {
  const NamedFlow big = TableThreeFlow("WC-TS", 1.0).value();
  const NamedFlow small = TableThreeFlow("WC-TS", 0.1).value();
  EXPECT_NEAR(small.flow.job(0).spec.input.value(),
              0.1 * big.flow.job(0).spec.input.value(), 1.0);
}

}  // namespace
}  // namespace dagperf
