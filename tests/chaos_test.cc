// Chaos tests: seeded fault schedules driven through a real loopback TCP
// server. The seed comes from DAGPERF_CHAOS_SEED (a number, or "random" for
// a random_device draw) and is always logged so any failure reproduces with
// a single env var. Invariants asserted are seed-independent: no crash, no
// hang (the test finishing under its timeout is the assertion), every
// request answered exactly once, and counter conservation
//   submitted == completed + failed + shed + injected admission rejections.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <future>
#include <iostream>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/parallel.h"
#include "model/sweep.h"
#include "resilience/fault.h"
#include "service/line_client.h"
#include "service/server.h"
#include "service/service.h"
#include "workloads/micro.h"
#include "workloads/suite.h"

// Parts of this file exercise the pre-0.8 submission API on purpose
// (deprecated shims must keep working until removal); silence the
// migration warnings the rest of the build is expected to emit.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace dagperf {
namespace {

using resilience::FaultInjector;

/// The schedule seed for this process: DAGPERF_CHAOS_SEED, "random" (drawn
/// once and logged), or 1. Logged either way — chaos failures must carry
/// their repro line.
std::uint64_t ChaosSeed() {
  static const std::uint64_t seed = [] {
    const char* env = std::getenv("DAGPERF_CHAOS_SEED");
    std::uint64_t value = 1;
    if (env != nullptr && env[0] != '\0') {
      if (std::string(env) == "random") {
        std::random_device device;
        value = (static_cast<std::uint64_t>(device()) << 32) ^ device();
      } else {
        value = std::strtoull(env, nullptr, 10);
      }
    }
    std::cout << "[chaos] seed " << value
              << "  (repro: DAGPERF_CHAOS_SEED=" << value << ")" << std::endl;
    return value;
  }();
  return seed;
}

struct InjectorReset {
  InjectorReset() { FaultInjector::Default().ResetAll(); }
  ~InjectorReset() { FaultInjector::Default().ResetAll(); }
};

DagWorkflow TestFlow() {
  Result<NamedFlow> named = TableThreeFlow("TS-Q6", 0.01);
  EXPECT_TRUE(named.ok()) << named.status().ToString();
  return std::move(named).value().flow;
}

class TestTcpServer {
 public:
  TestTcpServer(EstimationService& service, TcpServerOptions options = {}) {
    options.stop = stop_;
    std::promise<int> port_promise;
    std::future<int> port_future = port_promise.get_future();
    options.on_listen = [&port_promise](int port) {
      port_promise.set_value(port);
    };
    thread_ = std::thread(
        [this, &service, options] { result_ = ServeTcp(service, options); });
    port_ = port_future.get();
  }

  ~TestTcpServer() { Stop(); }

  const Result<TcpServeSummary>& Stop() {
    if (thread_.joinable()) {
      stop_.Cancel();
      thread_.join();
    }
    return result_;
  }

  int port() const { return port_; }

 private:
  CancelToken stop_ = CancelToken::Cancellable();
  std::thread thread_;
  int port_ = 0;
  Result<TcpServeSummary> result_ = Status::Internal("serve never ran");
};

/// Thin wrapper over protocol::LineClient (the shared client-side framing
/// implementation). Unlike the transport test's client this one treats early
/// close as data (chaos schedules legitimately sever connections) —
/// ReadLineOrClose reports which happened — and a hang past the deadline is
/// an immediate test failure carrying the repro seed.
class ChaosClient {
 public:
  explicit ChaosClient(int port) { (void)client_.Connect(port); }

  bool connected() const { return client_.connected(); }

  void Close() { client_.Close(); }

  /// Raw bytes, no newline framing — chaos schedules send torn frames on
  /// purpose.
  bool Send(const std::string& bytes) { return client_.SendRaw(bytes).ok(); }

  using LineOrClose = protocol::LineClient::LineOrClose;

  LineOrClose ReadLineOrClose(double timeout_seconds = 20.0) {
    Result<LineOrClose> got = client_.RecvLine(timeout_seconds);
    if (!got.ok()) {
      ADD_FAILURE() << "chaos client hung waiting for a line "
                    << "(seed " << ChaosSeed() << ")";
      return {.closed = true, .line = ""};
    }
    return std::move(got).value();
  }

 private:
  protocol::LineClient client_;
};

std::string EstimateLine(int id) {
  return R"({"op":"estimate","workflow":"q6","id":)" + std::to_string(id) +
         "}\n";
}

/// An estimate opted out of in-flight coalescing: tests that need N
/// *independent* computations in flight (one per worker) must not let
/// identical requests attach to one leader.
std::string UncoalescedEstimateLine(int id) {
  return R"({"op":"estimate","workflow":"q6","coalesce":false,"id":)" +
         std::to_string(id) + "}\n";
}

std::string TenantEstimateLine(const std::string& tenant, int id) {
  return R"({"op":"estimate","workflow":"q6","tenant":")" + tenant +
         R"(","id":)" + std::to_string(id) + "}\n";
}

// ---------------------------------------------------------------------------

TEST(ChaosTest, SameSeedSameFailureSchedule) {
  InjectorReset guard;
  FaultInjector& injector = FaultInjector::Default();
  ASSERT_TRUE(injector
                  .Configure("service.execute",
                             {.probability = 0.3, .error = ErrorCode::kInternal})
                  .ok());

  // Single worker + sequential submission: evaluation order is the request
  // order, so the fire pattern must replay exactly for a fixed seed.
  auto run_schedule = [](std::uint64_t seed) {
    FaultInjector::Default().Arm(seed);
    ServiceOptions options;
    options.threads = 1;
    EstimationService service(options);
    EXPECT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());
    std::vector<int> failed;
    for (int i = 0; i < 40; ++i) {
      ServiceRequest request;
      request.workflow = "q6";
      if (!service.Submit(std::move(request)).get().ok()) failed.push_back(i);
    }
    FaultInjector::Default().Disarm();
    return failed;
  };

  const std::uint64_t seed = ChaosSeed();
  const std::vector<int> first = run_schedule(seed);
  const std::vector<int> second = run_schedule(seed);
  EXPECT_EQ(first, second) << "seed " << seed;
  EXPECT_NE(run_schedule(seed + 1), first);
}

TEST(ChaosTest, FaultScheduleOverLoopbackAnswersEveryRequest) {
  InjectorReset guard;
  FaultInjector& injector = FaultInjector::Default();
  // Service-level faults only: the transport stays honest, so every request
  // must yield exactly one response (possibly an error) with its own id.
  ASSERT_TRUE(injector
                  .Configure("service.execute",
                             {.probability = 0.10, .error = ErrorCode::kInternal})
                  .ok());
  ASSERT_TRUE(injector
                  .Configure("service.admit",
                             {.probability = 0.05,
                              .error = ErrorCode::kResourceExhausted})
                  .ok());
  ASSERT_TRUE(
      injector.Configure("model.task_time", {.probability = 0.2,
                                             .latency_ms = 1.0}).ok());
  ASSERT_TRUE(injector.Configure("memo.insert", {.probability = 0.2,
                                                 .latency_ms = 1.0}).ok());
  ASSERT_TRUE(
      injector.Configure("pool.submit", {.probability = 0.1,
                                         .latency_ms = 1.0}).ok());
  injector.Arm(ChaosSeed());

  ServiceOptions service_options;
  service_options.threads = 4;
  EstimationService service(service_options);
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());
  TestTcpServer server(service);

  constexpr int kClients = 4;
  constexpr int kRequests = 10;
  std::atomic<int> answered{0};
  std::atomic<int> ok_count{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      ChaosClient client(server.port());
      ASSERT_TRUE(client.connected());
      for (int r = 0; r < kRequests; ++r) {
        ASSERT_TRUE(client.Send(EstimateLine(c * 100 + r)));
      }
      for (int r = 0; r < kRequests; ++r) {
        const ChaosClient::LineOrClose got = client.ReadLineOrClose();
        ASSERT_FALSE(got.closed)
            << "connection severed with responses outstanding (seed "
            << ChaosSeed() << ")";
        Result<Json> parsed = Json::Parse(got.line);
        ASSERT_TRUE(parsed.ok()) << got.line;
        EXPECT_EQ(parsed.value().GetNumber("id", -1), c * 100 + r);
        answered.fetch_add(1);
        if (parsed.value().GetBool("ok", false)) ok_count.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  injector.Disarm();

  EXPECT_EQ(answered.load(), kClients * kRequests);

  // Conservation: every admitted slot was released, and every submission is
  // accounted for by exactly one terminal counter or an injected rejection.
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.queue_depth, 0);
  const std::uint64_t admit_rejections =
      injector.GetPoint("service.admit").fires();
  EXPECT_EQ(stats.submitted,
            stats.completed + stats.failed + stats.shed + admit_rejections)
      << "seed " << ChaosSeed();
  EXPECT_EQ(stats.submitted,
            static_cast<std::uint64_t>(kClients * kRequests));
  EXPECT_EQ(ok_count.load(), static_cast<int>(stats.completed));
}

TEST(ChaosTest, TornFramesAndDisconnectsNeverWedgeTheServer) {
  InjectorReset guard;
  FaultInjector& injector = FaultInjector::Default();
  // Transport faults too: reads and writes fail at 10%, accepts at 10% —
  // connections get severed mid-request and mid-response.
  ASSERT_TRUE(injector
                  .Configure("server.read",
                             {.probability = 0.1, .error = ErrorCode::kUnavailable})
                  .ok());
  ASSERT_TRUE(injector
                  .Configure("server.write",
                             {.probability = 0.1, .error = ErrorCode::kUnavailable})
                  .ok());
  ASSERT_TRUE(injector
                  .Configure("server.accept",
                             {.probability = 0.1, .error = ErrorCode::kUnavailable})
                  .ok());
  const std::uint64_t seed = ChaosSeed();
  injector.Arm(seed);

  EstimationService service;
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());
  TcpServerOptions options;
  options.read_idle_timeout_seconds = 0.2;
  TestTcpServer server(service, options);

  std::mt19937_64 rng(seed);
  std::vector<std::thread> clients;
  for (int c = 0; c < 16; ++c) {
    const std::uint64_t behaviour = rng();
    clients.emplace_back([&, c, behaviour] {
      ChaosClient client(server.port());
      if (!client.connected()) return;  // Injected accept failure.
      switch (behaviour % 4) {
        case 0:  // Connect and vanish.
          break;
        case 1:  // Torn frame, then vanish (idle timeout reaps the buffer).
          client.Send(R"({"op":"esti)");
          break;
        case 2:  // Fire a request and never read the response.
          client.Send(EstimateLine(c));
          break;
        case 3: {  // Well-behaved — but must tolerate injected severing.
          if (!client.Send("not json\n" + EstimateLine(c))) break;
          for (int r = 0; r < 2; ++r) {
            if (client.ReadLineOrClose(10.0).closed) break;
          }
          break;
        }
      }
      client.Close();
    });
  }
  for (std::thread& thread : clients) thread.join();
  injector.Disarm();

  // The server survived the storm: a clean client is served end to end.
  std::unique_ptr<ChaosClient> survivor;
  for (int attempt = 0; attempt < 10; ++attempt) {
    survivor = std::make_unique<ChaosClient>(server.port());
    if (survivor->connected()) break;
  }
  ASSERT_TRUE(survivor->connected());
  ASSERT_TRUE(survivor->Send(EstimateLine(999)));
  const ChaosClient::LineOrClose got = survivor->ReadLineOrClose();
  ASSERT_FALSE(got.closed);
  Result<Json> parsed = Json::Parse(got.line);
  ASSERT_TRUE(parsed.ok()) << got.line;
  EXPECT_TRUE(parsed.value().GetBool("ok", false));
  EXPECT_EQ(parsed.value().GetNumber("id", -1), 999);
  EXPECT_EQ(service.Stats().queue_depth, 0);
}

TEST(ChaosTest, GreedyTenantCannotStarveALightOne) {
  InjectorReset guard;
  const std::uint64_t seed = ChaosSeed();
  FaultInjector& injector = FaultInjector::Default();
  // Latency-only injection: every execution costs a few ms, so the greedy
  // tenant's connections genuinely pile up against the small queue.
  ASSERT_TRUE(injector
                  .Configure("service.execute",
                             {.probability = 1.0, .latency_ms = 3.0})
                  .ok());
  injector.Arm(seed);

  ServiceOptions service_options;
  service_options.threads = 2;
  service_options.max_queue_depth = 8;
  EstimationService service(service_options);
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());
  TestTcpServer server(service);

  constexpr int kGreedyConnections = 12;
  constexpr int kPerConnection = 10;
  constexpr int kLightRequests = 8;
  std::atomic<int> greedy_ok{0};
  std::atomic<int> greedy_shed{0};
  std::atomic<int> light_shed{0};

  // The greedy tenant floods from many connections at once (per-connection
  // request handling is sequential, so concurrency needs fan-out); start
  // jitter comes from the chaos seed.
  std::mt19937_64 rng(seed);
  std::vector<std::thread> greedy;
  for (int c = 0; c < kGreedyConnections; ++c) {
    const int jitter_us = static_cast<int>(rng() % 2000);
    greedy.emplace_back([&, c, jitter_us] {
      std::this_thread::sleep_for(std::chrono::microseconds(jitter_us));
      ChaosClient client(server.port());
      ASSERT_TRUE(client.connected());
      for (int r = 0; r < kPerConnection; ++r) {
        const int id = c * 1000 + r;
        ASSERT_TRUE(client.Send(TenantEstimateLine("greedy", id)));
        const ChaosClient::LineOrClose got = client.ReadLineOrClose();
        ASSERT_FALSE(got.closed);
        Result<Json> parsed = Json::Parse(got.line);
        ASSERT_TRUE(parsed.ok()) << got.line;
        EXPECT_EQ(parsed.value().GetNumber("id", -1), id);
        if (parsed.value().GetBool("ok", false)) {
          greedy_ok.fetch_add(1);
          continue;
        }
        // The only way the service may refuse the flood: retryable
        // pushback, never an internal error or a dropped line.
        const Json* error = parsed.value().Get("error");
        ASSERT_NE(error, nullptr) << got.line;
        EXPECT_EQ(error->GetString("code", ""), "RESOURCE_EXHAUSTED")
            << got.line;
        EXPECT_TRUE(error->GetBool("retryable", false)) << got.line;
        greedy_shed.fetch_add(1);
      }
    });
  }

  // The light tenant trickles one request at a time and retries sheds,
  // honouring the server's retry_after_ms pacing hint (capped to keep the
  // test brisk). DRF guarantees its share is never consumed by the flood, so
  // a bounded number of retries must always land every request.
  std::thread light_thread([&] {
    ChaosClient client(server.port());
    ASSERT_TRUE(client.connected());
    for (int r = 0; r < kLightRequests; ++r) {
      bool served = false;
      for (int attempt = 0; attempt < 25 && !served; ++attempt) {
        ASSERT_TRUE(client.Send(TenantEstimateLine("light", 5000 + r)));
        const ChaosClient::LineOrClose got = client.ReadLineOrClose();
        ASSERT_FALSE(got.closed);
        Result<Json> parsed = Json::Parse(got.line);
        ASSERT_TRUE(parsed.ok()) << got.line;
        EXPECT_EQ(parsed.value().GetNumber("id", -1), 5000 + r);
        if (parsed.value().GetBool("ok", false)) {
          served = true;
          break;
        }
        const Json* error = parsed.value().Get("error");
        ASSERT_NE(error, nullptr) << got.line;
        EXPECT_EQ(error->GetString("code", ""), "RESOURCE_EXHAUSTED")
            << got.line;
        EXPECT_TRUE(error->GetBool("retryable", false)) << got.line;
        light_shed.fetch_add(1);
        const double hint = error->GetNumber("retry_after_ms", 5.0);
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            std::min(hint, 20.0)));
      }
      ASSERT_TRUE(served) << "light tenant starved on request " << r
                          << " (seed " << seed << ")";
    }
  });

  for (std::thread& thread : greedy) thread.join();
  light_thread.join();
  injector.Disarm();

  // 12 concurrent connections against 8 queue slots: the flood must have
  // been pushed back at least once, and every refusal above was retryable.
  EXPECT_EQ(greedy_ok.load() + greedy_shed.load(),
            kGreedyConnections * kPerConnection);
  EXPECT_GT(greedy_shed.load(), 0) << "seed " << seed;

  // Per-tenant conservation: all slots returned, every arrival accounted
  // for by exactly one terminal counter.
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.queue_depth, 0);
  bool saw_greedy = false;
  bool saw_light = false;
  for (const TenantRegistry::TenantStats& tenant : stats.tenants) {
    EXPECT_EQ(tenant.inflight, 0) << tenant.name;
    EXPECT_EQ(tenant.queued, 0) << tenant.name;
    EXPECT_EQ(tenant.submitted,
              tenant.completed + tenant.failed + tenant.shed_total)
        << tenant.name << " (seed " << seed << ")";
    if (tenant.name == "greedy") {
      saw_greedy = true;
      EXPECT_EQ(tenant.completed, static_cast<std::uint64_t>(greedy_ok.load()));
      EXPECT_EQ(tenant.shed_total,
                static_cast<std::uint64_t>(greedy_shed.load()));
    }
    if (tenant.name == "light") {
      saw_light = true;
      EXPECT_EQ(tenant.completed, static_cast<std::uint64_t>(kLightRequests));
      EXPECT_EQ(tenant.shed_total,
                static_cast<std::uint64_t>(light_shed.load()));
    }
  }
  EXPECT_TRUE(saw_greedy);
  EXPECT_TRUE(saw_light);
}

/// A task-time source whose queries block until Open() — parks all the
/// service workers so shutdown fires with requests genuinely in flight.
class GateSource : public TaskTimeSource {
 public:
  Duration TaskTime(const EstimationContext&) const override {
    std::unique_lock lock(mutex_);
    ++entered_;
    entered_cv_.notify_all();
    open_cv_.wait(lock, [&] { return open_; });
    return Duration::Seconds(1);
  }

  void Open() {
    {
      std::lock_guard lock(mutex_);
      open_ = true;
    }
    open_cv_.notify_all();
  }

  void WaitUntilEntered(int count) const {
    std::unique_lock lock(mutex_);
    entered_cv_.wait(lock, [&] { return entered_ >= count; });
  }

 private:
  mutable std::mutex mutex_;
  mutable std::condition_variable open_cv_;
  mutable std::condition_variable entered_cv_;
  mutable bool open_ = false;
  mutable int entered_ = 0;
};

TEST(ChaosTest, ShutdownUnderLoadAnswersEveryInflightRequest) {
  constexpr int kInflight = 8;
  ServiceOptions service_options;
  service_options.threads = kInflight;
  EstimationService service(service_options);
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());
  GateSource gate;
  ASSERT_TRUE(service.RegisterSource("default", &gate, "gate").ok());

  TcpServerOptions options;
  options.drain_grace_seconds = 0.1;
  TestTcpServer server(service, options);

  std::vector<std::thread> clients;
  std::atomic<int> unavailable{0};
  std::atomic<int> succeeded{0};
  for (int c = 0; c < kInflight; ++c) {
    clients.emplace_back([&, c] {
      ChaosClient client(server.port());
      ASSERT_TRUE(client.connected());
      ASSERT_TRUE(client.Send(UncoalescedEstimateLine(c)));
      const ChaosClient::LineOrClose got = client.ReadLineOrClose();
      // Shutdown still answers: the in-flight request resolves (ok or
      // UNAVAILABLE{retryable}) and the response is written before the
      // connection unwinds.
      ASSERT_FALSE(got.closed) << "request " << c << " was dropped";
      Result<Json> parsed = Json::Parse(got.line);
      ASSERT_TRUE(parsed.ok()) << got.line;
      EXPECT_EQ(parsed.value().GetNumber("id", -1), c);
      if (parsed.value().GetBool("ok", false)) {
        succeeded.fetch_add(1);
      } else {
        const Json* error = parsed.value().Get("error");
        ASSERT_NE(error, nullptr);
        EXPECT_EQ(error->GetString("code", ""), "UNAVAILABLE");
        EXPECT_TRUE(error->GetBool("retryable", false));
        unavailable.fetch_add(1);
      }
    });
  }
  gate.WaitUntilEntered(kInflight);  // All workers parked mid-estimate.

  // The SIGTERM path: open the gate only after the grace period has lapsed
  // and the shutdown token has fired — workers unwind cooperatively.
  std::thread release([&gate] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    gate.Open();
  });
  const Result<TcpServeSummary>& summary = server.Stop();
  release.join();
  for (std::thread& thread : clients) thread.join();

  ASSERT_TRUE(summary.ok());
  EXPECT_TRUE(summary->stopped);
  EXPECT_FALSE(summary->drained);
  EXPECT_EQ(summary->shutdown.inflight_at_shutdown, kInflight);
  EXPECT_FALSE(summary->shutdown.graceful);
  EXPECT_EQ(summary->shutdown.cancelled, kInflight);
  EXPECT_EQ(succeeded.load() + unavailable.load(), kInflight);
  // `cancelled` counts requests still running when the token fired; each of
  // them either unwound (UNAVAILABLE) or squeaked through to a result.
  EXPECT_GT(unavailable.load(), 0);
  EXPECT_LE(unavailable.load(), summary->shutdown.cancelled);
  EXPECT_EQ(service.Stats().queue_depth, 0);
}

TEST(ChaosTest, HedgedSweepRacesStayBitIdenticalUnderTaskTimeFaults) {
  InjectorReset guard;
  FaultInjector& injector = FaultInjector::Default();

  const ClusterSpec cluster = ClusterSpec::PaperCluster();
  Result<std::vector<DagWorkflow>> flows = BuildReducerCandidates(
      WordCountSpec(Bytes::FromGB(20)), {8, 16, 24, 32, 48, 64, 96, 128});
  ASSERT_TRUE(flows.ok());
  std::vector<SweepCandidate> candidates;
  for (const DagWorkflow& flow : *flows) {
    candidates.push_back({&flow, cluster, flow.name()});
  }
  const BoeModel boe(cluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  const SchedulerConfig scheduler;

  // Golden bits: serial, unhedged, nothing armed.
  SweepOptions serial;
  serial.threads = 1;
  const SweepResult golden = EstimateBatch(candidates, scheduler, source, serial);
  for (const Result<DagEstimate>& estimate : golden.estimates) {
    ASSERT_TRUE(estimate.ok()) << estimate.status().ToString();
  }

  // An explicit pool keeps the batch on the pooled (hedge-armed) path even
  // on a one-core machine, where a `threads` count would be clamped to the
  // hardware and degrade to the serial loop.
  ThreadPool pool(4);

  // Warm the process-wide latency window so the hedge delay is computable.
  SweepOptions warm;
  warm.pool = &pool;
  EstimateBatch(candidates, scheduler, source, warm);

  // Latency-only straggler injection on the memo-miss compute path: a fired
  // query stalls its candidate past the hedge delay, so primaries and
  // hedges genuinely race — on the same memo, under TSan in CI.
  ASSERT_TRUE(injector
                  .Configure("model.task_time",
                             {.probability = 0.05, .latency_ms = 2.0})
                  .ok());
  const std::uint64_t seed = ChaosSeed();
  injector.Arm(seed);

  SweepOptions hedged;
  hedged.pool = &pool;
  hedged.hedge.enabled = true;
  hedged.hedge.min_samples = 1;
  hedged.hedge.quantile = 0.5;
  hedged.hedge.min_delay_ms = 0.05;
  hedged.hedge.max_delay_ms = 0.5;
  const SweepResult raced = EstimateBatch(candidates, scheduler, source, hedged);
  injector.Disarm();

  // Seed-independent invariants: whichever side of each race settled first,
  // the published result carries the bits of the serial run (deterministic
  // source + bit-exact memo), every candidate resolves exactly once, and
  // the hedge ledger balances — a launched hedge either won the race, ran
  // and lost (wasted), or skipped itself before starting. EstimateBatch
  // returning at all is the no-leak assertion: it quiesces outstanding
  // hedges before computing stats.
  ASSERT_EQ(raced.estimates.size(), golden.estimates.size());
  for (size_t i = 0; i < raced.estimates.size(); ++i) {
    ASSERT_TRUE(raced.estimates[i].ok())
        << "seed " << seed << ": " << raced.estimates[i].status().ToString();
    const DagEstimate& a = *raced.estimates[i];
    const DagEstimate& b = *golden.estimates[i];
    EXPECT_EQ(a.makespan.seconds(), b.makespan.seconds()) << "seed " << seed;
    ASSERT_EQ(a.states.size(), b.states.size()) << "seed " << seed;
    for (size_t s = 0; s < a.states.size(); ++s) {
      EXPECT_EQ(a.states[s].start, b.states[s].start);
      EXPECT_EQ(a.states[s].duration, b.states[s].duration);
    }
  }
  EXPECT_EQ(raced.stats.completed, static_cast<int>(candidates.size()));
  EXPECT_LE(raced.stats.hedges_won + raced.stats.hedges_wasted,
            raced.stats.hedges_launched)
      << "seed " << seed;
  for (const double latency_ms : raced.candidate_latency_ms) {
    EXPECT_GE(latency_ms, 0.0) << "seed " << seed;
  }
}

}  // namespace
}  // namespace dagperf
