// Failure-injection tests: the simulator's MapReduce-style task
// re-execution, and how the analytical estimate degrades as failures mount.

#include <gtest/gtest.h>

#include "common/stats.h"
#include "model/state_estimator.h"
#include "model/task_time_source.h"
#include "sim/simulator.h"
#include "workloads/micro.h"

namespace dagperf {
namespace {

ClusterSpec Cluster() {
  ClusterSpec c = ClusterSpec::PaperCluster();
  c.num_nodes = 4;
  return c;
}

DagWorkflow Flow(double gb = 8.0) {
  DagBuilder b("faulty");
  b.AddJob(TsSpec(Bytes::FromGB(gb)));
  return std::move(b).Build().value();
}

SimResult RunWithFailures(double prob, uint64_t seed = 42) {
  SimOptions options;
  options.task_failure_prob = prob;
  options.seed = seed;
  const Simulator sim(Cluster(), SchedulerConfig{}, options);
  return sim.Run(Flow()).value();
}

TEST(FailureInjectionTest, AllTasksStillCompleteExactlyOnce) {
  const SimResult result = RunWithFailures(0.1);
  const DagWorkflow flow = Flow();
  // Every logical task has exactly one *successful* record regardless of
  // how many attempts failed.
  EXPECT_EQ(result.TaskDurations(0, StageKind::kMap).size(),
            static_cast<size_t>(flow.job(0).map.num_tasks));
  EXPECT_EQ(result.TaskDurations(0, StageKind::kReduce).size(),
            static_cast<size_t>(flow.job(0).reduce->num_tasks));
}

TEST(FailureInjectionTest, FailuresSlowTheWorkflowMonotonically) {
  const double t0 = RunWithFailures(0.0).makespan().seconds();
  const double t10 = RunWithFailures(0.10).makespan().seconds();
  const double t30 = RunWithFailures(0.30).makespan().seconds();
  EXPECT_GT(t10, t0);
  EXPECT_GT(t30, t10);
}

TEST(FailureInjectionTest, LostWorkShowsUpInResourceAccounting) {
  // Re-executed attempts consume real resources: total consumption with
  // failures must exceed the failure-free run's.
  SimOptions clean;
  clean.enable_preemption = false;
  SimOptions faulty = clean;
  faulty.task_failure_prob = 0.2;
  const ResourceVector base =
      Simulator(Cluster(), SchedulerConfig{}, clean).Run(Flow())->TotalConsumed();
  const ResourceVector with =
      Simulator(Cluster(), SchedulerConfig{}, faulty).Run(Flow())->TotalConsumed();
  EXPECT_GT(with[Resource::kDiskRead], base[Resource::kDiskRead]);
  EXPECT_GT(with[Resource::kNetwork], base[Resource::kNetwork]);
}

TEST(FailureInjectionTest, EstimateDegradesGracefully) {
  // The estimator does not model failures; its accuracy should fall as the
  // failure rate rises — smoothly, not catastrophically.
  const ClusterSpec cluster = Cluster();
  const DagWorkflow flow = Flow();
  const BoeModel boe(cluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  const StateBasedEstimator estimator(cluster, SchedulerConfig{});
  const double estimate =
      estimator.Estimate(flow, source).value().makespan.seconds();

  // Note the probability applies per sub-stage boundary, so a 3-sub-stage
  // task fails its attempt with probability 1-(1-p)^3.
  double prev_acc = 1.1;
  for (double prob : {0.0, 0.05, 0.1}) {
    const double truth = RunWithFailures(prob).makespan().seconds();
    const double acc = RelativeAccuracy(estimate, truth);
    EXPECT_LT(acc, prev_acc + 0.05);  // Roughly monotone decline.
    prev_acc = acc;
  }
  // At a 10% per-sub-stage failure rate (~25% of attempts dying, ~1.6x
  // slowdown) the failure-blind estimate is degraded but still usable.
  EXPECT_GT(prev_acc, 0.35);
}

TEST(FailureInjectionTest, CertainFailureWouldNeverFinishSoWeBoundIt) {
  // Probability 1 means every attempt dies at its first sub-stage boundary;
  // the time-limit guard must fire instead of hanging.
  SimOptions options;
  options.task_failure_prob = 1.0;
  options.max_sim_seconds = 2000;
  const Simulator sim(Cluster(), SchedulerConfig{}, options);
  const auto result = sim.Run(Flow(1.0));
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace dagperf
