#include "obs/prom.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.h"

namespace dagperf {
namespace {

TEST(PromTest, SanitizesNamesWithPrefix) {
  EXPECT_EQ(obs::PrometheusSanitizeName("service.latency_us"),
            "dagperf_service_latency_us");
  EXPECT_EQ(obs::PrometheusSanitizeName("slo.p99-ms 1m"),
            "dagperf_slo_p99_ms_1m");
  EXPECT_EQ(obs::PrometheusSanitizeName("already_ok:name"),
            "dagperf_already_ok:name");
}

// Golden-format check against a hand-built snapshot: exposition format
// 0.0.4 — counters get _total, histograms render cumulative le buckets with
// a final +Inf equal to _count. The snapshot is constructed directly so the
// golden text is exact and hermetic (no registry state leaks in).
TEST(PromTest, GoldenExposition) {
  obs::MetricsRegistry::Snapshot snap;
  snap.counters.push_back({"service.submitted", 42});
  snap.gauges.push_back({"service.queue_depth", 3.5});
  obs::Histogram::Snapshot hist;
  hist.count = 7;
  hist.sum = 19.0;
  // Buckets: 4 samples in [1,2) (bucket 32), 2 in [2,4) (33), 1 in [8,16)
  // (35). Bucket 34 is empty and must be elided without breaking the
  // cumulative counts.
  hist.buckets[32] = 4;
  hist.buckets[33] = 2;
  hist.buckets[35] = 1;
  snap.histograms.push_back({"service.latency_us", hist});

  const std::string golden =
      "# TYPE dagperf_service_submitted_total counter\n"
      "dagperf_service_submitted_total 42\n"
      "# TYPE dagperf_service_queue_depth gauge\n"
      "dagperf_service_queue_depth 3.5\n"
      "# TYPE dagperf_service_latency_us histogram\n"
      "dagperf_service_latency_us_bucket{le=\"2\"} 4\n"
      "dagperf_service_latency_us_bucket{le=\"4\"} 6\n"
      "dagperf_service_latency_us_bucket{le=\"16\"} 7\n"
      "dagperf_service_latency_us_bucket{le=\"+Inf\"} 7\n"
      "dagperf_service_latency_us_sum 19\n"
      "dagperf_service_latency_us_count 7\n";
  EXPECT_EQ(obs::WritePrometheusText(snap), golden);
}

TEST(PromTest, EmptyHistogramStillWritesInfBucket) {
  obs::MetricsRegistry::Snapshot snap;
  snap.histograms.push_back({"empty", obs::Histogram::Snapshot{}});
  const std::string text = obs::WritePrometheusText(snap);
  EXPECT_NE(text.find("dagperf_empty_bucket{le=\"+Inf\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("dagperf_empty_count 0\n"), std::string::npos);
}

// Two snapshots of the same registry state must render byte-identical text
// (snapshots are name-sorted) — scrapers diff exposition output.
TEST(PromTest, DeterministicAcrossSnapshots) {
  const bool was_enabled = obs::MetricsEnabled();
  obs::SetMetricsEnabled(true);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  registry.GetCounter("prom_test.zulu").Add(1);
  registry.GetCounter("prom_test.alpha").Add(2);
  const std::string first = obs::WritePrometheusText(registry.Snap());
  const std::string second = obs::WritePrometheusText(registry.Snap());
  EXPECT_EQ(first, second);
  // Name-sorted: alpha renders before zulu.
  EXPECT_LT(first.find("prom_test_alpha"), first.find("prom_test_zulu"));
  registry.GetCounter("prom_test.zulu").Reset();
  registry.GetCounter("prom_test.alpha").Reset();
  obs::SetMetricsEnabled(was_enabled);
}

}  // namespace
}  // namespace dagperf
