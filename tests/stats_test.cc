#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace dagperf {
namespace {

TEST(ComputeStatsTest, EmptySampleIsAllZero) {
  SampleStats s = ComputeStats({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 0.0);
}

TEST(ComputeStatsTest, BasicMoments) {
  SampleStats s = ComputeStats({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.0), 1e-12);
}

TEST(ComputeStatsTest, MedianInterpolatesEvenCount) {
  SampleStats s = ComputeStats({1, 2, 3, 10});
  EXPECT_DOUBLE_EQ(s.median, 2.5);
}

TEST(PercentileTest, Endpoints) {
  std::vector<double> v = {5, 1, 3};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 3.0);
}

TEST(ExpectedMaxOfNormalTest, SingleDrawIsMean) {
  EXPECT_DOUBLE_EQ(ExpectedMaxOfNormal(10.0, 2.0, 1), 10.0);
}

TEST(ExpectedMaxOfNormalTest, ZeroStddevIsMean) {
  EXPECT_DOUBLE_EQ(ExpectedMaxOfNormal(10.0, 0.0, 100), 10.0);
}

TEST(ExpectedMaxOfNormalTest, TwoDrawsExact) {
  // E[max of 2 N(0,1)] = 1/sqrt(pi).
  EXPECT_NEAR(ExpectedMaxOfNormal(0.0, 1.0, 2), 1.0 / std::sqrt(M_PI), 1e-12);
}

TEST(ExpectedMaxOfNormalTest, MatchesMonteCarlo) {
  Rng rng(42);
  for (int n : {5, 10, 50, 200}) {
    const int trials = 20000;
    double sum = 0;
    for (int t = 0; t < trials; ++t) {
      double mx = -1e300;
      for (int i = 0; i < n; ++i) mx = std::max(mx, rng.Normal(100.0, 15.0));
      sum += mx;
    }
    const double mc = sum / trials;
    const double approx = ExpectedMaxOfNormal(100.0, 15.0, n);
    // The Gumbel approximation is a few percent accurate in this range.
    EXPECT_NEAR(approx, mc, 0.05 * mc) << "n=" << n;
  }
}

TEST(ExpectedMaxOfNormalTest, MonotoneInN) {
  double prev = ExpectedMaxOfNormal(10, 3, 2);
  for (int n : {4, 8, 16, 64, 256}) {
    const double cur = ExpectedMaxOfNormal(10, 3, n);
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

TEST(RelativeAccuracyTest, PerfectEstimateIsOne) {
  EXPECT_DOUBLE_EQ(RelativeAccuracy(100.0, 100.0), 1.0);
}

TEST(RelativeAccuracyTest, SymmetricErrors) {
  EXPECT_DOUBLE_EQ(RelativeAccuracy(90.0, 100.0), 0.9);
  EXPECT_DOUBLE_EQ(RelativeAccuracy(110.0, 100.0), 0.9);
}

TEST(RelativeAccuracyTest, ClampsAtZero) {
  EXPECT_DOUBLE_EQ(RelativeAccuracy(500.0, 100.0), 0.0);
}

TEST(LeastSquaresTest, RecoversExactLinearModel) {
  // y = 2 + 3x over a few points, features (1, x).
  std::vector<double> x;
  std::vector<double> y;
  for (double v : {0.0, 1.0, 2.0, 5.0, 9.0}) {
    x.push_back(1.0);
    x.push_back(v);
    y.push_back(2.0 + 3.0 * v);
  }
  const std::vector<double> beta = LeastSquares(x, y, 2);
  ASSERT_EQ(beta.size(), 2u);
  EXPECT_NEAR(beta[0], 2.0, 1e-6);
  EXPECT_NEAR(beta[1], 3.0, 1e-6);
}

TEST(LeastSquaresTest, OverdeterminedNoisyFit) {
  Rng rng(5);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.Uniform(0, 10);
    x.push_back(1.0);
    x.push_back(v);
    y.push_back(4.0 - 0.5 * v + rng.Normal(0, 0.01));
  }
  const std::vector<double> beta = LeastSquares(x, y, 2);
  EXPECT_NEAR(beta[0], 4.0, 0.01);
  EXPECT_NEAR(beta[1], -0.5, 0.01);
}

TEST(LeastSquaresTest, SingularColumnYieldsFiniteResult) {
  // Second feature identically zero: coefficient should come back 0, not NaN.
  std::vector<double> x = {1, 0, 1, 0, 1, 0};
  std::vector<double> y = {2, 2, 2};
  const std::vector<double> beta = LeastSquares(x, y, 2);
  EXPECT_NEAR(beta[0], 2.0, 1e-6);
  EXPECT_TRUE(std::isfinite(beta[1]));
}

}  // namespace
}  // namespace dagperf
