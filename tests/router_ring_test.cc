// Consistent-hash ring property tests (router/ring.h). The ring is the
// router's routing brain, so its guarantees are stated as properties over
// large key populations rather than spot checks:
//   - minimal disruption: a shard leaving moves only the keys it owned
//     (~1/N of the population, asserted <= 2/N), everything else stays put;
//   - rejoin restores the exact pre-departure ownership (determinism);
//   - two rings built independently from the same membership agree on every
//     key (restart safety — no hidden per-process state);
//   - virtual-node balance: each shard's share stays within 20% of uniform
//     at N in {2, 4, 8}.

#include "router/ring.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace dagperf {
namespace router {
namespace {

/// Route-key shaped population: "<cluster>#<workflow>" like
/// Router::RouteKey produces.
std::vector<std::string> Keys(int count) {
  std::vector<std::string> keys;
  keys.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    keys.push_back("cluster-" + std::to_string(i % 7) + "#wf-" +
                   std::to_string(i));
  }
  return keys;
}

ConsistentHashRing RingOf(int shards, int vnodes = 128) {
  ConsistentHashRing ring(vnodes);
  for (int s = 0; s < shards; ++s) {
    ring.AddShard("shard-" + std::to_string(s));
  }
  return ring;
}

std::map<std::string, std::string> Owners(
    const ConsistentHashRing& ring, const std::vector<std::string>& keys) {
  std::map<std::string, std::string> owners;
  for (const std::string& key : keys) owners[key] = ring.OwnerOf(key);
  return owners;
}

TEST(ConsistentHashRingTest, EmptyRingOwnsNothing) {
  ConsistentHashRing ring;
  EXPECT_EQ(ring.size(), 0);
  EXPECT_EQ(ring.OwnerOf("anything"), "");
  EXPECT_EQ(ring.SuccessorOf("anything", {}), "");
}

TEST(ConsistentHashRingTest, SingleShardOwnsEverything) {
  ConsistentHashRing ring;
  ring.AddShard("only");
  for (const std::string& key : Keys(100)) {
    EXPECT_EQ(ring.OwnerOf(key), "only");
    // With one shard there is no distinct successor.
    EXPECT_EQ(ring.SuccessorOf(key, {"only"}), "");
  }
}

TEST(ConsistentHashRingTest, DeterministicAcrossIndependentBuilds) {
  // Restart safety: a router that rebuilds its ring from the same shard set
  // must route every key identically — ownership is a pure function of
  // membership, never of insertion history or process state.
  const std::vector<std::string> keys = Keys(2000);
  const ConsistentHashRing a = RingOf(5);
  ConsistentHashRing b(128);
  // Reverse insertion order on purpose.
  for (int s = 4; s >= 0; --s) b.AddShard("shard-" + std::to_string(s));
  EXPECT_EQ(Owners(a, keys), Owners(b, keys));
}

TEST(ConsistentHashRingTest, LeaveMovesOnlyTheDepartedShardsKeys) {
  const std::vector<std::string> keys = Keys(4000);
  for (const int shards : {2, 4, 8}) {
    ConsistentHashRing ring = RingOf(shards);
    const std::map<std::string, std::string> before = Owners(ring, keys);

    const std::string victim = "shard-0";
    ring.RemoveShard(victim);
    const std::map<std::string, std::string> after = Owners(ring, keys);

    std::size_t moved = 0;
    for (const std::string& key : keys) {
      if (before.at(key) == victim) {
        ++moved;
        EXPECT_NE(after.at(key), victim);
      } else {
        // Minimal disruption: a key the victim never owned must not move.
        EXPECT_EQ(after.at(key), before.at(key))
            << key << " moved although " << victim << " never owned it (N="
            << shards << ")";
      }
    }
    // The departed shard owned ~1/N of the keyspace; <= 2/N bounds the skew.
    EXPECT_LE(moved, 2 * keys.size() / static_cast<std::size_t>(shards))
        << "N=" << shards;
    EXPECT_GT(moved, 0u) << "N=" << shards;
  }
}

TEST(ConsistentHashRingTest, RejoinRestoresExactOwnership) {
  const std::vector<std::string> keys = Keys(3000);
  ConsistentHashRing ring = RingOf(4);
  const std::map<std::string, std::string> before = Owners(ring, keys);

  ring.RemoveShard("shard-2");
  ring.AddShard("shard-2");

  // A restarted shard reclaims exactly its old key range — the warm snapshot
  // it reloaded still matches the requests the ring will send it.
  EXPECT_EQ(Owners(ring, keys), before);
}

TEST(ConsistentHashRingTest, VnodeBalanceWithin20PercentOfUniform) {
  const std::vector<std::string> keys = Keys(20000);
  for (const int shards : {2, 4, 8}) {
    const ConsistentHashRing ring = RingOf(shards);
    std::map<std::string, std::size_t> counts;
    for (const std::string& key : keys) ++counts[ring.OwnerOf(key)];
    EXPECT_EQ(counts.size(), static_cast<std::size_t>(shards));

    const double uniform =
        static_cast<double>(keys.size()) / static_cast<double>(shards);
    for (const auto& [shard, count] : counts) {
      const double share = static_cast<double>(count);
      EXPECT_GE(share, 0.8 * uniform)
          << shard << " underloaded at N=" << shards;
      EXPECT_LE(share, 1.2 * uniform)
          << shard << " overloaded at N=" << shards;
    }
  }
}

TEST(ConsistentHashRingTest, SuccessorSkipsOwnerAndExcluded) {
  ConsistentHashRing ring = RingOf(4);
  for (const std::string& key : Keys(500)) {
    const std::string owner = ring.OwnerOf(key);
    const std::string successor = ring.SuccessorOf(key, {owner});
    ASSERT_FALSE(successor.empty());
    EXPECT_NE(successor, owner);

    // Excluding the successor too yields a third distinct shard.
    const std::string third = ring.SuccessorOf(key, {owner, successor});
    ASSERT_FALSE(third.empty());
    EXPECT_NE(third, owner);
    EXPECT_NE(third, successor);

    // Excluding every shard leaves nowhere to go.
    EXPECT_EQ(
        ring.SuccessorOf(key, {"shard-0", "shard-1", "shard-2", "shard-3"}),
        "");
  }
}

TEST(ConsistentHashRingTest, SuccessorIsTheOwnerAfterRemoval) {
  // Failover consistency: the shard RouteAndForward retries on (the
  // successor) is exactly the shard the ring elects once the dead one is
  // removed — reroute-before-removal and reroute-after-removal agree.
  const std::vector<std::string> keys = Keys(1000);
  ConsistentHashRing ring = RingOf(5);
  for (const std::string& key : keys) {
    const std::string owner = ring.OwnerOf(key);
    const std::string successor = ring.SuccessorOf(key, {owner});
    ConsistentHashRing without = ring;
    without.RemoveShard(owner);
    EXPECT_EQ(without.OwnerOf(key), successor) << key;
  }
}

TEST(ConsistentHashRingTest, AddIsIdempotentAndRemoveUnknownIsNoop) {
  ConsistentHashRing ring = RingOf(3);
  const std::vector<std::string> keys = Keys(500);
  const std::map<std::string, std::string> before = Owners(ring, keys);

  ring.AddShard("shard-1");       // Already present.
  ring.RemoveShard("shard-99");   // Never present.
  EXPECT_EQ(ring.size(), 3);
  EXPECT_EQ(Owners(ring, keys), before);
}

}  // namespace
}  // namespace router
}  // namespace dagperf
