// Request-observability integration tests against the real service path:
// RequestRecords captured end-to-end (timings, path class, memo
// attribution), the slo / flightrecorder / metrics verbs over the stream
// transport, a watch subscription over real TCP including a mid-stream
// client disconnect, the Prometheus HTTP scrape endpoint, and the
// drain-time stats epoch reset.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <future>
#include <sstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "common/json.h"
#include "obs/metrics.h"
#include "service/metrics_http.h"
#include "service/protocol.h"
#include "service/server.h"
#include "service/service.h"
#include "workloads/suite.h"

// Parts of this file exercise the pre-0.8 submission API on purpose
// (deprecated shims must keep working until removal); silence the
// migration warnings the rest of the build is expected to emit.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace dagperf {
namespace {

class ScopedMetrics {
 public:
  ScopedMetrics() : was_enabled_(obs::MetricsEnabled()) {
    obs::SetMetricsEnabled(true);
  }
  ~ScopedMetrics() { obs::SetMetricsEnabled(was_enabled_); }

 private:
  bool was_enabled_;
};

DagWorkflow TestFlow() {
  Result<NamedFlow> named = TableThreeFlow("TS-Q6", 0.01);
  EXPECT_TRUE(named.ok()) << named.status().ToString();
  return std::move(named).value().flow;
}

Json MustParse(const std::string& line) {
  Result<Json> parsed = Json::Parse(line);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString() << " in: " << line;
  return parsed.ok() ? std::move(parsed).value() : Json();
}

/// Runs ServeTcp on a background thread (same idiom as the transport tests).
class TestTcpServer {
 public:
  explicit TestTcpServer(EstimationService& service) {
    TcpServerOptions options;
    options.stop = stop_;
    std::promise<int> port_promise;
    std::future<int> port_future = port_promise.get_future();
    options.on_listen = [&port_promise](int port) {
      port_promise.set_value(port);
    };
    thread_ = std::thread(
        [this, &service, options] { result_ = ServeTcp(service, options); });
    port_ = port_future.get();
  }

  ~TestTcpServer() { Stop(); }

  const Result<TcpServeSummary>& Stop() {
    if (thread_.joinable()) {
      stop_.Cancel();
      thread_.join();
    }
    return result_;
  }

  int port() const { return port_; }

 private:
  CancelToken stop_ = CancelToken::Cancellable();
  std::thread thread_;
  int port_ = 0;
  Result<TcpServeSummary> result_ = Status::Internal("serve never ran");
};

/// A blocking loopback client with line-oriented reads.
class TestClient {
 public:
  explicit TestClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(
        ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
        0);
  }

  ~TestClient() { Close(); }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  void Send(const std::string& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      sent += static_cast<std::size_t>(n);
    }
  }

  std::string ReadLine(double timeout_seconds = 10.0) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(timeout_seconds);
    for (;;) {
      const std::size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        std::string line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return line;
      }
      const auto remaining = deadline - std::chrono::steady_clock::now();
      const int wait_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(remaining)
              .count());
      if (wait_ms <= 0) {
        ADD_FAILURE() << "timed out waiting for a response line";
        return "";
      }
      pollfd pfd{fd_, POLLIN, 0};
      if (::poll(&pfd, 1, wait_ms) <= 0) continue;
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        ADD_FAILURE() << "connection closed before a full line arrived";
        return "";
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

TEST(ServiceObsTest, RequestRecordCapturedEndToEnd) {
  ScopedMetrics on;
  EstimationService service;
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());

  ServiceRequest request;
  request.workflow = "q6";
  Result<WorkflowEstimate> served = service.Submit(std::move(request)).get();
  ASSERT_TRUE(served.ok()) << served.status().ToString();

  const obs::FlightRecorder::Dump dump = service.flight_recorder().Snapshot();
  ASSERT_EQ(dump.records.size(), 1u);
  const obs::RequestRecord& record = dump.records.front();
  EXPECT_GT(record.id, 0u);
  EXPECT_STREQ(record.op, "estimate");
  EXPECT_STREQ(record.workflow, "q6");
  EXPECT_STREQ(record.cluster, "default");
  EXPECT_TRUE(record.ok);
  EXPECT_EQ(record.outcome_code, 0);
  // Cold service: every task time was computed, so the path is full replay
  // and the memo reported misses but few hits.
  EXPECT_EQ(record.path, obs::RequestPath::kFullReplay);
  EXPECT_GT(record.states, 0u);
  EXPECT_GT(record.memo_misses, 0u);
  // Timebase sanity: submit <= start <= end, and exec dominates a cold run.
  EXPECT_GE(record.start_us, record.submit_us);
  EXPECT_GE(record.end_us, record.start_us);
  EXPECT_GT(record.total_us(), 0.0);
}

TEST(ServiceObsTest, RepeatRequestClassifiedMemoWarm) {
  ScopedMetrics on;
  EstimationService service;
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());

  for (int i = 0; i < 2; ++i) {
    ServiceRequest request;
    request.workflow = "q6";
    Result<WorkflowEstimate> served = service.Submit(std::move(request)).get();
    ASSERT_TRUE(served.ok()) << served.status().ToString();
  }

  const obs::FlightRecorder::Dump dump = service.flight_recorder().Snapshot();
  ASSERT_EQ(dump.records.size(), 2u);
  EXPECT_EQ(dump.records.front().path, obs::RequestPath::kFullReplay);
  // The second identical request rides the warm state: a prefix-checkpoint
  // resume (incremental) or, failing that, a memo-dominated replay. Either
  // way it must not be classified as another full replay.
  const obs::RequestRecord& warm = dump.records.back();
  EXPECT_NE(warm.path, obs::RequestPath::kFullReplay);
  if (warm.path == obs::RequestPath::kIncremental) {
    EXPECT_GT(warm.resumed_states, 0u);
  } else {
    EXPECT_GT(warm.memo_hits, warm.memo_misses);
  }
}

TEST(ServiceObsTest, FailedRequestPinnedAsErrorExemplar) {
  ScopedMetrics on;
  EstimationService service;
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());

  ServiceRequest request;
  request.workflow = "no-such-flow";
  Result<WorkflowEstimate> served = service.Submit(std::move(request)).get();
  EXPECT_FALSE(served.ok());

  const obs::FlightRecorder::Dump dump = service.flight_recorder().Snapshot();
  ASSERT_EQ(dump.errors.size(), 1u);
  EXPECT_FALSE(dump.errors.front().ok);
  EXPECT_NE(dump.errors.front().outcome_code, 0);
}

TEST(ServiceObsTest, SloAndFlightVerbsOverServeLines) {
  ScopedMetrics on;
  EstimationService service;
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());

  std::istringstream in(
      "{\"op\":\"estimate\",\"workflow\":\"q6\",\"id\":1}\n"
      "{\"op\":\"slo\",\"id\":2}\n"
      "{\"op\":\"flightrecorder\",\"id\":3}\n"
      "{\"op\":\"metrics\",\"format\":\"prom\",\"id\":4}\n"
      "{\"op\":\"drain\",\"id\":5}\n");
  std::ostringstream out;
  const ServeSummary summary = ServeLines(service, in, out);
  EXPECT_EQ(summary.requests, 5u);
  EXPECT_TRUE(summary.drained);

  std::istringstream lines(out.str());
  std::string line;

  ASSERT_TRUE(std::getline(lines, line));  // estimate
  EXPECT_TRUE(MustParse(line).GetBool("ok", false));

  ASSERT_TRUE(std::getline(lines, line));  // slo
  const Json slo = MustParse(line);
  const Json* report = slo.Get("result");
  ASSERT_NE(report, nullptr);
  const Json* total = report->Get("total");
  ASSERT_NE(total, nullptr);
  ASSERT_FALSE(total->AsArray().empty());
  const Json& w10 = total->AsArray()[0];
  EXPECT_EQ(w10.GetNumber("window_s", 0.0), 10.0);
  EXPECT_GE(w10.GetNumber("count", -1.0), 1.0);
  EXPECT_EQ(w10.GetNumber("errors", -1.0), 0.0);
  ASSERT_NE(report->Get("by_class"), nullptr);
  ASSERT_NE(report->Get("objectives"), nullptr);

  ASSERT_TRUE(std::getline(lines, line));  // flightrecorder
  const Json flight = MustParse(line);
  const Json* records = flight.Get("result")->Get("records");
  ASSERT_NE(records, nullptr);
  ASSERT_EQ(records->AsArray().size(), 1u);
  EXPECT_EQ(records->AsArray()[0].GetString("op", ""), "estimate");
  EXPECT_EQ(records->AsArray()[0].GetString("path", ""), "full_replay");

  ASSERT_TRUE(std::getline(lines, line));  // metrics (prom)
  const Json prom = MustParse(line);
  const std::string text = prom.Get("result")->GetString("text", "");
  EXPECT_NE(text.find("dagperf_service_submitted_total"), std::string::npos);
}

TEST(ServiceObsTest, WatchStreamsFramesAndStopsOnClientDisconnect) {
  ScopedMetrics on;
  EstimationService service;
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());
  TestTcpServer server(service);

  // An unbounded watch: the only way it ends is our disconnect.
  TestClient watcher(server.port());
  watcher.Send("{\"op\":\"watch\",\"interval_ms\":20,\"id\":7}\n");
  const Json frame1 = MustParse(watcher.ReadLine());
  EXPECT_TRUE(frame1.GetBool("ok", false));
  ASSERT_NE(frame1.Get("result"), nullptr);
  EXPECT_EQ(frame1.Get("result")->GetNumber("seq", 0.0), 1.0);
  ASSERT_NE(frame1.Get("result")->Get("stats"), nullptr);
  ASSERT_NE(frame1.Get("result")->Get("slo_10s"), nullptr);
  const Json frame2 = MustParse(watcher.ReadLine());
  EXPECT_EQ(frame2.Get("result")->GetNumber("seq", 0.0), 2.0);
  // Hang up mid-stream. The server notices the failed send, abandons the
  // watch, and the connection thread unwinds — Stop() below would hang on
  // the join if it did not.
  watcher.Close();

  // The service stays fully functional for other connections.
  TestClient other(server.port());
  other.Send("{\"op\":\"estimate\",\"workflow\":\"q6\",\"id\":8}\n");
  EXPECT_TRUE(MustParse(other.ReadLine()).GetBool("ok", false));
  other.Close();

  const Result<TcpServeSummary>& summary = server.Stop();
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_GE(summary.value().connections, 2u);
}

TEST(ServiceObsTest, MetricsHttpServesPrometheusScrape) {
  ScopedMetrics on;
  obs::MetricsRegistry::Default().GetCounter("service.submitted").Add(1);

  std::promise<int> port_promise;
  std::future<int> port_future = port_promise.get_future();
  MetricsHttpOptions options;
  options.port = 0;
  options.max_requests = 3;
  options.on_listen = [&port_promise](int port) {
    port_promise.set_value(port);
  };
  bool scraped = false;
  options.before_scrape = [&scraped] { scraped = true; };
  Result<MetricsHttpSummary> summary = Status::Internal("never ran");
  std::thread server([&summary, &options] {
    summary = ServeMetricsHttp(options);
  });
  const int port = port_future.get();

  // Raw socket GET: read until close (HTTP/1.0, Connection: close).
  const auto get = [port](const std::string& target) {
    TestClient client(port);
    client.Send("GET " + target + " HTTP/1.0\r\n\r\n");
    std::string response;
    std::string line = client.ReadLine();
    while (!line.empty() && line != "\r") {
      response += line + "\n";
      line = client.ReadLine();
    }
    // Headers done; the body is newline-terminated text, keep reading until
    // the blank line consumed above is followed by body lines.
    return response;
  };

  const std::string metrics_head = get("/metrics");
  EXPECT_NE(metrics_head.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics_head.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_TRUE(scraped);

  const std::string health = get("/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);

  const std::string missing = get("/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);

  server.join();
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary.value().requests, 3u);

  obs::MetricsRegistry::Default().GetCounter("service.submitted").Reset();
}

TEST(ServiceObsTest, DrainBumpsStatsEpochAndResetsWarmState) {
  ScopedMetrics on;
  EstimationService service;
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());

  for (int i = 0; i < 2; ++i) {
    ServiceRequest request;
    request.workflow = "q6";
    ASSERT_TRUE(service.Submit(std::move(request)).get().ok());
  }
  const ServiceStats before = service.Stats();
  EXPECT_EQ(before.stats_epoch, 0u);
  // The cold first request populated the memo (misses) even if the repeat
  // resumed from a checkpoint instead of re-querying it.
  EXPECT_GT(before.cache.misses, 0u);
  EXPECT_GT(before.cache.entries, 0u);

  ASSERT_TRUE(service.Drain().ok());

  // The warm state was cleared in the same epoch bump, so the exported
  // hit-rate gauge and the counters agree: nothing mixes pre-drain history.
  const ServiceStats after = service.Stats();
  EXPECT_EQ(after.stats_epoch, 1u);
  EXPECT_EQ(after.cache.hits, 0u);
  EXPECT_EQ(after.cache.misses, 0u);
  EXPECT_EQ(after.cache.entries, 0u);
  EXPECT_EQ(
      obs::MetricsRegistry::Default().GetGauge("service.cache_hit_rate").value(),
      0.0);
}

TEST(ServiceObsTest, LiveResetWarmStateIsSafeAndCountsEpochs) {
  ScopedMetrics on;
  EstimationService service;
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());
  service.ResetWarmState();
  service.ResetWarmState();
  EXPECT_EQ(service.Stats().stats_epoch, 2u);
  // Still serves after manual resets; drain adds exactly one more epoch.
  ServiceRequest request;
  request.workflow = "q6";
  EXPECT_TRUE(service.Submit(std::move(request)).get().ok());
  ASSERT_TRUE(service.Drain().ok());
  EXPECT_EQ(service.Stats().stats_epoch, 3u);
}

}  // namespace
}  // namespace dagperf
