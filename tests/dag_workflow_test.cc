#include "dag/dag_workflow.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace dagperf {
namespace {

JobSpec SimpleSpec(const std::string& name) {
  JobSpec spec;
  spec.name = name;
  spec.input = Bytes::FromGB(1);
  spec.num_reduce_tasks = 2;
  return spec;
}

TEST(DagBuilderTest, SingleJob) {
  DagBuilder b("single");
  b.AddJob(SimpleSpec("j0"));
  const DagWorkflow flow = std::move(b).Build().value();
  EXPECT_EQ(flow.num_jobs(), 1);
  EXPECT_EQ(flow.name(), "single");
  EXPECT_EQ(flow.Sources(), std::vector<JobId>{0});
  EXPECT_TRUE(flow.parents(0).empty());
  EXPECT_TRUE(flow.children(0).empty());
}

TEST(DagBuilderTest, DiamondTopology) {
  DagBuilder b("diamond");
  const JobId a = b.AddJob(SimpleSpec("a"));
  const JobId l = b.AddJob(SimpleSpec("l"));
  const JobId r = b.AddJob(SimpleSpec("r"));
  const JobId d = b.AddJob(SimpleSpec("d"));
  b.AddEdge(a, l).AddEdge(a, r).AddEdge(l, d).AddEdge(r, d);
  const DagWorkflow flow = std::move(b).Build().value();

  EXPECT_EQ(flow.Sources(), std::vector<JobId>{a});
  EXPECT_EQ(flow.children(a), (std::vector<JobId>{l, r}));
  EXPECT_EQ(flow.parents(d), (std::vector<JobId>{l, r}));

  const std::vector<JobId> order = flow.TopologicalOrder();
  ASSERT_EQ(order.size(), 4u);
  const auto pos = [&](JobId id) {
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  EXPECT_LT(pos(a), pos(l));
  EXPECT_LT(pos(a), pos(r));
  EXPECT_LT(pos(l), pos(d));
  EXPECT_LT(pos(r), pos(d));
}

TEST(DagBuilderTest, AddJobAfterChains) {
  DagBuilder b("chain");
  const JobId first = b.AddJob(SimpleSpec("first"));
  const JobId second = b.AddJobAfter(first, SimpleSpec("second"));
  const JobId third = b.AddJobAfter(second, SimpleSpec("third"));
  const DagWorkflow flow = std::move(b).Build().value();
  EXPECT_EQ(flow.parents(third), std::vector<JobId>{second});
  EXPECT_EQ(flow.TopologicalOrder(), (std::vector<JobId>{first, second, third}));
}

TEST(DagBuilderTest, RejectsCycle) {
  DagBuilder b("cycle");
  const JobId a = b.AddJob(SimpleSpec("a"));
  const JobId c = b.AddJob(SimpleSpec("c"));
  b.AddEdge(a, c).AddEdge(c, a);
  const auto result = std::move(b).Build();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kInvalidArgument);
}

TEST(DagBuilderTest, RejectsSelfEdge) {
  DagBuilder b("self");
  const JobId a = b.AddJob(SimpleSpec("a"));
  b.AddEdge(a, a);
  EXPECT_FALSE(std::move(b).Build().ok());
}

TEST(DagBuilderTest, RejectsDuplicateEdge) {
  DagBuilder b("dup");
  const JobId a = b.AddJob(SimpleSpec("a"));
  const JobId c = b.AddJob(SimpleSpec("c"));
  b.AddEdge(a, c).AddEdge(a, c);
  EXPECT_FALSE(std::move(b).Build().ok());
}

TEST(DagBuilderTest, RejectsUnknownJobInEdge) {
  DagBuilder b("unknown");
  const JobId a = b.AddJob(SimpleSpec("a"));
  b.AddEdge(a, 7);
  EXPECT_FALSE(std::move(b).Build().ok());
}

TEST(DagBuilderTest, RejectsEmptyWorkflow) {
  DagBuilder b("empty");
  EXPECT_FALSE(std::move(b).Build().ok());
}

TEST(DagBuilderTest, RejectsInvalidJobSpec) {
  DagBuilder b("badspec");
  JobSpec bad = SimpleSpec("bad");
  bad.input = Bytes(-1);
  b.AddJob(bad);
  EXPECT_FALSE(std::move(b).Build().ok());
}

TEST(DagWorkflowTest, TotalStagesCountsMapOnlyJobs) {
  DagBuilder b("stages");
  b.AddJob(SimpleSpec("mr"));  // map + reduce = 2 stages.
  JobSpec map_only = SimpleSpec("m");
  map_only.num_reduce_tasks = 0;
  b.AddJob(map_only);  // 1 stage.
  const DagWorkflow flow = std::move(b).Build().value();
  EXPECT_EQ(flow.TotalStages(), 3);
}

TEST(DagWorkflowTest, MultipleSourcesRunInParallel) {
  DagBuilder b("multi-source");
  const JobId a = b.AddJob(SimpleSpec("a"));
  const JobId c = b.AddJob(SimpleSpec("c"));
  const JobId join = b.AddJob(SimpleSpec("join"));
  b.AddEdge(a, join).AddEdge(c, join);
  const DagWorkflow flow = std::move(b).Build().value();
  EXPECT_EQ(flow.Sources(), (std::vector<JobId>{a, c}));
}

}  // namespace
}  // namespace dagperf
