// Tests of the simulator's resource-usage accounting: conservation of
// consumed bytes/core-seconds against the workload's declared demands, and
// utilisation-based bottleneck identification matching Table I.

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "workloads/micro.h"

namespace dagperf {
namespace {

ClusterSpec Cluster(int nodes = 4) {
  ClusterSpec c = ClusterSpec::PaperCluster();
  c.num_nodes = nodes;
  return c;
}

DagWorkflow SingleJobFlow(const JobSpec& spec) {
  DagBuilder b(spec.name + "-flow");
  b.AddJob(spec);
  return std::move(b).Build().value();
}

TEST(SimUsageTest, ConsumedMatchesDeclaredDemands) {
  // Total consumption per resource must equal the sum of all completed
  // tasks' demands (the fluid simulator neither creates nor loses work).
  JobSpec spec = TsSpec(Bytes::FromGB(4));
  spec.reduce_skew_cv = 0.0;  // Uniform tasks: demands are exact.
  const DagWorkflow flow = SingleJobFlow(spec);
  SimOptions options;
  options.enable_preemption = false;  // Preempted attempts would add extra work.
  const Simulator sim(Cluster(), SchedulerConfig{}, options);
  const SimResult result = sim.Run(flow).value();

  ResourceVector expected;
  const JobProfile& job = flow.job(0);
  expected = expected + job.map.TotalDemand() * job.map.num_tasks;
  expected = expected + job.reduce->TotalDemand() * job.reduce->num_tasks;

  const ResourceVector consumed = result.TotalConsumed();
  for (Resource r : kAllResources) {
    EXPECT_NEAR(consumed[r], expected[r], 1e-6 * std::max(1.0, expected[r]))
        << ResourceName(r);
  }
}

TEST(SimUsageTest, UtilizationNeverExceedsCapacity) {
  const DagWorkflow flow = SingleJobFlow(WordCountSpec(Bytes::FromGB(20)));
  const Simulator sim(Cluster(), SchedulerConfig{}, SimOptions{});
  const SimResult result = sim.Run(flow).value();
  for (const auto& st : result.states()) {
    const ResourceVector util = result.UtilizationInState(st.index);
    for (Resource r : kAllResources) {
      EXPECT_LE(util[r], 1.0 + 1e-6)
          << ResourceName(r) << " in state " << st.index;
      EXPECT_GE(util[r], 0.0);
    }
  }
}

/// Peak utilisation of `r` over `slices` equal windows of the run.
double PeakUtilization(const SimResult& result, Resource r, int slices = 50) {
  const double total = result.makespan().seconds();
  double best = 0;
  for (int i = 0; i < slices; ++i) {
    const ResourceVector util =
        result.UtilizationBetween(i * total / slices, (i + 1) * total / slices);
    best = std::max(best, util[r]);
  }
  return best;
}

TEST(SimUsageTest, WordCountMapPhaseIsCpuSaturated) {
  // WC at 12 tasks/node: during full map waves the CPUs are saturated and
  // hotter than any other resource — the observable behind Table I's "CPU"
  // row. (State averages are diluted by wave tails and task startup, so the
  // check uses peak window utilisation.)
  const DagWorkflow flow = SingleJobFlow(WordCountSpec(Bytes::FromGB(100)));
  const Simulator sim(Cluster(11), SchedulerConfig{}, SimOptions{});
  const SimResult result = sim.Run(flow).value();
  EXPECT_GT(PeakUtilization(result, Resource::kCpu), 0.9);
  // And over the whole map state, CPU dominates the I/O resources.
  const ResourceVector util = result.UtilizationInState(1);
  EXPECT_GT(util[Resource::kCpu], util[Resource::kDiskRead]);
  EXPECT_GT(util[Resource::kCpu], util[Resource::kNetwork]);
}

TEST(SimUsageTest, TeraSortShuffleSaturatesNetwork) {
  // The shuffle sub-stage saturates the NIC even though the whole reduce
  // state averages lower (merge and write sub-stages are disk-bound).
  const DagWorkflow flow = SingleJobFlow(TsSpec(Bytes::FromGB(40)));
  const Simulator sim(Cluster(11), SchedulerConfig{}, SimOptions{});
  const SimResult result = sim.Run(flow).value();
  EXPECT_GT(PeakUtilization(result, Resource::kNetwork, 100), 0.85);
}

TEST(SimUsageTest, WindowQueriesComposable) {
  const DagWorkflow flow = SingleJobFlow(TsSpec(Bytes::FromGB(4)));
  const Simulator sim(Cluster(), SchedulerConfig{}, SimOptions{});
  const SimResult result = sim.Run(flow).value();
  const double t_end = result.makespan().seconds();
  const ResourceVector whole = result.UtilizationBetween(0, t_end);
  const ResourceVector first = result.UtilizationBetween(0, t_end / 2);
  const ResourceVector second = result.UtilizationBetween(t_end / 2, t_end);
  for (Resource r : kAllResources) {
    EXPECT_NEAR(whole[r], 0.5 * (first[r] + second[r]), 1e-6) << ResourceName(r);
  }
  // Degenerate window.
  const ResourceVector empty = result.UtilizationBetween(5, 5);
  for (Resource r : kAllResources) EXPECT_DOUBLE_EQ(empty[r], 0.0);
}

}  // namespace
}  // namespace dagperf
