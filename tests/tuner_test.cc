#include "tuner/tuner.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "workloads/micro.h"
#include "workloads/tpch.h"

namespace dagperf {
namespace {

const ClusterSpec kCluster = ClusterSpec::PaperCluster();
const SchedulerConfig kSched;

TEST(TuneReducersTest, PicksBestExploredCandidate) {
  const ReducerTuning tuning =
      TuneReducers(TsSpec(Bytes::FromGB(50)), kCluster, kSched).value();
  ASSERT_FALSE(tuning.explored.empty());
  for (const auto& c : tuning.explored) {
    EXPECT_GE(c.predicted, tuning.best_time);
    EXPECT_GT(c.knob, 0);
  }
  EXPECT_GT(tuning.best_reducers, 0);
}

TEST(TuneReducersTest, ExplicitCandidatesRespected) {
  const ReducerTuning tuning =
      TuneReducers(TsSpec(Bytes::FromGB(20)), kCluster, kSched, {10, 40, 160})
          .value();
  ASSERT_EQ(tuning.explored.size(), 3u);
  EXPECT_TRUE(tuning.best_reducers == 10 || tuning.best_reducers == 40 ||
              tuning.best_reducers == 160);
}

TEST(TuneReducersTest, TunedNoWorseThanDefaultUnderSimulation) {
  // The chosen configuration must actually be at least as good as the
  // default when executed (simulated), not just predicted better.
  JobSpec job = TsSpec(Bytes::FromGB(50));
  const ReducerTuning tuning = TuneReducers(job, kCluster, kSched).value();

  const auto simulate = [&](int reducers) {
    JobSpec candidate = job;
    candidate.num_reduce_tasks = reducers;
    DagBuilder b("sim");
    b.AddJob(candidate);
    const DagWorkflow flow = std::move(b).Build().value();
    return Simulator(kCluster, kSched, SimOptions{}).Run(flow)->makespan().seconds();
  };
  const double tuned = simulate(tuning.best_reducers);
  const double default_time = simulate(ResolveReducers(job));
  EXPECT_LE(tuned, default_time * 1.1);  // Within noise of the default or better.
}

TEST(TuneReducersTest, RejectsMapOnlyAndBadCandidates) {
  JobSpec map_only = TsSpec(Bytes::FromGB(1));
  map_only.num_reduce_tasks = 0;
  EXPECT_FALSE(TuneReducers(map_only, kCluster, kSched).ok());
  EXPECT_FALSE(
      TuneReducers(TsSpec(Bytes::FromGB(1)), kCluster, kSched, {0}).ok());
}

TEST(DecideCompressionTest, NetworkBoundShuffleWantsCompression) {
  // TeraSort's shuffle saturates the 1 GbE link: compressing 100 GB of
  // intermediate data to 30 GB should be predicted to win.
  const CompressionDecision decision =
      DecideCompression(TsSpec(Bytes::FromGB(100)), kCluster, kSched).value();
  EXPECT_TRUE(decision.compress);
  EXPECT_LT(decision.with_compression, decision.without_compression);
}

TEST(DecideCompressionTest, CpuBoundJobAvoidsCompression) {
  // A CPU-starved job with an expensive codec: the CPU spent compressing
  // dwarfs the I/O it saves.
  JobSpec job = WordCountSpec(Bytes::FromGB(100));
  job.map_compute = Rate::MBps(10);  // Even more CPU-bound than stock WC.
  job.map_selectivity = 0.3;
  job.compress_compute = Rate::MBps(5);  // Pathologically slow codec.
  const CompressionDecision decision =
      DecideCompression(job, kCluster, kSched).value();
  EXPECT_FALSE(decision.compress);
}

TEST(DecideBranchPolicyTest, ComplementaryBottlenecksCoRun) {
  // CPU-bound WC + network-bound TS overlap nicely: co-running wins.
  DagBuilder b("hybrid");
  b.AddJob(WordCountSpec(Bytes::FromGB(50)));
  b.AddJob(TsSpec(Bytes::FromGB(50)));
  const DagWorkflow flow = std::move(b).Build().value();
  const BranchDecision decision =
      DecideBranchPolicy(flow, kCluster, kSched).value();
  EXPECT_EQ(decision.policy, BranchPolicy::kCoRun);
  EXPECT_LT(decision.corun_time, decision.serialized_time);
}

TEST(DecideBranchPolicyTest, RequiresTwoSources) {
  DagBuilder b("single");
  b.AddJob(TsSpec(Bytes::FromGB(1)));
  const DagWorkflow flow = std::move(b).Build().value();
  EXPECT_FALSE(DecideBranchPolicy(flow, kCluster, kSched).ok());
}

TEST(SizeClusterTest, FindsMinimalSizeMonotonically) {
  const DagWorkflow flow = TpchQueryFlow(5).value();
  const Duration deadline = Duration::Seconds(200);
  const ClusterSizing sizing =
      SizeCluster(flow, deadline, kCluster, kSched).value();
  EXPECT_GE(sizing.nodes, 1);
  EXPECT_LE(sizing.predicted, deadline);
  // Minimality: one node fewer must miss the deadline (when > 1).
  if (sizing.nodes > 1) {
    bool found_smaller_passing = false;
    for (const auto& c : sizing.explored) {
      if (c.knob == sizing.nodes - 1 && c.predicted <= deadline) {
        found_smaller_passing = true;
      }
    }
    EXPECT_FALSE(found_smaller_passing);
  }
}

TEST(SizeClusterTest, ImpossibleDeadlineIsNotFound) {
  const DagWorkflow flow = TpchQueryFlow(9).value();
  const auto result =
      SizeCluster(flow, Duration::Seconds(1), kCluster, kSched, /*max_nodes=*/8);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kNotFound);
}

TEST(SizeClusterTest, RejectsBadArguments) {
  const DagWorkflow flow = TpchQueryFlow(1).value();
  EXPECT_FALSE(SizeCluster(flow, Duration(0), kCluster, kSched).ok());
  EXPECT_FALSE(SizeCluster(flow, Duration(100), kCluster, kSched, 0).ok());
}

}  // namespace
}  // namespace dagperf
