// Tests of the estimation service layer (src/service/): admission control
// and load shedding, deadline expiry inside the queue, graceful drain with
// requests in flight, cross-request memo reuse (asserted through the obs
// counters), and the NDJSON wire protocol.

#include "service/service.h"

#include <condition_variable>
#include <future>
#include <mutex>
#include <sstream>
#include <thread>

#include <gtest/gtest.h>

#include "dag/spec_io.h"
#include "obs/metrics.h"
#include "service/protocol.h"
#include "service/server.h"
#include "workloads/suite.h"
#include "workloads/web_analytics.h"

// Parts of this file exercise the pre-0.8 submission API on purpose
// (deprecated shims must keep working until removal); silence the
// migration warnings the rest of the build is expected to emit.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace dagperf {
namespace {

DagWorkflow TestFlow() {
  Result<NamedFlow> named = TableThreeFlow("TS-Q6", 0.01);
  EXPECT_TRUE(named.ok()) << named.status().ToString();
  return std::move(named).value().flow;
}

/// A task-time source whose first query blocks until Open() — holds a
/// service worker mid-estimate so tests can pile requests up behind it.
class GateSource : public TaskTimeSource {
 public:
  Duration TaskTime(const EstimationContext&) const override {
    std::unique_lock lock(mutex_);
    ++entered_;
    entered_cv_.notify_all();
    open_cv_.wait(lock, [&] { return open_; });
    return Duration::Seconds(1);
  }

  void Open() {
    {
      std::lock_guard lock(mutex_);
      open_ = true;
    }
    open_cv_.notify_all();
  }

  /// Blocks until a worker is inside TaskTime (i.e. an estimate is running).
  void WaitUntilEntered() const {
    std::unique_lock lock(mutex_);
    entered_cv_.wait(lock, [&] { return entered_ > 0; });
  }

 private:
  mutable std::mutex mutex_;
  mutable std::condition_variable open_cv_;
  mutable std::condition_variable entered_cv_;
  mutable bool open_ = false;
  mutable int entered_ = 0;
};

TEST(ServiceTest, EstimatesRegisteredWorkflow) {
  EstimationService service;
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());

  ServiceRequest request;
  request.workflow = "q6";
  Result<WorkflowEstimate> served = service.Submit(std::move(request)).get();
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  EXPECT_GT(served.value().estimate.makespan.seconds(), 0.0);
  EXPECT_EQ(served.value().workflow, "q6");
  EXPECT_EQ(served.value().cluster, "default");
  EXPECT_TRUE(served.value().critical_path.empty());

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST(ServiceTest, ExplainFillsCriticalPath) {
  EstimationService service;
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());
  ServiceRequest request;
  request.workflow = "q6";
  request.explain = true;
  Result<WorkflowEstimate> served = service.Submit(std::move(request)).get();
  ASSERT_TRUE(served.ok());
  ASSERT_FALSE(served.value().critical_path.empty());
  // Critical-path segments partition the timeline: durations sum to the
  // makespan.
  double total = 0.0;
  for (const CriticalSegment& s : served.value().critical_path) {
    total += s.duration;
  }
  EXPECT_NEAR(total, served.value().estimate.makespan.seconds(), 1e-9);
}

TEST(ServiceTest, UnknownNamesFailFast) {
  EstimationService service;
  ServiceRequest request;
  request.workflow = "no-such-flow";
  Result<WorkflowEstimate> served = service.Submit(std::move(request)).get();
  ASSERT_FALSE(served.ok());
  EXPECT_EQ(served.status().code(), ErrorCode::kNotFound);

  ServiceRequest no_flow;
  Result<WorkflowEstimate> empty = service.Submit(std::move(no_flow)).get();
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), ErrorCode::kInvalidArgument);

  ServiceRequest bad_cluster;
  bad_cluster.workflow = "no-such-flow";
  bad_cluster.cluster = "no-such-cluster";
  Result<WorkflowEstimate> cluster =
      service.Submit(std::move(bad_cluster)).get();
  EXPECT_FALSE(cluster.ok());
}

TEST(ServiceTest, RegistrationRunsValidationFirewall) {
  EstimationService service;
  ClusterSpec bad = ClusterSpec::PaperCluster();
  bad.num_nodes = -3;
  const Status status = service.RegisterCluster("bad", bad);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument);
}

TEST(ServiceTest, QueueFullShedsWithResourceExhausted) {
  ServiceOptions options;
  options.threads = 1;
  options.max_queue_depth = 1;
  EstimationService service(options);
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());
  GateSource gate;
  ASSERT_TRUE(service.RegisterSource("default", &gate, "gate").ok());

  // First request occupies the only worker, blocked inside the source.
  ServiceRequest first;
  first.workflow = "q6";
  std::future<Result<WorkflowEstimate>> inflight =
      service.Submit(std::move(first));
  gate.WaitUntilEntered();

  // The queue (depth 1) is now full: the next submit must be shed, not
  // queued — its future is ready immediately.
  ServiceRequest second;
  second.workflow = "q6";
  std::future<Result<WorkflowEstimate>> shed = service.Submit(std::move(second));
  ASSERT_EQ(shed.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  Result<WorkflowEstimate> shed_result = shed.get();
  ASSERT_FALSE(shed_result.ok());
  EXPECT_EQ(shed_result.status().code(), ErrorCode::kResourceExhausted);
  EXPECT_TRUE(IsRetryable(shed_result.status().code()));

  gate.Open();
  ASSERT_TRUE(inflight.get().ok());
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.submitted, 2u);
}

TEST(ServiceTest, DeadlineExpiresInQueue) {
  ServiceOptions options;
  options.threads = 1;
  EstimationService service(options);
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());
  GateSource gate;
  ASSERT_TRUE(service.RegisterSource("default", &gate, "gate").ok());

  ServiceRequest first;
  first.workflow = "q6";
  std::future<Result<WorkflowEstimate>> inflight =
      service.Submit(std::move(first));
  gate.WaitUntilEntered();

  // Queued behind the blocked worker with a deadline that expires while it
  // waits: the worker must reject it at dequeue without estimating. Opted
  // out of coalescing — attaching to the in-flight computation would serve
  // it from the leader instead of letting it expire in the queue.
  ServiceRequest doomed;
  doomed.workflow = "q6";
  doomed.coalesce = false;
  doomed.budget.deadline = Deadline::AfterSeconds(0.01);
  std::future<Result<WorkflowEstimate>> expired =
      service.Submit(std::move(doomed));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  gate.Open();

  Result<WorkflowEstimate> result = expired.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kDeadlineExceeded);
  ASSERT_TRUE(inflight.get().ok());
  EXPECT_EQ(service.Stats().expired_in_queue, 1u);
}

TEST(ServiceTest, DrainWaitsForInflightAndRejectsNewWork) {
  ServiceOptions options;
  options.threads = 2;
  EstimationService service(options);
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());
  GateSource gate;
  ASSERT_TRUE(service.RegisterSource("default", &gate, "gate").ok());

  ServiceRequest request;
  request.workflow = "q6";
  std::future<Result<WorkflowEstimate>> inflight =
      service.Submit(std::move(request));
  gate.WaitUntilEntered();

  std::promise<Result<int>> drained_promise;
  std::future<Result<int>> drained = drained_promise.get_future();
  std::thread drainer([&] { drained_promise.set_value(service.Drain()); });

  // The drain must not finish while the estimate is still blocked.
  EXPECT_EQ(drained.wait_for(std::chrono::milliseconds(50)),
            std::future_status::timeout);
  EXPECT_TRUE(service.draining());

  // New work is rejected while draining, with a non-retryable code.
  ServiceRequest late;
  late.workflow = "q6";
  Result<WorkflowEstimate> rejected = service.Submit(std::move(late)).get();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), ErrorCode::kFailedPrecondition);

  gate.Open();
  drainer.join();
  Result<int> drain_result = drained.get();
  ASSERT_TRUE(drain_result.ok());
  EXPECT_GE(drain_result.value(), 1);
  ASSERT_TRUE(inflight.get().ok());
}

TEST(ServiceTest, MemoIsReusedAcrossRequests) {
  obs::SetMetricsEnabled(true);
  obs::Counter& hits = obs::MetricsRegistry::Default().GetCounter("memo.hits");
  const std::uint64_t hits_before = hits.value();

  EstimationService service;
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());

  ServiceRequest first;
  first.workflow = "q6";
  Result<WorkflowEstimate> cold = service.Submit(std::move(first)).get();
  ASSERT_TRUE(cold.ok());
  const TaskTimeMemo::Stats after_cold = service.Stats().cache;
  EXPECT_EQ(after_cold.hits, 0u);
  EXPECT_GT(after_cold.misses, 0u);

  // The identical request again resumes from the cross-request checkpoint
  // store — the whole replay is skipped, so the memo is never even queried —
  // and the answer must be bit-identical.
  ServiceRequest second;
  second.workflow = "q6";
  Result<WorkflowEstimate> warm = service.Submit(std::move(second)).get();
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm.value().estimate.makespan.seconds(),
            cold.value().estimate.makespan.seconds());
  const PrefixCheckpointStore::Stats incremental = service.Stats().incremental;
  EXPECT_GT(incremental.hits, 0u);
  EXPECT_GT(incremental.resumed_states, 0u);

  // With the checkpoints gone the request replays in full, and every
  // task-time query must hit the cross-request memo.
  service.checkpoints().Clear();
  ServiceRequest third;
  third.workflow = "q6";
  Result<WorkflowEstimate> replay = service.Submit(std::move(third)).get();
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay.value().estimate.makespan.seconds(),
            cold.value().estimate.makespan.seconds());

  const TaskTimeMemo::Stats after_warm = service.Stats().cache;
  EXPECT_GT(after_warm.hits, 0u);
  EXPECT_EQ(after_warm.misses, after_cold.misses);
  EXPECT_GT(after_warm.hit_rate(), 0.0);

  // The memo's own obs counter observed the hits too (the service shares
  // the library-wide "memo.*" instrumentation).
  EXPECT_GT(hits.value(), hits_before);
  obs::SetMetricsEnabled(false);
}

TEST(ServiceTest, PerClusterCacheScopesNeverAlias) {
  EstimationService service;
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());
  // Halve every I/O path so task times differ no matter which resource the
  // flow bottlenecks on.
  ClusterSpec other = ClusterSpec::PaperCluster();
  other.node.disk_read_bw = Rate::MBps(100);
  other.node.disk_write_bw = Rate::MBps(90);
  other.node.network_bw = Rate::MBps(60);
  ASSERT_TRUE(service.RegisterCluster("big-nodes", other).ok());

  ServiceRequest on_default;
  on_default.workflow = "q6";
  Result<WorkflowEstimate> base = service.Submit(std::move(on_default)).get();
  ASSERT_TRUE(base.ok());

  // Same workflow on different hardware: the scoped memo must not serve the
  // default cluster's entries, so the answers differ.
  ServiceRequest on_big;
  on_big.workflow = "q6";
  on_big.cluster = "big-nodes";
  Result<WorkflowEstimate> big = service.Submit(std::move(on_big)).get();
  ASSERT_TRUE(big.ok());
  EXPECT_NE(base.value().estimate.makespan.seconds(),
            big.value().estimate.makespan.seconds());
}

TEST(ServiceTest, SweepSharesMemoAndFindsBest) {
  EstimationService service;
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());
  ServiceSweepRequest sweep;
  sweep.workflow = "q6";
  sweep.nodes_list = {2, 4, 8};
  Result<ServiceSweepResult> served = service.SubmitSweep(std::move(sweep)).get();
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  const SweepResult& result = served.value().sweep;
  ASSERT_EQ(result.estimates.size(), 3u);
  EXPECT_EQ(result.stats.completed, 3);
  ASSERT_GE(result.stats.best_index, 0);
  // More nodes, faster: best candidate is the largest cluster.
  EXPECT_EQ(served.value().nodes_list[result.stats.best_index], 8);

  ServiceSweepRequest empty;
  empty.workflow = "q6";
  Result<ServiceSweepResult> bad = service.SubmitSweep(std::move(empty)).get();
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), ErrorCode::kInvalidArgument);
}

TEST(ServiceTest, BatchAdmitsIndependently) {
  ServiceOptions options;
  options.threads = 1;
  options.max_queue_depth = 2;
  EstimationService service(options);
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());
  GateSource gate;
  ASSERT_TRUE(service.RegisterSource("default", &gate, "gate").ok());

  std::vector<ServiceRequest> requests(3);
  for (ServiceRequest& r : requests) r.workflow = "q6";
  auto futures = service.SubmitBatch(std::move(requests));
  ASSERT_EQ(futures.size(), 3u);
  // Queue depth 2: the batch's tail is shed, the head is queued.
  ASSERT_EQ(futures[2].wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(futures[2].get().status().code(), ErrorCode::kResourceExhausted);
  gate.Open();
  EXPECT_TRUE(futures[0].get().ok());
  EXPECT_TRUE(futures[1].get().ok());
}

// ---------------------------------------------------------------------------
// Wire protocol.

TEST(ProtocolTest, EstimateRoundTrip) {
  EstimationService service;
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());
  Protocol protocol(&service);

  const std::string response =
      protocol.HandleLine(R"({"op":"estimate","workflow":"q6","id":42})");
  Result<Json> parsed = Json::Parse(response);
  ASSERT_TRUE(parsed.ok()) << response;
  EXPECT_TRUE(parsed.value().GetBool("ok", false));
  EXPECT_EQ(parsed.value().GetNumber("id", -1), 42);
  const Json* result = parsed.value().Get("result");
  ASSERT_NE(result, nullptr);
  EXPECT_GT(result->GetNumber("makespan_s", 0.0), 0.0);
  EXPECT_EQ(result->GetString("workflow", ""), "q6");
  // One line, compact: the NDJSON framing invariant.
  EXPECT_EQ(response.find('\n'), std::string::npos);
}

TEST(ProtocolTest, ErrorsUseStableCodeVocabulary) {
  EstimationService service;
  Protocol protocol(&service);

  const auto error_code = [&](const std::string& line) {
    Result<Json> parsed = Json::Parse(protocol.HandleLine(line));
    EXPECT_TRUE(parsed.ok());
    EXPECT_FALSE(parsed.value().GetBool("ok", true));
    const Json* error = parsed.value().Get("error");
    return error == nullptr ? std::string() : error->GetString("code", "");
  };

  // Malformed JSON is the protocol-level PARSE_ERROR (never retryable, with
  // an explicit null id); valid-but-wrong-shaped documents keep the status
  // vocabulary.
  EXPECT_EQ(error_code("this is not json"), "PARSE_ERROR");
  EXPECT_EQ(error_code("[1,2,3]"), "INVALID_ARGUMENT");
  EXPECT_EQ(error_code(R"({"op":"bogus"})"), "INVALID_ARGUMENT");
  EXPECT_EQ(error_code(R"({"op":"estimate"})"), "INVALID_ARGUMENT");
  EXPECT_EQ(error_code(R"({"op":"estimate","workflow":"nope"})"), "NOT_FOUND");
  EXPECT_EQ(error_code(R"({"op":"sweep","workflow":"nope"})"),
            "INVALID_ARGUMENT");
  EXPECT_FALSE(protocol.drain_requested());
}

TEST(ProtocolTest, StatsAndDrainVerbs) {
  EstimationService service;
  Protocol protocol(&service);

  Result<Json> stats = Json::Parse(protocol.HandleLine(R"({"op":"stats"})"));
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats.value().GetBool("ok", false));
  EXPECT_FALSE(protocol.drain_requested());

  Result<Json> drain = Json::Parse(protocol.HandleLine(R"({"op":"drain"})"));
  ASSERT_TRUE(drain.ok());
  EXPECT_TRUE(drain.value().GetBool("ok", false));
  EXPECT_TRUE(protocol.drain_requested());
  EXPECT_TRUE(service.draining());
}

TEST(ProtocolTest, InlineFlowDocument) {
  EstimationService service;
  Protocol protocol(&service);
  Result<DagWorkflow> flow = WebAnalyticsFlow(Bytes::FromGB(1));
  ASSERT_TRUE(flow.ok());
  Json request = Json::MakeObject();
  request.Set("op", Json::MakeString("estimate"));
  request.Set("flow", WorkflowToJson(flow.value()));
  Result<Json> parsed = Json::Parse(protocol.HandleLine(request.DumpCompact()));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().GetBool("ok", false))
      << protocol.HandleLine(request.DumpCompact());
  EXPECT_GT(parsed.value().Get("result")->GetNumber("makespan_s", 0.0), 0.0);
}

TEST(ServerTest, ServeLinesPumpsUntilDrain) {
  EstimationService service;
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());
  std::istringstream in(
      "{\"op\":\"estimate\",\"workflow\":\"q6\",\"id\":1}\n"
      "\n"
      "{\"op\":\"stats\",\"id\":2}\n"
      "{\"op\":\"drain\",\"id\":3}\n"
      "{\"op\":\"stats\",\"id\":4}\n");
  std::ostringstream out;
  const ServeSummary summary = ServeLines(service, in, out);
  EXPECT_EQ(summary.requests, 3u);  // Blank skipped; nothing after drain.
  EXPECT_TRUE(summary.drained);
  // Exactly one response line per request.
  int lines = 0;
  for (char c : out.str()) lines += c == '\n';
  EXPECT_EQ(lines, 3);
}

TEST(ServiceTest, CoalescesIdenticalInflightRequests) {
  ServiceOptions options;
  options.threads = 1;
  EstimationService service(options);
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());
  GateSource gate;
  ASSERT_TRUE(service.RegisterSource("default", &gate, "gate").ok());

  // Leader occupies the only worker, blocked inside the source with the
  // coalesce group registered.
  std::future<Result<EstimateResponse>> leader =
      service.Submit(EstimateRequest::For("q6"));
  gate.WaitUntilEntered();

  // Identical submissions attach synchronously — Submit returns with the
  // waiter registered, no pool task, no queue slot consumed.
  std::vector<std::future<Result<EstimateResponse>>> followers;
  for (int i = 0; i < 3; ++i) {
    followers.push_back(service.Submit(EstimateRequest::For("q6")));
  }
  EXPECT_EQ(service.Stats().coalesce_attached, 3u);

  gate.Open();
  Result<EstimateResponse> lead = leader.get();
  ASSERT_TRUE(lead.ok()) << lead.status().ToString();
  EXPECT_FALSE(lead.value().estimate->coalesced);
  for (auto& follower : followers) {
    Result<EstimateResponse> served = follower.get();
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    const WorkflowEstimate& estimate = *served.value().estimate;
    // Bit-identical to the leader's computation, marked as attached, with
    // zero service time (the waiter never ran the estimator).
    EXPECT_TRUE(estimate.coalesced);
    EXPECT_EQ(estimate.estimate.makespan.seconds(),
              lead.value().estimate->estimate.makespan.seconds());
    EXPECT_EQ(estimate.service_ms, 0.0);
    EXPECT_EQ(estimate.workflow, "q6");
  }

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.coalesce_leaders, 1u);
  EXPECT_EQ(stats.coalesce_attached, 3u);
}

TEST(ServiceTest, CancellingOneWaiterDoesNotCancelTheLeader) {
  ServiceOptions options;
  options.threads = 1;
  EstimationService service(options);
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());
  GateSource gate;
  ASSERT_TRUE(service.RegisterSource("default", &gate, "gate").ok());

  std::future<Result<EstimateResponse>> leader =
      service.Submit(EstimateRequest::For("q6"));
  gate.WaitUntilEntered();

  CancelToken waiter_cancel = CancelToken::Cancellable();
  std::future<Result<EstimateResponse>> waiter =
      service.Submit(EstimateRequest::For("q6").WithCancel(waiter_cancel));
  ASSERT_EQ(service.Stats().coalesce_attached, 1u);

  // The waiter gives up; the leader (whose caller never cancelled) must
  // keep computing — group abandonment requires every member to cancel.
  waiter_cancel.Cancel();
  gate.Open();

  Result<EstimateResponse> lead = leader.get();
  ASSERT_TRUE(lead.ok()) << lead.status().ToString();
  Result<EstimateResponse> cancelled = waiter.get();
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), ErrorCode::kCancelled);
}

TEST(ServiceTest, CoalescingOptOutRunsItsOwnComputation) {
  ServiceOptions options;
  options.threads = 1;
  EstimationService service(options);
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());
  GateSource gate;
  ASSERT_TRUE(service.RegisterSource("default", &gate, "gate").ok());

  std::future<Result<EstimateResponse>> first =
      service.Submit(EstimateRequest::For("q6"));
  gate.WaitUntilEntered();

  // Opted out: queues behind the worker instead of attaching.
  std::future<Result<EstimateResponse>> second =
      service.Submit(EstimateRequest::For("q6").WithoutCoalescing());
  EXPECT_EQ(service.Stats().coalesce_attached, 0u);

  gate.Open();
  Result<EstimateResponse> a = first.get();
  Result<EstimateResponse> b = second.get();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(a.value().estimate->coalesced);
  EXPECT_FALSE(b.value().estimate->coalesced);

  const ServiceStats stats = service.Stats();
  // A leader with no attached waiters is not a coalesce leader.
  EXPECT_EQ(stats.coalesce_leaders, 0u);
  EXPECT_EQ(stats.coalesce_attached, 0u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(ServiceTest, DrainResetsPerShardMemoCounters) {
  EstimationService service;
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());

  // Two serves: the second hits the memo warmed by the first.
  for (int i = 0; i < 2; ++i) {
    Result<EstimateResponse> served =
        service.Submit(EstimateRequest::For("q6")).get();
    ASSERT_TRUE(served.ok());
  }
  const ServiceStats warm = service.Stats();
  EXPECT_GT(warm.cache.hits + warm.cache.misses, 0u);
  EXPECT_GT(warm.cache.entries, 0u);

  // Drain resets the warm state; the post-drain stats recompute must see
  // every per-shard counter zeroed — no pre-drain numerator can leak into
  // a hit rate computed in the new epoch.
  ASSERT_TRUE(service.Drain().ok());
  const ServiceStats cold = service.Stats();
  EXPECT_EQ(cold.cache.hits, 0u);
  EXPECT_EQ(cold.cache.misses, 0u);
  EXPECT_EQ(cold.cache.insert_races, 0u);
  EXPECT_EQ(cold.cache.entries, 0u);
  EXPECT_EQ(cold.cache.shards, TaskTimeMemo::kShardCount);
  EXPECT_EQ(cold.stats_epoch, warm.stats_epoch + 1);
}

}  // namespace
}  // namespace dagperf
