#include "common/status.h"

#include <gtest/gtest.h>

namespace dagperf {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad input");
}

TEST(StatusTest, Factories) {
  EXPECT_EQ(Status::NotFound("x").code(), ErrorCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), ErrorCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(r.status().message(), "missing");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "hello");
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> r(Status::Internal("boom"));
  EXPECT_DEATH({ (void)r.value(); }, "boom");
}

}  // namespace
}  // namespace dagperf
