#include "obs/window.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/slo.h"

namespace dagperf {
namespace {

/// Enables metrics for the test body and restores the previous state —
/// the flag is process-wide and other tests rely on the default (off).
class ScopedMetrics {
 public:
  ScopedMetrics() : was_enabled_(obs::MetricsEnabled()) {
    obs::SetMetricsEnabled(true);
  }
  ~ScopedMetrics() { obs::SetMetricsEnabled(was_enabled_); }

 private:
  bool was_enabled_;
};

TEST(WindowedHistogramTest, DisabledRecordingIsANoOp) {
  obs::WindowedHistogram histogram;
  ASSERT_FALSE(obs::MetricsEnabled());
  histogram.Record(5.0, /*now_us=*/1e6);
  EXPECT_EQ(histogram.Snap(60.0, 1e6).count, 0u);
}

TEST(WindowedHistogramTest, EmptyWindowQuantileIsZero) {
  ScopedMetrics on;
  obs::WindowedHistogram histogram;
  const obs::Histogram::Snapshot snap = histogram.Snap(10.0, /*now_us=*/1e6);
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0.0);
  EXPECT_EQ(snap.Quantile(0.5), 0.0);
  EXPECT_EQ(snap.Quantile(0.99), 0.0);
  EXPECT_EQ(snap.mean(), 0.0);
}

TEST(WindowedHistogramTest, OverflowAndUnderflowLandInEdgeBuckets) {
  ScopedMetrics on;
  obs::WindowedHistogram histogram;
  const double now = 1e6;
  histogram.Record(1e300, now);   // Beyond the top bucket's range.
  histogram.Record(-3.0, now);    // Non-positive: bucket 0.
  histogram.Record(0.0, now);     // Non-positive: bucket 0.
  const obs::Histogram::Snapshot snap = histogram.Snap(10.0, now);
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.buckets[obs::Histogram::kBuckets - 1], 1u);
  EXPECT_EQ(snap.buckets[0], 2u);
  // The quantile of an overflow-heavy window still answers with the top
  // bucket's midpoint instead of infinity or a crash.
  EXPECT_GT(snap.Quantile(0.99), 0.0);
}

TEST(WindowedHistogramTest, SamplesExpireWithTheirEpochs) {
  ScopedMetrics on;
  obs::WindowedHistogram histogram;  // 5 s epochs.
  double now = 100e6;
  histogram.Record(4.0, now);
  EXPECT_EQ(histogram.Snap(10.0, now).count, 1u);
  // 8 s later the sample's epoch is outside a 5 s lookback but inside 15 s.
  now += 8e6;
  EXPECT_EQ(histogram.Snap(5.0, now).count, 0u);
  EXPECT_EQ(histogram.Snap(15.0, now).count, 1u);
  // Far enough ahead, every window is empty again.
  now += 400e6;
  EXPECT_EQ(histogram.Snap(300.0, now).count, 0u);
}

TEST(WindowedHistogramTest, RingRecyclesSlotsAfterFullRotation) {
  ScopedMetrics on;
  obs::WindowedHistogram histogram;  // 64 slots x 5 s = 320 s of ring.
  const double start = 10e6;
  histogram.Record(1.0, start);
  // One epoch beyond a full rotation reuses the first sample's slot.
  const double wrapped = start + (obs::kWindowEpochs + 1) * 5e6;
  histogram.Record(2.0, wrapped);
  const obs::Histogram::Snapshot snap = histogram.Snap(1000.0, wrapped);
  // The old sample was recycled away even though the window asked for
  // everything: only live epochs inside the ring are summed.
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.sum, 2.0);
}

TEST(WindowedCounterTest, SumsOnlyTheRequestedWindow) {
  ScopedMetrics on;
  obs::WindowedCounter counter;
  double now = 50e6;
  counter.Add(3, now);
  now += 6e6;  // Next epoch.
  counter.Add(5, now);
  EXPECT_EQ(counter.Sum(5.0, now), 5u);
  EXPECT_EQ(counter.Sum(60.0, now), 8u);
}

// Concurrent writers racing an epoch rotation: total counts must be
// conserved (no sample lost, none double counted). Run under TSan by the
// sanitizer CI job.
TEST(WindowedHistogramTest, ConcurrentWritersAcrossRotationConserveSamples) {
  ScopedMetrics on;
  obs::WindowedHistogram histogram;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  const double base = 1e6;
  std::atomic<int> barrier{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, &barrier, base, t] {
      barrier.fetch_add(1);
      while (barrier.load() < kThreads) {
      }
      for (int i = 0; i < kPerThread; ++i) {
        // Timestamps sweep across ~8 epoch boundaries while all threads
        // hammer, forcing rotations to race recordings.
        const double now =
            base + (static_cast<double>(i) / kPerThread) * 40e6 + t * 1e3;
        histogram.Record(1.0, now);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const obs::Histogram::Snapshot snap =
      histogram.Snap(300.0, base + 40e6);
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.sum, static_cast<double>(kThreads) * kPerThread);
}

TEST(SloTrackerTest, ReportsWindowedLatencyAndBurnRates) {
  ScopedMetrics on;
  obs::SloObjectives objectives;
  objectives.p99_ms = 10.0;
  objectives.availability = 0.99;
  obs::SloTracker tracker(objectives);
  double now = 1e6;
  // 8 fast successes, 1 slow success (over the p99 objective), 1 error.
  for (int i = 0; i < 8; ++i) {
    tracker.RecordOutcome(obs::OpClass::kEstimate, 2.0, true, true, true, now);
  }
  tracker.RecordOutcome(obs::OpClass::kEstimate, 50.0, true, true, true, now);
  tracker.RecordOutcome(obs::OpClass::kEstimate, 3.0, false, true, false, now);

  const obs::SloTracker::Report report = tracker.Snapshot(now);
  const obs::SloTracker::WindowReport& w10 = report.total[0];
  EXPECT_EQ(w10.window_seconds, 10.0);
  EXPECT_EQ(w10.count, 10u);
  EXPECT_EQ(w10.errors, 1u);
  EXPECT_DOUBLE_EQ(w10.error_rate, 0.1);
  EXPECT_DOUBLE_EQ(w10.rps, 1.0);
  EXPECT_DOUBLE_EQ(w10.deadline_hit_rate, 0.9);
  // 1 of 10 over the 10 ms objective (bucket resolution keeps it exact here:
  // 50 ms and 10 ms land in different pow-2 buckets).
  EXPECT_NEAR(w10.frac_over_objective, 0.1, 1e-9);
  // availability burn: 0.1 error rate against a 1% budget = 10x.
  EXPECT_NEAR(w10.availability_burn, 10.0, 1e-9);
  // latency burn: 10% over-objective against the 1% a p99 target budgets.
  EXPECT_NEAR(w10.latency_burn, 10.0, 1e-6);
  // Per-class attribution: all traffic was kEstimate.
  EXPECT_EQ(report.by_class[0].windows[0].count, 10u);
  EXPECT_EQ(report.by_class[1].windows[0].count, 0u);

  // Outside the 10 s window the evidence expires; the 5 m window keeps it.
  now += 30e6;
  const obs::SloTracker::Report later = tracker.Snapshot(now);
  EXPECT_EQ(later.total[0].count, 0u);
  EXPECT_EQ(later.total[0].deadline_hit_rate, 1.0);  // Vacuous when empty.
  EXPECT_EQ(later.total[2].count, 10u);
}

TEST(SloTrackerTest, PublishGaugesExportsAggregates) {
  ScopedMetrics on;
  obs::SloTracker tracker;
  const double now = 1e6;
  tracker.RecordOutcome(obs::OpClass::kSweep, 5.0, true, false, true, now);
  tracker.PublishGauges(tracker.Snapshot(now));
  obs::Gauge& rps = obs::MetricsRegistry::Default().GetGauge("slo.rps_1m");
  EXPECT_GT(rps.value(), 0.0);
  obs::Gauge& hit =
      obs::MetricsRegistry::Default().GetGauge("slo.deadline_hit_rate_1m");
  EXPECT_EQ(hit.value(), 1.0);
}

TEST(SloTrackerTest, OpClassMapping) {
  EXPECT_EQ(obs::OpClassFor("estimate"), obs::OpClass::kEstimate);
  EXPECT_EQ(obs::OpClassFor("explain"), obs::OpClass::kExplain);
  EXPECT_EQ(obs::OpClassFor("sweep"), obs::OpClass::kSweep);
  EXPECT_EQ(obs::OpClassFor("stats"), obs::OpClass::kOther);
  EXPECT_STREQ(obs::OpClassName(obs::OpClass::kEstimate), "estimate");
}

}  // namespace
}  // namespace dagperf
