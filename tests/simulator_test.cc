#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/stats.h"

namespace dagperf {
namespace {

ClusterSpec SmallCluster(int nodes = 2) {
  ClusterSpec c = ClusterSpec::PaperCluster();
  c.num_nodes = nodes;
  return c;
}

SchedulerConfig DefaultSched(int max_tasks_per_node = 0) {
  SchedulerConfig s;
  s.max_tasks_per_node = max_tasks_per_node;
  return s;
}

SimOptions NoStartup() {
  SimOptions o;
  o.task_startup_seconds = 0.0;
  return o;
}

JobSpec TinyJob(const std::string& name, double input_gb = 1.0) {
  JobSpec spec;
  spec.name = name;
  spec.input = Bytes::FromGB(input_gb);
  spec.split_size = Bytes::FromMB(256);
  spec.num_reduce_tasks = 2;
  spec.replicas = 1;
  spec.remote_read_fraction = 0.0;
  return spec;
}

DagWorkflow SingleJobFlow(const JobSpec& spec) {
  DagBuilder b(spec.name + "-flow");
  b.AddJob(spec);
  return std::move(b).Build().value();
}

TEST(SimulatorTest, SingleMapOnlyJobCompletes) {
  JobSpec spec = TinyJob("m");
  spec.num_reduce_tasks = 0;
  spec.map_selectivity = 0.0;  // Pure scan, no output.
  const Simulator sim(SmallCluster(), DefaultSched(), NoStartup());
  const SimResult result = sim.Run(SingleJobFlow(spec)).value();
  EXPECT_GT(result.makespan().seconds(), 0.0);
  // 4 map tasks recorded, no reduce tasks.
  EXPECT_EQ(result.TaskDurations(0, StageKind::kMap).size(), 4u);
  EXPECT_TRUE(result.TaskDurations(0, StageKind::kReduce).empty());
  ASSERT_EQ(result.stages().size(), 1u);
}

TEST(SimulatorTest, MapThenReduceOrdering) {
  const Simulator sim(SmallCluster(), DefaultSched(), NoStartup());
  const SimResult result = sim.Run(SingleJobFlow(TinyJob("mr"))).value();
  const StageRecord map = result.FindStage(0, StageKind::kMap).value();
  const StageRecord reduce = result.FindStage(0, StageKind::kReduce).value();
  // Slow-start 1.0: reduce starts only after the last map finishes.
  EXPECT_GE(reduce.start, map.end - 1e-9);
  EXPECT_NEAR(result.makespan().seconds(), reduce.end, 1e-9);
}

TEST(SimulatorTest, SingleTaskTimeMatchesAnalyticBound) {
  // One map task alone on an idle cluster: the fluid simulator must agree
  // exactly with the per-sub-stage max formula (no contention anywhere).
  JobSpec spec = TinyJob("solo", 0.25);  // One 256 MB split... input 250MB.
  spec.input = Bytes::FromMB(256);
  spec.num_reduce_tasks = 0;
  spec.map_selectivity = 0.0;
  spec.map_compute = Rate::MBps(50);
  spec.remote_read_fraction = 0.0;
  const ClusterSpec cluster = SmallCluster(1);
  const Simulator sim(cluster, DefaultSched(), NoStartup());
  const SimResult result = sim.Run(SingleJobFlow(spec)).value();
  const auto durations = result.TaskDurations(0, StageKind::kMap);
  ASSERT_EQ(durations.size(), 1u);
  // read 256 MB at 200 MB/s = 1.28 s; compute 256/50 = 5.12 s -> CPU-bound.
  EXPECT_NEAR(durations[0], 5.12, 1e-6);
}

TEST(SimulatorTest, StartupDelayAddsToTaskTime) {
  JobSpec spec = TinyJob("s", 0.25);
  spec.input = Bytes::FromMB(256);
  spec.num_reduce_tasks = 0;
  spec.map_selectivity = 0.0;
  spec.map_compute = Rate::MBps(50);
  SimOptions opts;
  opts.task_startup_seconds = 2.5;
  const Simulator sim(SmallCluster(1), DefaultSched(), opts);
  const SimResult result = sim.Run(SingleJobFlow(spec)).value();
  EXPECT_NEAR(result.TaskDurations(0, StageKind::kMap)[0], 5.12 + 2.5, 1e-6);
}

TEST(SimulatorTest, ParallelismCappedBySlots) {
  // 8 map tasks, 1 slot per node, 2 nodes -> four sequential waves.
  JobSpec spec = TinyJob("waves");
  spec.input = Bytes::FromMB(2048);  // Exactly 8 x 256 MB splits.
  spec.num_reduce_tasks = 0;
  spec.map_selectivity = 0.0;
  spec.map_compute = Rate::MBps(64);  // 4 s per 256 MB split.
  const Simulator sim(SmallCluster(2), DefaultSched(/*max_tasks_per_node=*/1),
                      NoStartup());
  const SimResult result = sim.Run(SingleJobFlow(spec)).value();
  // 8 tasks / 2 concurrent = 4 waves of 4 s.
  EXPECT_NEAR(result.makespan().seconds(), 16.0, 1e-6);
}

TEST(SimulatorTest, CpuContentionSlowsTasks) {
  // 12 CPU-bound tasks on one 6-core node: each runs at half a core.
  JobSpec spec = TinyJob("cpu", 3.0);
  spec.num_reduce_tasks = 0;
  spec.map_selectivity = 0.0;
  spec.map_compute = Rate::MBps(25);  // ~10.24 s per split at a full core.
  const Simulator sim(SmallCluster(1), DefaultSched(12), NoStartup());
  const SimResult result = sim.Run(SingleJobFlow(spec)).value();
  const auto durations = result.TaskDurations(0, StageKind::kMap);
  ASSERT_EQ(durations.size(), 12u);
  const double expected_single = 256.0 / 25.0;
  for (double d : durations) {
    EXPECT_NEAR(d, 2 * expected_single, 0.5);  // Half a core each.
  }
}

TEST(SimulatorTest, DagDependencyRespected) {
  DagBuilder b("chain");
  JobSpec a = TinyJob("a");
  JobSpec c = TinyJob("c");
  const JobId ja = b.AddJob(a);
  const JobId jc = b.AddJobAfter(ja, c);
  const DagWorkflow flow = std::move(b).Build().value();
  const Simulator sim(SmallCluster(), DefaultSched(), NoStartup());
  const SimResult result = sim.Run(flow).value();
  const StageRecord a_reduce = result.FindStage(ja, StageKind::kReduce).value();
  const StageRecord c_map = result.FindStage(jc, StageKind::kMap).value();
  EXPECT_GE(c_map.start, a_reduce.end - 1e-9);
}

TEST(SimulatorTest, IndependentJobsOverlap) {
  DagBuilder b("parallel");
  b.AddJob(TinyJob("a", 4.0));
  b.AddJob(TinyJob("c", 4.0));
  const DagWorkflow flow = std::move(b).Build().value();
  const Simulator sim(SmallCluster(4), DefaultSched(), NoStartup());
  const SimResult result = sim.Run(flow).value();
  const StageRecord a_map = result.FindStage(0, StageKind::kMap).value();
  const StageRecord c_map = result.FindStage(1, StageKind::kMap).value();
  // Both start at t=0.
  EXPECT_NEAR(a_map.start, 0.0, 1e-9);
  EXPECT_NEAR(c_map.start, 0.0, 1e-9);
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  const Simulator sim(SmallCluster(), DefaultSched());
  const DagWorkflow flow = SingleJobFlow(TinyJob("det", 4.0));
  const SimResult r1 = sim.Run(flow).value();
  const SimResult r2 = sim.Run(flow).value();
  EXPECT_DOUBLE_EQ(r1.makespan().seconds(), r2.makespan().seconds());
  ASSERT_EQ(r1.tasks().size(), r2.tasks().size());
  for (size_t i = 0; i < r1.tasks().size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.tasks()[i].start, r2.tasks()[i].start);
    EXPECT_DOUBLE_EQ(r1.tasks()[i].end, r2.tasks()[i].end);
  }
}

TEST(SimulatorTest, SkewSpreadsReduceDurations) {
  JobSpec skewed = TinyJob("skew", 8.0);
  skewed.num_reduce_tasks = 16;
  skewed.reduce_skew_cv = 0.5;
  JobSpec flat = skewed;
  flat.name = "flat";
  flat.reduce_skew_cv = 0.0;
  const Simulator sim(SmallCluster(2), DefaultSched(), NoStartup());
  const SimResult r_skew = sim.Run(SingleJobFlow(skewed)).value();
  const SimResult r_flat = sim.Run(SingleJobFlow(flat)).value();
  const SampleStats s_skew =
      ComputeStats(r_skew.TaskDurations(0, StageKind::kReduce));
  const SampleStats s_flat =
      ComputeStats(r_flat.TaskDurations(0, StageKind::kReduce));
  EXPECT_GT(s_skew.stddev / s_skew.mean, 0.2);
  EXPECT_LT(s_flat.stddev / s_flat.mean, 0.1);
}

TEST(SimulatorTest, StateTimelineCoversMakespan) {
  DagBuilder b("states");
  b.AddJob(TinyJob("a", 2.0));
  b.AddJob(TinyJob("c", 3.0));
  const DagWorkflow flow = std::move(b).Build().value();
  const Simulator sim(SmallCluster(2), DefaultSched(), NoStartup());
  const SimResult result = sim.Run(flow).value();
  const auto& states = result.states();
  ASSERT_FALSE(states.empty());
  EXPECT_NEAR(states.front().start, 0.0, 1e-9);
  EXPECT_NEAR(states.back().end, result.makespan().seconds(), 1e-9);
  // Contiguous, non-overlapping, and indexed from 1.
  for (size_t i = 0; i < states.size(); ++i) {
    EXPECT_EQ(states[i].index, static_cast<int>(i) + 1);
    if (i > 0) {
      EXPECT_NEAR(states[i].start, states[i - 1].end, 1e-9);
    }
    EXPECT_GT(states[i].duration(), 0.0);
  }
}

TEST(SimulatorTest, TaskRecordsConsistent) {
  const Simulator sim(SmallCluster(), DefaultSched());
  const DagWorkflow flow = SingleJobFlow(TinyJob("rec", 4.0));
  const SimResult result = sim.Run(flow).value();
  const JobProfile& job = flow.job(0);
  EXPECT_EQ(result.TaskDurations(0, StageKind::kMap).size(),
            static_cast<size_t>(job.map.num_tasks));
  EXPECT_EQ(result.TaskDurations(0, StageKind::kReduce).size(),
            static_cast<size_t>(job.reduce->num_tasks));
  for (const auto& t : result.tasks()) {
    EXPECT_GE(t.start, 0.0);
    EXPECT_GT(t.end, t.start);
    EXPECT_LE(t.end, result.makespan().seconds() + 1e-9);
    EXPECT_GE(t.node, 0);
    EXPECT_LT(t.node, 2);
  }
}

TEST(SimulatorTest, RejectsOversizedContainer) {
  JobSpec spec = TinyJob("fat");
  spec.map_slot.memory = Bytes::FromGB(64);  // > 32 GB node.
  const Simulator sim(SmallCluster(), DefaultSched(), NoStartup());
  const auto result = sim.Run(SingleJobFlow(spec));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kFailedPrecondition);
}

TEST(SimulatorTest, MoreNodesNeverSlower) {
  const DagWorkflow flow = SingleJobFlow(TinyJob("scale", 8.0));
  double prev = 1e300;
  for (int nodes : {1, 2, 4, 8}) {
    const Simulator sim(SmallCluster(nodes), DefaultSched(), NoStartup());
    const double t = sim.Run(flow).value().makespan().seconds();
    EXPECT_LE(t, prev + 1e-6) << nodes << " nodes";
    prev = t;
  }
}

TEST(SimulatorTest, NetworkBoundShuffleMatchesBandwidth) {
  // TeraSort-like job on 1 node: shuffle+write volumes dominated by the
  // the disk; validate total makespan is at least the disk-write bound.
  JobSpec spec = TinyJob("ts", 4.0);
  spec.map_selectivity = 1.0;
  spec.reduce_selectivity = 1.0;
  spec.num_reduce_tasks = 8;
  const ClusterSpec cluster = SmallCluster(1);
  const Simulator sim(cluster, DefaultSched(), NoStartup());
  const SimResult result = sim.Run(SingleJobFlow(spec)).value();
  // Disk writes >= spill (4 GB) + materialise (4 GB) + output (4 GB).
  const double min_write_seconds =
      3.0 * Bytes::FromGB(4).value() / cluster.node.disk_write_bw.bytes_per_sec();
  EXPECT_GT(result.makespan().seconds(), min_write_seconds);
}

}  // namespace
}  // namespace dagperf
