#include "dag/spec_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "workloads/micro.h"
#include "workloads/web_analytics.h"

namespace dagperf {
namespace {

TEST(SpecIoTest, JobSpecRoundTrip) {
  JobSpec spec = Ts3rSpec(Bytes::FromGB(42));
  spec.reduce_skew_cv = 0.33;
  spec.input_cache_fraction = 0.25;
  spec.map_slot.memory = Bytes::FromGB(3);
  const Result<JobSpec> back = JobSpecFromJson(JobSpecToJson(spec));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, spec);
}

TEST(SpecIoTest, WorkflowRoundTripPreservesTopology) {
  const DagWorkflow flow = WebAnalyticsFlow(Bytes::FromGB(10)).value();
  const Result<DagWorkflow> back = WorkflowFromJson(WorkflowToJson(flow));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->name(), flow.name());
  ASSERT_EQ(back->num_jobs(), flow.num_jobs());
  EXPECT_EQ(back->edges(), flow.edges());
  for (JobId id = 0; id < flow.num_jobs(); ++id) {
    EXPECT_EQ(back->job(id).spec, flow.job(id).spec) << id;
  }
}

TEST(SpecIoTest, DefaultsFillAbsentFields) {
  const Json minimal = Json::Parse("{\"name\": \"tiny\", \"input_gb\": 1}").value();
  const JobSpec spec = JobSpecFromJson(minimal).value();
  EXPECT_EQ(spec.name, "tiny");
  EXPECT_DOUBLE_EQ(spec.input.ToGB(), 1.0);
  const JobSpec defaults;
  EXPECT_EQ(spec.replicas, defaults.replicas);
  EXPECT_EQ(spec.map_compute, defaults.map_compute);
}

TEST(SpecIoTest, UnknownFieldRejected) {
  const Json bad =
      Json::Parse("{\"name\": \"x\", \"input_gigabytes\": 1}").value();
  const auto result = JobSpecFromJson(bad);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("input_gigabytes"), std::string::npos);
}

TEST(SpecIoTest, BadTopologyRejectedAtBuild) {
  const Json cyclic = Json::Parse(
                          "{\"jobs\": [{\"name\": \"a\"}, {\"name\": \"b\"}],"
                          " \"edges\": [[0, 1], [1, 0]]}")
                          .value();
  EXPECT_FALSE(WorkflowFromJson(cyclic).ok());

  const Json bad_edge =
      Json::Parse("{\"jobs\": [{\"name\": \"a\"}], \"edges\": [[0]]}").value();
  EXPECT_FALSE(WorkflowFromJson(bad_edge).ok());

  const Json no_jobs = Json::Parse("{\"name\": \"x\"}").value();
  EXPECT_FALSE(WorkflowFromJson(no_jobs).ok());
}

TEST(SpecIoTest, FileRoundTrip) {
  const DagWorkflow flow = WebAnalyticsFlow(Bytes::FromGB(10)).value();
  const std::string path = ::testing::TempDir() + "/dagperf_flow.json";
  ASSERT_TRUE(SaveWorkflow(flow, path).ok());
  const Result<DagWorkflow> back = LoadWorkflow(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_jobs(), flow.num_jobs());
  std::remove(path.c_str());
  EXPECT_FALSE(LoadWorkflow(path).ok());  // Gone.
}

}  // namespace
}  // namespace dagperf
