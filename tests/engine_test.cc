#include "engine/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "engine/builtin.h"
#include "engine/datagen.h"

namespace dagperf {
namespace {

RecordVec MakeRecords(std::initializer_list<std::pair<const char*, const char*>> kv) {
  RecordVec out;
  for (const auto& [k, v] : kv) out.push_back({k, v});
  return out;
}

TEST(HashPartitionTest, InRangeAndStable) {
  for (const std::string key : {"", "a", "zebra", "the quick brown fox"}) {
    for (int parts : {1, 2, 7, 64}) {
      const int p = HashPartition(key, parts);
      EXPECT_GE(p, 0);
      EXPECT_LT(p, parts);
      EXPECT_EQ(p, HashPartition(key, parts));  // Deterministic.
    }
  }
}

TEST(GroupAndReduceTest, GroupsAdjacentKeys) {
  RecordVec sorted = MakeRecords({{"a", "1"}, {"a", "2"}, {"b", "3"}});
  RecordVec out;
  struct Sink : ReduceContext {
    RecordVec* out;
    void Emit(std::string k, std::string v) override {
      out->push_back({std::move(k), std::move(v)});
    }
  } sink;
  sink.out = &out;
  GroupAndReduce(
      sorted,
      [](const std::string& key, const std::vector<std::string>& values,
         ReduceContext& ctx) {
        ctx.Emit(key, std::to_string(values.size()));
      },
      sink);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (Record{"a", "2"}));
  EXPECT_EQ(out[1], (Record{"b", "1"}));
}

TEST(EngineTest, WordCountCountsWords) {
  LocalStore store;
  store.Write("in", MakeRecords({{"0", "the cat and the hat"},
                                 {"1", "the cat"},
                                 {"2", "hat trick"}}));
  MapReduceEngine engine(&store);
  const JobMetrics metrics = engine.Run(WordCountJob("in", "out")).value();

  std::map<std::string, std::string> counts;
  for (const auto& r : *store.Read("out").value()) counts[r.key] = r.value;
  EXPECT_EQ(counts["the"], "3");
  EXPECT_EQ(counts["cat"], "2");
  EXPECT_EQ(counts["hat"], "2");
  EXPECT_EQ(counts["and"], "1");
  EXPECT_EQ(counts["trick"], "1");
  EXPECT_EQ(counts.size(), 5u);
  EXPECT_EQ(metrics.map.records_in, 3u);
  EXPECT_EQ(metrics.reduce.records_out, 5u);
}

TEST(EngineTest, CombinerShrinksShuffleWithoutChangingResult) {
  LocalStore store;
  GenerateText(store, "in", Bytes::FromKB(200), /*vocabulary=*/50, /*zipf_s=*/1.0);
  MapReduceEngine engine(&store);

  EngineJobConfig with = WordCountJob("in", "out-with");
  EngineJobConfig without = WordCountJob("in", "out-without");
  without.combiner = nullptr;
  const JobMetrics m_with = engine.Run(with).value();
  const JobMetrics m_without = engine.Run(without).value();

  EXPECT_LT(m_with.shuffle_bytes, m_without.shuffle_bytes / 2);

  // Same counts either way.
  std::map<std::string, std::string> a;
  std::map<std::string, std::string> b;
  for (const auto& r : *store.Read("out-with").value()) a[r.key] = r.value;
  for (const auto& r : *store.Read("out-without").value()) b[r.key] = r.value;
  EXPECT_EQ(a, b);
}

TEST(EngineTest, SortProducesGloballyOrderedOutput) {
  LocalStore store;
  GenerateKeyValue(store, "in", Bytes::FromKB(100), /*key_bytes=*/10,
                   /*value_bytes=*/20);
  MapReduceEngine engine(&store);
  const JobMetrics metrics = engine.Run(SortJob("in", "out", 8)).value();
  const RecordVec& out = *store.Read("out").value();
  const RecordVec& in = *store.Read("in").value();
  ASSERT_EQ(out.size(), in.size());
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end(),
                             [](const Record& a, const Record& b) {
                               return a.key < b.key;
                             }));
  // Sort moves every byte: shuffle equals map input (modulo framing).
  EXPECT_EQ(metrics.map.records_out, metrics.map.records_in);
}

TEST(EngineTest, GrepIsMapOnlyAndFilters) {
  LocalStore store;
  store.Write("in", MakeRecords({{"0", "error: disk full"},
                                 {"1", "ok"},
                                 {"2", "error: timeout"},
                                 {"3", "warn"}}));
  MapReduceEngine engine(&store);
  const JobMetrics metrics = engine.Run(GrepJob("in", "out", "error")).value();
  EXPECT_EQ(metrics.reduce.tasks, 0);
  const RecordVec& out = *store.Read("out").value();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].key, "0");
  EXPECT_EQ(out[1].key, "2");
}

TEST(EngineTest, SumByKeyAggregates) {
  LocalStore store;
  store.Write("in", MakeRecords({{"a", "5"}, {"b", "7"}, {"a", "3"}, {"b", "-2"}}));
  MapReduceEngine engine(&store);
  ASSERT_TRUE(engine.Run(SumByKeyJob("in", "out")).ok());
  std::map<std::string, std::string> sums;
  for (const auto& r : *store.Read("out").value()) sums[r.key] = r.value;
  EXPECT_EQ(sums["a"], "8");
  EXPECT_EQ(sums["b"], "5");
}

TEST(EngineTest, JoinMatchesKeys) {
  LocalStore store;
  store.Write("left", MakeRecords({{"k1", "alice"}, {"k2", "bob"}, {"k3", "carol"}}));
  store.Write("right", MakeRecords({{"k2", "x"}, {"k3", "y"}, {"k3", "z"}, {"k4", "w"}}));
  ASSERT_TRUE(MergeForJoin(store, "left", "right", "merged").ok());
  MapReduceEngine engine(&store);
  ASSERT_TRUE(engine.Run(JoinJob("merged", "out")).ok());
  std::multimap<std::string, std::string> joined;
  for (const auto& r : *store.Read("out").value()) joined.insert({r.key, r.value});
  EXPECT_EQ(joined.size(), 3u);  // k2x1, k3x2.
  EXPECT_EQ(joined.count("k2"), 1u);
  EXPECT_EQ(joined.count("k3"), 2u);
  EXPECT_EQ(joined.count("k1"), 0u);
  EXPECT_EQ(joined.count("k4"), 0u);
}

TEST(EngineTest, DeterministicAcrossRunsAndSlotCounts) {
  LocalStore store;
  GenerateText(store, "in", Bytes::FromKB(300), 200, 0.9);
  EngineOptions narrow;
  narrow.map_slots = 1;
  narrow.reduce_slots = 1;
  EngineOptions wide;
  wide.map_slots = 8;
  wide.reduce_slots = 8;
  MapReduceEngine engine_narrow(&store, narrow);
  MapReduceEngine engine_wide(&store, wide);
  ASSERT_TRUE(engine_narrow.Run(WordCountJob("in", "out-narrow")).ok());
  ASSERT_TRUE(engine_wide.Run(WordCountJob("in", "out-wide")).ok());
  EXPECT_EQ(*store.Read("out-narrow").value(), *store.Read("out-wide").value());
}

TEST(EngineTest, MetricsAccounting) {
  LocalStore store;
  GenerateText(store, "in", Bytes::FromKB(100), 100, 1.0);
  MapReduceEngine engine(&store);
  EngineJobConfig job = WordCountJob("in", "out");
  job.split_records = 100;
  const JobMetrics metrics = engine.Run(job).value();
  const RecordVec& in = *store.Read("in").value();
  EXPECT_EQ(metrics.map.records_in, in.size());
  EXPECT_EQ(metrics.map.bytes_in, ByteSize(in));
  EXPECT_EQ(metrics.map.tasks,
            static_cast<int>((in.size() + 99) / 100));
  // Reduce input equals post-combine map output.
  EXPECT_EQ(metrics.reduce.records_in, metrics.map.records_out);
  EXPECT_EQ(metrics.reduce.bytes_in, metrics.shuffle_bytes);
  EXPECT_EQ(metrics.reduce.bytes_out, store.SizeBytes("out"));
  EXPECT_GE(metrics.map.max_task_seconds, 0.0);
  EXPECT_GE(metrics.map.total_task_seconds, metrics.map.max_task_seconds);
}

TEST(EngineTest, RejectsBadConfigurations) {
  LocalStore store;
  store.Write("in", MakeRecords({{"a", "b"}}));
  MapReduceEngine engine(&store);

  EngineJobConfig no_map = WordCountJob("in", "out");
  no_map.map = nullptr;
  EXPECT_FALSE(engine.Run(no_map).ok());

  EngineJobConfig missing_input = WordCountJob("absent", "out");
  EXPECT_FALSE(engine.Run(missing_input).ok());

  EngineJobConfig bad_reducers = WordCountJob("in", "out");
  bad_reducers.num_reducers = 0;
  EXPECT_FALSE(engine.Run(bad_reducers).ok());

  EngineJobConfig bad_split = WordCountJob("in", "out");
  bad_split.split_records = 0;
  EXPECT_FALSE(engine.Run(bad_split).ok());
}

TEST(EngineTest, EmptyInputProducesEmptyOutput) {
  LocalStore store;
  store.Write("in", {});
  MapReduceEngine engine(&store);
  const JobMetrics metrics = engine.Run(WordCountJob("in", "out")).value();
  EXPECT_EQ(metrics.map.records_in, 0u);
  EXPECT_TRUE(store.Read("out").value()->empty());
}

TEST(LocalStoreTest, BasicOperations) {
  LocalStore store;
  EXPECT_FALSE(store.Exists("x"));
  EXPECT_FALSE(store.Read("x").ok());
  store.Write("x", MakeRecords({{"a", "1"}}));
  EXPECT_TRUE(store.Exists("x"));
  EXPECT_EQ(store.Read("x").value()->size(), 1u);
  store.Append("x", MakeRecords({{"b", "2"}}));
  EXPECT_EQ(store.Read("x").value()->size(), 2u);
  EXPECT_GT(store.SizeBytes("x"), 0u);
  EXPECT_EQ(store.List().size(), 1u);
  store.Erase("x");
  EXPECT_FALSE(store.Exists("x"));
  EXPECT_EQ(store.SizeBytes("x"), 0u);
}

TEST(DataGenTest, TextIsZipfian) {
  LocalStore store;
  GenerateText(store, "in", Bytes::FromKB(500), /*vocabulary=*/1000, /*zipf_s=*/1.1);
  // Count word frequencies; the most frequent word should dominate the
  // median-rank word decisively.
  std::map<std::string, int> counts;
  for (const auto& r : *store.Read("in").value()) {
    size_t i = 0;
    const std::string& text = r.value;
    while (i < text.size()) {
      size_t j = text.find(' ', i);
      if (j == std::string::npos) j = text.size();
      if (j > i) counts[text.substr(i, j - i)]++;
      i = j + 1;
    }
  }
  std::vector<int> freqs;
  for (const auto& [w, c] : counts) freqs.push_back(c);
  std::sort(freqs.rbegin(), freqs.rend());
  ASSERT_GT(freqs.size(), 10u);
  EXPECT_GT(freqs[0], 10 * freqs[freqs.size() / 2]);
}

TEST(DataGenTest, DeterministicForSeed) {
  LocalStore store;
  GenerateKeyValue(store, "a", Bytes::FromKB(50), 10, 20, /*seed=*/7);
  GenerateKeyValue(store, "b", Bytes::FromKB(50), 10, 20, /*seed=*/7);
  GenerateKeyValue(store, "c", Bytes::FromKB(50), 10, 20, /*seed=*/8);
  EXPECT_EQ(*store.Read("a").value(), *store.Read("b").value());
  EXPECT_NE(*store.Read("a").value(), *store.Read("c").value());
}

TEST(DataGenTest, KeyedIntsRespectCounts) {
  LocalStore store;
  GenerateKeyedInts(store, "in", 5000, 37, 0.9);
  const RecordVec& records = *store.Read("in").value();
  EXPECT_EQ(records.size(), 5000u);
  std::map<std::string, int> keys;
  for (const auto& r : records) keys[r.key]++;
  EXPECT_LE(keys.size(), 37u);
  EXPECT_GT(keys.size(), 20u);  // Most keys appear.
}


TEST(EngineTest, SortBufferSpillsAndMerges) {
  LocalStore store;
  GenerateText(store, "in", Bytes::FromKB(300), 300, 1.0);
  MapReduceEngine engine(&store);

  EngineJobConfig unbounded = WordCountJob("in", "out-unbounded");
  EngineJobConfig tiny_buffer = WordCountJob("in", "out-tiny");
  tiny_buffer.sort_buffer_records = 50;  // Forces many spills per task.
  const JobMetrics m_unbounded = engine.Run(unbounded).value();
  const JobMetrics m_tiny = engine.Run(tiny_buffer).value();

  EXPECT_EQ(m_unbounded.map_spills, 0u);
  EXPECT_EQ(m_unbounded.merge_bytes, 0u);
  EXPECT_GT(m_tiny.map_spills, 0u);
  EXPECT_GT(m_tiny.merge_bytes, 0u);

  // Spilling must not change the answer.
  EXPECT_EQ(*store.Read("out-unbounded").value(), *store.Read("out-tiny").value());

  // Per-run combining is less effective than whole-buffer combining, so the
  // spilling configuration re-reads at least the final map output.
  EXPECT_GE(m_tiny.merge_bytes, m_tiny.shuffle_bytes);
}

TEST(EngineTest, SpillCountScalesWithBufferPressure) {
  LocalStore store;
  GenerateKeyValue(store, "in", Bytes::FromKB(200), 10, 30);
  MapReduceEngine engine(&store);
  size_t prev_spills = SIZE_MAX;
  for (size_t buffer : {400u, 100u, 25u}) {
    EngineJobConfig job = SortJob("in", "out");
    job.sort_buffer_records = buffer;
    const JobMetrics metrics = engine.Run(job).value();
    EXPECT_LT(metrics.map_spills, prev_spills);
    prev_spills = metrics.map_spills;
    break;  // Establish ordering by re-running below.
  }
  // Smaller buffers -> strictly more spills.
  EngineJobConfig big = SortJob("in", "out-big");
  big.sort_buffer_records = 400;
  EngineJobConfig small = SortJob("in", "out-small");
  small.sort_buffer_records = 25;
  EXPECT_LT(engine.Run(big)->map_spills, engine.Run(small)->map_spills);
}

}  // namespace
}  // namespace dagperf
