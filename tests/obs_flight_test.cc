#include "obs/request_record.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "obs/metrics.h"

namespace dagperf {
namespace {

class ScopedMetrics {
 public:
  ScopedMetrics() : was_enabled_(obs::MetricsEnabled()) {
    obs::SetMetricsEnabled(true);
  }
  ~ScopedMetrics() { obs::SetMetricsEnabled(was_enabled_); }

 private:
  bool was_enabled_;
};

obs::RequestRecord MakeRecord(std::uint64_t id, double total_us,
                              bool ok = true) {
  obs::RequestRecord record;
  record.id = id;
  record.set_op("estimate");
  record.set_workflow("TS-Q6");
  record.set_cluster("default");
  record.submit_us = 1000.0 * id;
  record.start_us = record.submit_us + 10.0;
  record.end_us = record.submit_us + total_us;
  record.ok = ok;
  record.outcome_code = ok ? 0 : 13;
  return record;
}

TEST(RequestRecordTest, NameFieldsTruncateNeverOverflow) {
  obs::RequestRecord record;
  record.set_workflow(std::string(200, 'w'));
  EXPECT_EQ(std::string(record.workflow).size(),
            obs::RequestRecord::kNameBytes - 1);
  record.set_op("estimate");
  EXPECT_STREQ(record.op, "estimate");
}

TEST(RequestRecordTest, DerivedTimings) {
  const obs::RequestRecord record = MakeRecord(1, 500.0);
  EXPECT_DOUBLE_EQ(record.queue_wait_us(), 10.0);
  EXPECT_DOUBLE_EQ(record.exec_us(), 490.0);
  EXPECT_DOUBLE_EQ(record.total_us(), 500.0);
}

TEST(FlightRecorderTest, DisabledRecordingIsANoOp) {
  obs::FlightRecorder recorder;
  ASSERT_FALSE(obs::MetricsEnabled());
  recorder.Record(MakeRecord(1, 100.0));
  EXPECT_EQ(recorder.total_recorded(), 0u);
  EXPECT_TRUE(recorder.Snapshot().records.empty());
}

TEST(FlightRecorderTest, RingKeepsLastNOldestFirst) {
  ScopedMetrics on;
  obs::FlightRecorderOptions options;
  options.capacity = 4;
  obs::FlightRecorder recorder(options);
  for (std::uint64_t id = 1; id <= 10; ++id) {
    recorder.Record(MakeRecord(id, 100.0));
  }
  const obs::FlightRecorder::Dump dump = recorder.Snapshot();
  EXPECT_EQ(dump.total_recorded, 10u);
  ASSERT_EQ(dump.records.size(), 4u);
  EXPECT_EQ(dump.records.front().id, 7u);
  EXPECT_EQ(dump.records.back().id, 10u);
}

TEST(FlightRecorderTest, PinsSlowestAndErrorExemplarsPastRingWrap) {
  ScopedMetrics on;
  obs::FlightRecorderOptions options;
  options.capacity = 4;
  options.slowest_exemplars = 2;
  options.error_exemplars = 2;
  obs::FlightRecorder recorder(options);
  recorder.Record(MakeRecord(1, 9000.0));         // Slow.
  recorder.Record(MakeRecord(2, 500.0, false));   // Error.
  // Flood the ring so both leave it.
  for (std::uint64_t id = 10; id < 20; ++id) {
    recorder.Record(MakeRecord(id, 100.0));
  }
  const obs::FlightRecorder::Dump dump = recorder.Snapshot();
  ASSERT_FALSE(dump.slowest.empty());
  EXPECT_EQ(dump.slowest.front().id, 1u);  // Slowest first.
  ASSERT_EQ(dump.errors.size(), 1u);
  EXPECT_EQ(dump.errors.front().id, 2u);
  // The ring itself only has the recent flood.
  for (const obs::RequestRecord& record : dump.records) {
    EXPECT_GE(record.id, 10u);
  }
}

TEST(FlightRecorderTest, SlowestSetRecyclesAfterExemplarWindow) {
  ScopedMetrics on;
  obs::FlightRecorderOptions options;
  options.slowest_exemplars = 1;
  options.exemplar_window_seconds = 1e-9;  // Every record opens a new window.
  obs::FlightRecorder recorder(options);
  recorder.Record(MakeRecord(1, 9000.0));
  // Much faster, but it completes past the window deadline (the recycle
  // clock is record.end_us), so it becomes the new slowest.
  recorder.Record(MakeRecord(20, 50.0));
  const obs::FlightRecorder::Dump dump = recorder.Snapshot();
  ASSERT_EQ(dump.slowest.size(), 1u);
  EXPECT_EQ(dump.slowest.front().id, 20u);
}

TEST(FlightRecorderTest, EventRingKeepsLastN) {
  ScopedMetrics on;
  obs::FlightRecorderOptions options;
  options.event_capacity = 2;
  obs::FlightRecorder recorder(options);
  recorder.AddEvent("breaker", "default: closed -> open");
  recorder.AddEvent("watchdog", "TS-Q6@default: wall-clock bound exceeded");
  recorder.AddEvent("drain", "pool quiesced");
  const obs::FlightRecorder::Dump dump = recorder.Snapshot();
  ASSERT_EQ(dump.events.size(), 2u);
  EXPECT_STREQ(dump.events.front().kind, "watchdog");
  EXPECT_STREQ(dump.events.back().kind, "drain");
}

TEST(FlightRecorderTest, ToJsonParsesAndCarriesTheRecordFields) {
  ScopedMetrics on;
  obs::FlightRecorder recorder;
  obs::RequestRecord record = MakeRecord(7, 650.0);
  record.states = 6;
  record.memo_misses = 22;
  record.path = obs::RequestPath::kMemoWarm;
  recorder.Record(record);
  recorder.AddEvent("breaker", "default: closed -> open");
  Result<Json> parsed = Json::Parse(recorder.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Json& doc = parsed.value();
  EXPECT_EQ(doc.GetNumber("total_recorded", 0.0), 1.0);
  const Json* records = doc.Get("records");
  ASSERT_NE(records, nullptr);
  ASSERT_EQ(records->AsArray().size(), 1u);
  const Json& first = records->AsArray()[0];
  EXPECT_EQ(first.GetNumber("id", 0.0), 7.0);
  EXPECT_EQ(first.GetString("path", ""), "memo_warm");
  EXPECT_EQ(first.GetNumber("memo_misses", 0.0), 22.0);
  EXPECT_DOUBLE_EQ(first.GetNumber("total_us", 0.0), 650.0);
  const Json* events = doc.Get("events");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->AsArray()[0].GetString("kind", ""), "breaker");
}

// Concurrent recording against a snapshotting reader: the seqlock must never
// surface a torn record (id/end_us mismatches would show as nonsense
// timings). Run under TSan by the sanitizer CI job.
TEST(FlightRecorderTest, ConcurrentRecordAndSnapshot) {
  ScopedMetrics on;
  obs::FlightRecorderOptions options;
  options.capacity = 8;
  obs::FlightRecorder recorder(options);
  std::atomic<bool> stop{false};
  std::thread reader([&recorder, &stop] {
    while (!stop.load()) {
      const obs::FlightRecorder::Dump dump = recorder.Snapshot();
      for (const obs::RequestRecord& record : dump.records) {
        // Published records are internally consistent.
        EXPECT_DOUBLE_EQ(record.total_us(), 100.0 + record.id);
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&recorder, t] {
      for (std::uint64_t i = 0; i < 20000; ++i) {
        const std::uint64_t id = t * 100000 + i;
        recorder.Record(MakeRecord(id, 100.0 + id));
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(recorder.total_recorded(), 40000u);
}

}  // namespace
}  // namespace dagperf
