#include <gtest/gtest.h>

#include "baselines/ernest.h"
#include "baselines/fixed_profile.h"
#include "common/stats.h"

namespace dagperf {
namespace {

JobSpec WcLikeJob() {
  JobSpec spec;
  spec.name = "wc";
  spec.input = Bytes::FromGB(10);
  spec.num_reduce_tasks = 8;
  spec.map_selectivity = 0.1;
  spec.compress_map_output = true;
  spec.map_compute = Rate::MBps(25);
  spec.replicas = 1;
  return spec;
}

TEST(FixedProfileModelTest, CalibratesFromSimulation) {
  const FixedProfileModel model =
      FixedProfileModel::Calibrate(WcLikeJob(), ClusterSpec::PaperCluster(),
                                   /*reference_tasks_per_node=*/4)
          .value();
  EXPECT_EQ(model.reference_tasks_per_node(), 4);
  EXPECT_EQ(model.job_name(), "wc");
  EXPECT_GT(model.PredictTaskTime(StageKind::kMap).seconds(), 0.0);
  EXPECT_GT(model.PredictTaskTime(StageKind::kReduce).seconds(), 0.0);
}

TEST(FixedProfileModelTest, PredictionIgnoresActualParallelism) {
  // The defining blindness of the baseline: same answer at any parallelism.
  const FixedProfileModel model =
      FixedProfileModel::Calibrate(WcLikeJob(), ClusterSpec::PaperCluster(), 2)
          .value();
  const double t = model.PredictTaskTime(StageKind::kMap).seconds();
  EXPECT_DOUBLE_EQ(model.PredictTaskTime(StageKind::kMap).seconds(), t);
}

TEST(FixedProfileModelTest, DataScaleIsLinear) {
  const FixedProfileModel model =
      FixedProfileModel::Calibrate(WcLikeJob(), ClusterSpec::PaperCluster(), 2)
          .value();
  const double t1 = model.PredictTaskTime(StageKind::kMap, 1.0).seconds();
  const double t2 = model.PredictTaskTime(StageKind::kMap, 2.0).seconds();
  EXPECT_NEAR(t2, 2.0 * t1, 1e-9);
}

TEST(FixedProfileModelTest, HigherReferenceParallelismLongerTasks) {
  // Profiling at higher contention yields a larger (still flat) prediction.
  // The job must be large enough that the per-node slot cap actually binds
  // (enough tasks to fill 12 slots on every node).
  JobSpec big = WcLikeJob();
  big.input = Bytes::FromGB(100);
  const FixedProfileModel low =
      FixedProfileModel::Calibrate(big, ClusterSpec::PaperCluster(), 1).value();
  const FixedProfileModel high =
      FixedProfileModel::Calibrate(big, ClusterSpec::PaperCluster(), 12).value();
  EXPECT_GT(high.PredictTaskTime(StageKind::kMap).seconds(),
            low.PredictTaskTime(StageKind::kMap).seconds());
}

TEST(FixedProfileModelTest, RejectsBadReference) {
  EXPECT_FALSE(
      FixedProfileModel::Calibrate(WcLikeJob(), ClusterSpec::PaperCluster(), 0)
          .ok());
}

TEST(ErnestModelTest, RecoversPlantedCostModel) {
  // Generate points from t = 10 + 100*s/m + 5*log(m) + 0.5*m.
  std::vector<ErnestModel::TrainingPoint> points;
  for (double s : {0.1, 0.25, 0.5, 1.0}) {
    for (double m : {1.0, 2.0, 4.0, 8.0}) {
      points.push_back({s, m, 10 + 100 * s / m + 5 * std::log(m) + 0.5 * m});
    }
  }
  const ErnestModel model = ErnestModel::Fit(points).value();
  for (double s : {0.75, 1.5}) {
    for (double m : {3.0, 10.0}) {
      const double truth = 10 + 100 * s / m + 5 * std::log(m) + 0.5 * m;
      EXPECT_GT(RelativeAccuracy(model.Predict(s, m), truth), 0.95)
          << "s=" << s << " m=" << m;
    }
  }
}

TEST(ErnestModelTest, CoefficientsNonNegative) {
  std::vector<ErnestModel::TrainingPoint> points;
  for (double s : {0.1, 0.5, 1.0}) {
    for (double m : {1.0, 4.0, 8.0}) {
      points.push_back({s, m, 50 * s / m + 2});
    }
  }
  const ErnestModel model = ErnestModel::Fit(points).value();
  for (double b : model.coefficients()) EXPECT_GE(b, 0.0);
}

TEST(ErnestModelTest, RejectsTooFewPoints) {
  std::vector<ErnestModel::TrainingPoint> points = {
      {1, 1, 10}, {1, 2, 6}, {1, 4, 4}};
  EXPECT_FALSE(ErnestModel::Fit(points).ok());
}

TEST(ErnestModelTest, RejectsInvalidPoints) {
  std::vector<ErnestModel::TrainingPoint> points = {
      {1, 1, 10}, {1, 2, 6}, {1, 4, 4}, {0, 8, 3}};
  EXPECT_FALSE(ErnestModel::Fit(points).ok());
}

}  // namespace
}  // namespace dagperf
