// Scoped snapshot import (model/snapshot.h LoadWarmSnapshotForScope +
// service LoadSnapshotForScope) and the graceful-drain final-save guarantee.
// These are the router's warm-handoff building blocks: a shard rejoining the
// fleet imports only its ring-assigned scope slice, an import for a scope
// the shard does not own is refused with the warm state untouched, and a
// draining shard always leaves a restorable snapshot behind.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "model/incremental.h"
#include "model/snapshot.h"
#include "model/task_time_cache.h"
#include "service/service.h"
#include "workloads/suite.h"

namespace dagperf {
namespace {

/// Per-test temp path under the build tree; removed on destruction.
struct TempPath {
  std::string path;
  explicit TempPath(const std::string& name)
      : path("snapshot_scope_test_" + name) {
    std::remove(path.c_str());
  }
  ~TempPath() { std::remove(path.c_str()); }
};

bool FileExists(const std::string& path) {
  if (std::FILE* f = std::fopen(path.c_str(), "rb")) {
    std::fclose(f);
    return true;
  }
  return false;
}

TaskTimeMemo::ExportedEntry Entry(const std::string& key, double seconds) {
  TaskTimeMemo::ExportedEntry entry;
  entry.key = key;
  entry.time = Duration::Seconds(seconds);
  entry.has_time = true;
  return entry;
}

DagWorkflow TestFlow() {
  Result<NamedFlow> named = TableThreeFlow("TS-Q6", 0.01);
  EXPECT_TRUE(named.ok()) << named.status().ToString();
  return std::move(named).value().flow;
}

// ---------------------------------------------------------------------------
// Model layer: LoadWarmSnapshotForScope.

TEST(SnapshotScopeTest, ImportsOnlyTheRequestedScope) {
  TempPath file("scope_slice");
  TaskTimeMemo memo;
  memo.Import({Entry("alpha#stage1", 1.0), Entry("alpha#stage2", 2.0),
               Entry("beta#stage1", 3.0)});
  PrefixCheckpointStore store;
  ASSERT_TRUE(SaveWarmSnapshot(file.path, memo, store).ok());

  TaskTimeMemo restored;
  PrefixCheckpointStore restored_store;
  SnapshotStats stats;
  ASSERT_TRUE(LoadWarmSnapshotForScope(file.path, "alpha", &restored,
                                       &restored_store, &stats)
                  .ok());
  EXPECT_EQ(stats.memo_entries, 2u);
  const std::vector<TaskTimeMemo::ExportedEntry> entries = restored.Export();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].key, "alpha#stage1");
  EXPECT_EQ(entries[1].key, "alpha#stage2");
}

TEST(SnapshotScopeTest, ScopeIsAPrefixMatchOnWholeScopeOnly) {
  // "alpha" must not pull in "alphabet#..." — the '#' separator is part of
  // the match, exactly as TaskTimeMemo::Fingerprint writes it.
  TempPath file("scope_boundary");
  TaskTimeMemo memo;
  memo.Import({Entry("alpha#x", 1.0), Entry("alphabet#x", 2.0)});
  PrefixCheckpointStore store;
  ASSERT_TRUE(SaveWarmSnapshot(file.path, memo, store).ok());

  TaskTimeMemo restored;
  PrefixCheckpointStore restored_store;
  SnapshotStats stats;
  ASSERT_TRUE(LoadWarmSnapshotForScope(file.path, "alpha", &restored,
                                       &restored_store, &stats)
                  .ok());
  EXPECT_EQ(stats.memo_entries, 1u);
  EXPECT_EQ(restored.Export()[0].key, "alpha#x");
}

TEST(SnapshotScopeTest, UnmatchedScopeImportsNothingButSucceeds) {
  TempPath file("scope_empty");
  TaskTimeMemo memo;
  memo.Import({Entry("alpha#x", 1.0)});
  PrefixCheckpointStore store;
  ASSERT_TRUE(SaveWarmSnapshot(file.path, memo, store).ok());

  TaskTimeMemo restored;
  PrefixCheckpointStore restored_store;
  SnapshotStats stats;
  ASSERT_TRUE(LoadWarmSnapshotForScope(file.path, "gamma", &restored,
                                       &restored_store, &stats)
                  .ok());
  EXPECT_EQ(stats.memo_entries, 0u);
  EXPECT_EQ(restored.Export().size(), 0u);
}

TEST(SnapshotScopeTest, FirstWinsMergeIntoNonEmptyTarget) {
  // A shard that already computed a key keeps its own answer: snapshot
  // entries never overwrite live ones (the live entry is at least as fresh,
  // and overwriting would make answers depend on import timing).
  TempPath file("first_wins");
  TaskTimeMemo donor;
  donor.Import({Entry("alpha#shared", 99.0), Entry("alpha#new", 7.0)});
  PrefixCheckpointStore store;
  ASSERT_TRUE(SaveWarmSnapshot(file.path, donor, store).ok());

  TaskTimeMemo target;
  target.Import({Entry("alpha#shared", 1.0)});
  PrefixCheckpointStore target_store;
  ASSERT_TRUE(LoadWarmSnapshotForScope(file.path, "alpha", &target,
                                       &target_store, nullptr)
                  .ok());
  const std::vector<TaskTimeMemo::ExportedEntry> entries = target.Export();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].key, "alpha#new");
  EXPECT_EQ(entries[0].time.seconds(), 7.0);
  EXPECT_EQ(entries[1].key, "alpha#shared");
  EXPECT_EQ(entries[1].time.seconds(), 1.0)
      << "snapshot overwrote a live entry";
}

TEST(SnapshotScopeTest, CorruptSnapshotRejectsWholeEvenWithValidScopeSlice) {
  TempPath file("corrupt");
  TaskTimeMemo memo;
  memo.Import({Entry("alpha#x", 1.0), Entry("beta#y", 2.0)});
  PrefixCheckpointStore store;
  ASSERT_TRUE(SaveWarmSnapshot(file.path, memo, store).ok());

  // Flip one payload bit. Validation happens before the scope filter, so
  // the load must refuse even though the "alpha" slice's bytes may be fine.
  {
    std::FILE* f = std::fopen(file.path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, -3, SEEK_END);
    int byte = std::fgetc(f);
    std::fseek(f, -1, SEEK_CUR);
    std::fputc(byte ^ 0x01, f);
    std::fclose(f);
  }

  TaskTimeMemo restored;
  restored.Import({Entry("pre#existing", 5.0)});
  PrefixCheckpointStore restored_store;
  const Status loaded =
      LoadWarmSnapshotForScope(file.path, "alpha", &restored, &restored_store);
  EXPECT_FALSE(loaded.ok());
  // Target untouched: still exactly the pre-existing entry.
  const std::vector<TaskTimeMemo::ExportedEntry> entries = restored.Export();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].key, "pre#existing");
}

// ---------------------------------------------------------------------------
// Service layer: LoadSnapshotForScope + the graceful-drain final save.

TEST(SnapshotScopeTest, ServiceRefusesScopeItDoesNotOwn) {
  TempPath file("service_refuse");
  // Donor shard: serve one estimate under the default scope, then save.
  {
    EstimationService donor;
    ASSERT_TRUE(donor.RegisterWorkflow("q6", TestFlow()).ok());
    ASSERT_TRUE(donor.Submit(EstimateRequest::For("q6")).get().ok());
    ASSERT_TRUE(donor.SaveSnapshot(file.path).ok());
  }

  EstimationService service;
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());
  const std::size_t entries_before = service.Stats().cache.entries;

  // "ghost" is not a registered cluster scope on this shard: refusing keeps
  // a misrouted warm-handoff from polluting the memo with keys the ring
  // will never send this shard.
  const Status refused = service.LoadSnapshotForScope(file.path, "ghost");
  EXPECT_EQ(refused.code(), ErrorCode::kNotFound) << refused.ToString();
  EXPECT_EQ(service.Stats().cache.entries, entries_before);

  // The registered scope imports fine.
  ASSERT_TRUE(service.LoadSnapshotForScope(file.path, "default").ok());
  EXPECT_GT(service.Stats().cache.entries, entries_before);
}

TEST(SnapshotScopeTest, DrainAlwaysLeavesARestorableSnapshot) {
  TempPath file("drain_save");
  ServiceOptions options;
  options.snapshot_path = file.path;
  {
    EstimationService service(options);
    ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());
    ASSERT_TRUE(service.Submit(EstimateRequest::For("q6")).get().ok());
    ASSERT_FALSE(FileExists(file.path))
        << "snapshot written before any drain/interval tick";
    ASSERT_TRUE(service.Drain().ok());
    EXPECT_TRUE(FileExists(file.path)) << "graceful drain must save";
  }

  TaskTimeMemo memo;
  PrefixCheckpointStore store;
  SnapshotStats stats;
  ASSERT_TRUE(LoadWarmSnapshot(file.path, &memo, &store, &stats).ok());
  EXPECT_GT(stats.memo_entries, 0u);
}

TEST(SnapshotScopeTest, ShutdownAndDestructorAlsoSaveExactlyOnce) {
  TempPath file("shutdown_save");
  ServiceOptions options;
  options.snapshot_path = file.path;
  {
    EstimationService service(options);
    ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());
    ASSERT_TRUE(service.Submit(EstimateRequest::For("q6")).get().ok());
    service.Shutdown(1.0);
    EXPECT_TRUE(FileExists(file.path));
    // The destructor's drain must not clobber the saved state with the
    // post-reset (empty) warm state.
  }
  TaskTimeMemo memo;
  PrefixCheckpointStore store;
  SnapshotStats stats;
  ASSERT_TRUE(LoadWarmSnapshot(file.path, &memo, &store, &stats).ok());
  EXPECT_GT(stats.memo_entries, 0u);
}

}  // namespace
}  // namespace dagperf
