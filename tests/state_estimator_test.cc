#include "model/state_estimator.h"

#include <gtest/gtest.h>

#include "common/stats.h"
#include "sim/simulator.h"

namespace dagperf {
namespace {

ClusterSpec TestCluster(int nodes = 4) {
  ClusterSpec c = ClusterSpec::PaperCluster();
  c.num_nodes = nodes;
  return c;
}

JobSpec SimpleJob(const std::string& name, double input_gb = 4.0) {
  JobSpec spec;
  spec.name = name;
  spec.input = Bytes::FromGB(input_gb);
  spec.num_reduce_tasks = 8;
  spec.replicas = 1;
  spec.remote_read_fraction = 0.0;
  return spec;
}

DagWorkflow SingleJobFlow(const JobSpec& spec) {
  DagBuilder b(spec.name + "-flow");
  b.AddJob(spec);
  return std::move(b).Build().value();
}

/// A trivial source returning a constant task time for every stage.
class ConstantSource : public TaskTimeSource {
 public:
  explicit ConstantSource(double seconds) : seconds_(seconds) {}
  Duration TaskTime(const EstimationContext&) const override {
    return Duration(seconds_);
  }

 private:
  double seconds_;
};

TEST(StateEstimatorTest, SingleStageWaveArithmetic) {
  // 16 map tasks, parallelism 8 (2 nodes x 4 slots), 10 s per task:
  // two map waves. Map-only job -> 20 s.
  JobSpec spec = SimpleJob("waves", 4.0);
  spec.num_reduce_tasks = 0;
  spec.split_size = Bytes::FromMB(256);  // 16 tasks.
  const DagWorkflow flow = SingleJobFlow(spec);

  SchedulerConfig sched;
  sched.max_tasks_per_node = 4;
  const StateBasedEstimator estimator(TestCluster(2), sched);
  const DagEstimate est = estimator.Estimate(flow, ConstantSource(10.0)).value();
  EXPECT_NEAR(est.makespan.seconds(), 20.0, 1e-9);
  ASSERT_EQ(est.states.size(), 1u);
  EXPECT_EQ(est.running(est.states[0]).size(), 1u);
  EXPECT_EQ(est.running(est.states[0])[0].parallelism, 8);
}

TEST(StateEstimatorTest, PartialLastWaveCostsFullWave) {
  // 17 tasks at parallelism 8: 3 waves under the discrete model.
  JobSpec spec = SimpleJob("partial", 4.25);
  spec.num_reduce_tasks = 0;
  spec.input = Bytes::FromMB(17 * 256);
  const DagWorkflow flow = SingleJobFlow(spec);
  SchedulerConfig sched;
  sched.max_tasks_per_node = 4;
  const StateBasedEstimator estimator(TestCluster(2), sched);
  const DagEstimate est = estimator.Estimate(flow, ConstantSource(10.0)).value();
  EXPECT_NEAR(est.makespan.seconds(), 30.0, 1e-9);
}

TEST(StateEstimatorTest, FluidModelSkipsWaveQuantisation) {
  JobSpec spec = SimpleJob("fluid", 4.25);
  spec.num_reduce_tasks = 0;
  spec.input = Bytes::FromMB(17 * 256);
  const DagWorkflow flow = SingleJobFlow(spec);
  SchedulerConfig sched;
  sched.max_tasks_per_node = 4;
  EstimatorOptions options;
  options.wave_model = EstimatorOptions::WaveModel::kFluid;
  const StateBasedEstimator estimator(TestCluster(2), sched, options);
  const DagEstimate est = estimator.Estimate(flow, ConstantSource(10.0)).value();
  EXPECT_NEAR(est.makespan.seconds(), 17.0 / 8.0 * 10.0, 1e-9);
}

TEST(StateEstimatorTest, MapThenReduceStates) {
  const DagWorkflow flow = SingleJobFlow(SimpleJob("mr"));
  const StateBasedEstimator estimator(TestCluster(), SchedulerConfig{});
  const DagEstimate est = estimator.Estimate(flow, ConstantSource(5.0)).value();
  // Two states: map running, then reduce running.
  ASSERT_EQ(est.states.size(), 2u);
  EXPECT_EQ(est.running(est.states[0])[0].kind, StageKind::kMap);
  EXPECT_EQ(est.running(est.states[1])[0].kind, StageKind::kReduce);
  // Stage spans recorded and contiguous.
  const StageSpanEstimate map = est.FindStage(0, StageKind::kMap).value();
  const StageSpanEstimate reduce = est.FindStage(0, StageKind::kReduce).value();
  EXPECT_NEAR(map.start, 0.0, 1e-9);
  EXPECT_NEAR(reduce.start, map.end, 1e-9);
  EXPECT_NEAR(est.makespan.seconds(), reduce.end, 1e-9);
}

TEST(StateEstimatorTest, StateDurationsSumToMakespan) {
  DagBuilder b("two-jobs");
  b.AddJob(SimpleJob("a", 2.0));
  b.AddJob(SimpleJob("c", 6.0));
  const DagWorkflow flow = std::move(b).Build().value();
  const StateBasedEstimator estimator(TestCluster(), SchedulerConfig{});
  const DagEstimate est = estimator.Estimate(flow, ConstantSource(7.0)).value();
  double total = 0;
  for (const auto& st : est.states) total += st.duration;
  EXPECT_NEAR(total, est.makespan.seconds(), 1e-9);
  // States are indexed 1..S and contiguous.
  for (size_t i = 0; i < est.states.size(); ++i) {
    EXPECT_EQ(est.states[i].index, static_cast<int>(i) + 1);
    if (i > 0) {
      EXPECT_NEAR(est.states[i].start,
                  est.states[i - 1].start + est.states[i - 1].duration, 1e-9);
    }
  }
}

TEST(StateEstimatorTest, DagDependencySequencesJobs) {
  DagBuilder b("chain");
  const JobId a = b.AddJob(SimpleJob("a"));
  const JobId c = b.AddJobAfter(a, SimpleJob("c"));
  const DagWorkflow flow = std::move(b).Build().value();
  const StateBasedEstimator estimator(TestCluster(), SchedulerConfig{});
  const DagEstimate est = estimator.Estimate(flow, ConstantSource(5.0)).value();
  const StageSpanEstimate a_reduce = est.FindStage(a, StageKind::kReduce).value();
  const StageSpanEstimate c_map = est.FindStage(c, StageKind::kMap).value();
  EXPECT_GE(c_map.start, a_reduce.end - 1e-9);
}

TEST(StateEstimatorTest, SkewAwareEstimateIsLonger) {
  JobSpec spec = SimpleJob("skew");
  spec.reduce_skew_cv = 0.4;
  const DagWorkflow flow = SingleJobFlow(spec);
  // Profile source with spread; skew-aware should add wave-tail latency.
  ProfileTaskTimeSource source(ProfileStatistic::kMean);
  source.AddProfile("skew/map", {10, 10, 10});
  source.AddProfile("skew/reduce", {5, 8, 10, 12, 15});

  EstimatorOptions plain;
  EstimatorOptions skewed;
  skewed.skew_aware = true;
  const StateBasedEstimator est_plain(TestCluster(), SchedulerConfig{}, plain);
  const StateBasedEstimator est_skew(TestCluster(), SchedulerConfig{}, skewed);
  const double t_plain = est_plain.Estimate(flow, source).value().makespan.seconds();
  const double t_skew = est_skew.Estimate(flow, source).value().makespan.seconds();
  EXPECT_GT(t_skew, t_plain);
}

TEST(StateEstimatorTest, BoeSourceEndToEndAgainstSimulator) {
  // Full-model estimate vs ground truth on a clean single job: the
  // analytical estimate should land within ~20% of the simulator.
  JobSpec spec = SimpleJob("e2e", 8.0);
  const DagWorkflow flow = SingleJobFlow(spec);
  const ClusterSpec cluster = TestCluster();
  const SchedulerConfig sched;
  SimOptions sim_options;
  sim_options.task_startup_seconds = 1.0;
  const Simulator sim(cluster, sched, sim_options);
  const SimResult truth = sim.Run(flow).value();

  const BoeModel boe(cluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1.0));
  const StateBasedEstimator estimator(cluster, sched);
  const DagEstimate est = estimator.Estimate(flow, source).value();
  EXPECT_GT(RelativeAccuracy(est.makespan.seconds(), truth.makespan().seconds()),
            0.8);
}

TEST(StateEstimatorTest, ProfileSourceReproducesSimulatorClosely) {
  // Table III methodology: profile the exact run, then re-estimate with the
  // state machine. Accuracy should be high (>90%).
  DagBuilder b("hybrid");
  b.AddJob(SimpleJob("wc", 6.0));
  b.AddJob(SimpleJob("ts", 6.0));
  const DagWorkflow flow = std::move(b).Build().value();
  const ClusterSpec cluster = TestCluster();
  const SchedulerConfig sched;
  const Simulator sim(cluster, sched);
  const SimResult truth = sim.Run(flow).value();
  const ProfileTaskTimeSource source =
      ProfileTaskTimeSource::FromSimulation(flow, truth, ProfileStatistic::kMean)
          .value();
  const StateBasedEstimator estimator(cluster, sched);
  const DagEstimate est = estimator.Estimate(flow, source).value();
  EXPECT_GT(RelativeAccuracy(est.makespan.seconds(), truth.makespan().seconds()),
            0.9);
}

TEST(StateEstimatorTest, ParallelismSplitsAcrossJobs) {
  DagBuilder b("split");
  b.AddJob(SimpleJob("a", 40.0));
  b.AddJob(SimpleJob("c", 40.0));
  const DagWorkflow flow = std::move(b).Build().value();
  const StateBasedEstimator estimator(TestCluster(), SchedulerConfig{});
  const DagEstimate est = estimator.Estimate(flow, ConstantSource(10.0)).value();
  // First state: both maps running, each with half the 4*12=48 slots.
  ASSERT_GE(est.states.size(), 1u);
  ASSERT_EQ(est.running(est.states[0]).size(), 2u);
  EXPECT_EQ(est.running(est.states[0])[0].parallelism, 24);
  EXPECT_EQ(est.running(est.states[0])[1].parallelism, 24);
}

}  // namespace
}  // namespace dagperf
