#include "model/incremental.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "model/state_estimator.h"
#include "model/task_time_source.h"
#include "workloads/micro.h"

namespace dagperf {
namespace {

const ClusterSpec kCluster = ClusterSpec::PaperCluster();
const SchedulerConfig kSched;

/// A three-job chain whose last job carries the swept knob.
DagWorkflow ChainWithReducers(int reducers) {
  DagBuilder builder("chain-r" + std::to_string(reducers));
  const JobId a = builder.AddJob(WordCountSpec(Bytes::FromGB(20)));
  const JobId b = builder.AddJobAfter(a, TsSpec(Bytes::FromGB(10)));
  JobSpec last = TsSpec(Bytes::FromGB(5));
  last.num_reduce_tasks = reducers;
  builder.AddJobAfter(b, last);
  return std::move(builder).Build().value();
}

/// Exact, bit-level comparison (the store's contract is bit-identity).
void ExpectIdentical(const DagEstimate& a, const DagEstimate& b) {
  EXPECT_EQ(a.makespan.seconds(), b.makespan.seconds());
  ASSERT_EQ(a.states.size(), b.states.size());
  for (size_t s = 0; s < a.states.size(); ++s) {
    EXPECT_EQ(a.states[s].start, b.states[s].start);
    EXPECT_EQ(a.states[s].duration, b.states[s].duration);
    const RunningSpan ra = a.running(a.states[s]);
    const RunningSpan rb = b.running(b.states[s]);
    ASSERT_EQ(ra.size(), rb.size());
    for (size_t r = 0; r < ra.size(); ++r) {
      EXPECT_EQ(ra[r].job, rb[r].job);
      EXPECT_EQ(ra[r].task_time_s, rb[r].task_time_s);
    }
  }
  ASSERT_EQ(a.stages.size(), b.stages.size());
  for (size_t s = 0; s < a.stages.size(); ++s) {
    EXPECT_EQ(a.stages[s].start, b.stages[s].start);
    EXPECT_EQ(a.stages[s].end, b.stages[s].end);
  }
}

TEST(PrefixCheckpointStoreTest, ResumesSharedPrefixBitIdentically) {
  const BoeModel boe(kCluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  const DagWorkflow first = ChainWithReducers(8);
  const DagWorkflow second = ChainWithReducers(16);

  PrefixCheckpointStore store;
  EstimatorOptions options;
  options.checkpoints = &store;
  const StateBasedEstimator estimator(kCluster, kSched, options);
  const DagEstimate cold = estimator.Estimate(first, source).value();
  const PrefixCheckpointStore::Stats after_cold = store.stats();
  EXPECT_GT(after_cold.inserts, 0u);
  EXPECT_GT(after_cold.entries, 0u);
  EXPECT_GT(after_cold.bytes, 0u);

  // The second candidate shares the two-job prefix (its changed job is not
  // activated until the middle job completes) and must resume there.
  const DagEstimate warm = estimator.Estimate(second, source).value();
  const PrefixCheckpointStore::Stats after_warm = store.stats();
  EXPECT_GT(after_warm.hits, after_cold.hits);
  EXPECT_GT(after_warm.resumed_states, 0u);

  const StateBasedEstimator plain(kCluster, kSched);
  ExpectIdentical(cold, plain.Estimate(first, source).value());
  ExpectIdentical(warm, plain.Estimate(second, source).value());
}

TEST(PrefixCheckpointStoreTest, IdenticalFlowResumesFullDepth) {
  const BoeModel boe(kCluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  const DagWorkflow flow = ChainWithReducers(8);

  PrefixCheckpointStore store;
  EstimatorOptions options;
  options.checkpoints = &store;
  const StateBasedEstimator estimator(kCluster, kSched, options);
  const DagEstimate cold = estimator.Estimate(flow, source).value();
  const DagEstimate warm = estimator.Estimate(flow, source).value();
  ExpectIdentical(warm, cold);
  // The re-run resumed at the deepest (all-jobs-done) boundary: it skipped
  // every state the first run stored.
  const PrefixCheckpointStore::Stats stats = store.stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.resumed_states, 0u);
}

TEST(PrefixCheckpointStoreTest, ByteCapRejectsInsertsDeterministically) {
  const BoeModel boe(kCluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  const DagWorkflow flow = ChainWithReducers(8);

  PrefixCheckpointStore::Options store_options;
  store_options.max_bytes = 1;  // Nothing fits: every insert is rejected.
  PrefixCheckpointStore store(store_options);
  EstimatorOptions options;
  options.checkpoints = &store;
  const StateBasedEstimator estimator(kCluster, kSched, options);
  const DagEstimate first = estimator.Estimate(flow, source).value();
  const DagEstimate second = estimator.Estimate(flow, source).value();

  const PrefixCheckpointStore::Stats stats = store.stats();
  EXPECT_EQ(stats.inserts, 0u);
  EXPECT_GT(stats.rejected_full, 0u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 0u);

  // A full store degrades to plain replay, never to wrong answers.
  const StateBasedEstimator plain(kCluster, kSched);
  ExpectIdentical(first, plain.Estimate(flow, source).value());
  ExpectIdentical(second, first);
}

TEST(PrefixCheckpointStoreTest, ClearEmptiesTheStore) {
  const BoeModel boe(kCluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  const DagWorkflow flow = ChainWithReducers(8);

  PrefixCheckpointStore store;
  EstimatorOptions options;
  options.checkpoints = &store;
  const StateBasedEstimator estimator(kCluster, kSched, options);
  (void)estimator.Estimate(flow, source).value();
  ASSERT_GT(store.stats().entries, 0u);

  store.Clear();
  const PrefixCheckpointStore::Stats cleared = store.stats();
  EXPECT_EQ(cleared.entries, 0u);
  EXPECT_EQ(cleared.bytes, 0u);

  // Post-clear the same flow re-replays (and re-stores) from scratch.
  const DagEstimate again = estimator.Estimate(flow, source).value();
  EXPECT_GT(store.stats().entries, 0u);
  const StateBasedEstimator plain(kCluster, kSched);
  ExpectIdentical(again, plain.Estimate(flow, source).value());
}

TEST(PrefixCheckpointStoreTest, ScopeSeparatesSources) {
  // Two task-time sources with the same scheduler view but different
  // execution models share one store under distinct scopes. Without the
  // scope in the key the second would resume from the first's trajectory —
  // computed with the wrong task times.
  DagBuilder builder("wc-scope");
  builder.AddJob(WordCountSpec(Bytes::FromGB(50)));
  const DagWorkflow flow = std::move(builder).Build().value();
  const BoeModel boe_a(kCluster.node);
  NodeSpec slow = kCluster.node;
  slow.cores = 1;
  const BoeModel boe_b(slow);
  const BoeTaskTimeSource source_a(boe_a, Duration::Seconds(1));
  const BoeTaskTimeSource source_b(boe_b, Duration::Seconds(1));

  PrefixCheckpointStore store;
  EstimatorOptions options_a;
  options_a.checkpoints = &store;
  options_a.checkpoint_scope = "paper-node";
  EstimatorOptions options_b = options_a;
  options_b.checkpoint_scope = "slow-node";
  const StateBasedEstimator estimator_a(kCluster, kSched, options_a);
  const StateBasedEstimator estimator_b(kCluster, kSched, options_b);

  const DagEstimate est_a = estimator_a.Estimate(flow, source_a).value();
  const DagEstimate est_b = estimator_b.Estimate(flow, source_b).value();
  EXPECT_GT(est_b.makespan.seconds(), est_a.makespan.seconds());

  const StateBasedEstimator plain(kCluster, kSched);
  ExpectIdentical(est_a, plain.Estimate(flow, source_a).value());
  ExpectIdentical(est_b, plain.Estimate(flow, source_b).value());
}

TEST(PrefixCheckpointStoreTest, BuildKeyEdgeCases) {
  const DagWorkflow flow = ChainWithReducers(8);
  std::string global_fp;
  PrefixCheckpointStore::AppendGlobalFingerprint("scope", kCluster, kSched,
                                                 EstimatorOptions{}, &global_fp);
  std::vector<std::string> job_fps(flow.jobs().size());
  for (JobId id = 0; id < static_cast<JobId>(flow.jobs().size()); ++id) {
    PrefixCheckpointStore::AppendJobFingerprint(flow, id, &job_fps[id]);
  }

  // Deterministic: two builds of the same boundary produce equal keys.
  const std::vector<JobId> done = {0};
  std::string key1, key2;
  ASSERT_TRUE(PrefixCheckpointStore::BuildKey(global_fp, job_fps, flow,
                                              done.data(), done.size(), &key1));
  ASSERT_TRUE(PrefixCheckpointStore::BuildKey(global_fp, job_fps, flow,
                                              done.data(), done.size(), &key2));
  EXPECT_EQ(key1, key2);

  // The empty boundary (nothing done yet) is a valid key.
  std::string empty_key;
  ASSERT_TRUE(PrefixCheckpointStore::BuildKey(global_fp, job_fps, flow, nullptr,
                                              0, &empty_key));
  EXPECT_NE(empty_key, key1);

  // Deeper boundaries produce different keys.
  const std::vector<JobId> deeper = {0, 1};
  std::string key3;
  ASSERT_TRUE(PrefixCheckpointStore::BuildKey(global_fp, job_fps, flow,
                                              deeper.data(), deeper.size(),
                                              &key3));
  EXPECT_NE(key3, key1);

  // A done id outside the flow cannot form a key.
  const std::vector<JobId> bogus = {99};
  std::string unused;
  EXPECT_FALSE(PrefixCheckpointStore::BuildKey(global_fp, job_fps, flow,
                                               bogus.data(), bogus.size(),
                                               &unused));
}

TEST(PrefixCheckpointStoreTest, GlobalFingerprintCoversClusterAndOptions) {
  // Anything the trajectory depends on must change the key: cluster size,
  // scheduler config, estimator options, and scope all feed the global
  // fingerprint, so stale resumes are structurally impossible.
  std::string base;
  PrefixCheckpointStore::AppendGlobalFingerprint("s", kCluster, kSched,
                                                 EstimatorOptions{}, &base);

  std::string other_scope;
  PrefixCheckpointStore::AppendGlobalFingerprint("t", kCluster, kSched,
                                                 EstimatorOptions{},
                                                 &other_scope);
  EXPECT_NE(base, other_scope);

  ClusterSpec bigger = kCluster;
  bigger.num_nodes += 1;
  std::string other_cluster;
  PrefixCheckpointStore::AppendGlobalFingerprint("s", bigger, kSched,
                                                 EstimatorOptions{},
                                                 &other_cluster);
  EXPECT_NE(base, other_cluster);

  EstimatorOptions skew;
  skew.skew_aware = true;
  std::string other_options;
  PrefixCheckpointStore::AppendGlobalFingerprint("s", kCluster, kSched, skew,
                                                 &other_options);
  EXPECT_NE(base, other_options);

  // max_states and budget only bound how far an estimate gets — they are
  // deliberately NOT part of the key.
  EstimatorOptions bounded;
  bounded.max_states = 7;
  std::string same;
  PrefixCheckpointStore::AppendGlobalFingerprint("s", kCluster, kSched, bounded,
                                                 &same);
  EXPECT_EQ(base, same);
}

}  // namespace
}  // namespace dagperf
