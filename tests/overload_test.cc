// Overload-resilience tests: the CoDel-style OverloadController's interval
// semantics (driven with explicit clocks, so every transition is
// deterministic), the DRF fair-share TenantRegistry, the service's brownout
// ladder (shed / degrade / state-cap behaviour at forced levels), and the
// wire-visible surface (tenant field, retry_after_ms hint, degraded flag,
// per-tenant stats).

#include "resilience/overload.h"

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "service/protocol.h"
#include "service/service.h"
#include "service/tenancy.h"
#include "workloads/suite.h"

// Parts of this file exercise the pre-0.8 submission API on purpose
// (deprecated shims must keep working until removal); silence the
// migration warnings the rest of the build is expected to emit.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace dagperf {
namespace {

using resilience::OverloadController;
using resilience::OverloadOptions;

OverloadOptions FastLadder() {
  OverloadOptions options;
  options.target_sojourn_ms = 50.0;
  options.interval_ms = 100.0;
  options.escalate_after = 3;
  options.recover_after = 5;
  options.max_level = 3;
  options.retry_after_floor_ms = 25.0;
  return options;
}

/// Feeds `closes` interval closes, each observing `sojourn_ms` both
/// mid-window and at the close, advancing a caller-owned clock one interval
/// per close. The observation that closes a window is recorded into the
/// *next* window (ObserveSojourn's semantics), so each closed window's
/// minimum is min(previous close's value, this call's mid-window value) —
/// with a constant value per streak that is exactly `sojourn_ms`, and on a
/// value switch the window straddling the switch takes the smaller side.
void FeedIntervals(OverloadController& controller, double sojourn_ms,
                   int closes, double* now_us) {
  const double step_us = controller.options().interval_ms * 1e3;
  for (int i = 0; i < closes; ++i) {
    controller.ObserveSojourn(sojourn_ms, *now_us + 1.0);
    *now_us += step_us;
    controller.ObserveSojourn(sojourn_ms, *now_us);
  }
}

TEST(OverloadControllerTest, EscalatesAfterConsecutiveBadIntervals) {
  OverloadController controller(FastLadder());
  double now_us = 1.0;
  controller.ObserveSojourn(100.0, now_us);  // Plants the first window.
  EXPECT_EQ(controller.level(), 0);

  FeedIntervals(controller, 100.0, 2, &now_us);
  EXPECT_EQ(controller.level(), 0) << "two bad intervals must not escalate";
  FeedIntervals(controller, 100.0, 1, &now_us);
  EXPECT_EQ(controller.level(), 1) << "third consecutive bad interval";

  // Each further escalate_after-run steps one more level, clamped at max.
  FeedIntervals(controller, 100.0, 3, &now_us);
  EXPECT_EQ(controller.level(), 2);
  FeedIntervals(controller, 100.0, 3, &now_us);
  EXPECT_EQ(controller.level(), 3);
  FeedIntervals(controller, 100.0, 6, &now_us);
  EXPECT_EQ(controller.level(), 3) << "ladder is clamped at max_level";

  const OverloadController::Stats stats = controller.stats();
  EXPECT_EQ(stats.escalations, 3u);
  EXPECT_EQ(stats.recoveries, 0u);
  EXPECT_EQ(stats.last_interval_min_ms, 100.0);
}

TEST(OverloadControllerTest, RecoversSlowerThanItEscalates) {
  OverloadController controller(FastLadder());
  double now_us = 1.0;
  controller.ObserveSojourn(100.0, now_us);
  FeedIntervals(controller, 100.0, 3, &now_us);
  ASSERT_EQ(controller.level(), 1);

  // recover_after = 5 > escalate_after = 3: four good intervals are not
  // enough, the fifth steps down.
  FeedIntervals(controller, 1.0, 4, &now_us);
  EXPECT_EQ(controller.level(), 1);
  FeedIntervals(controller, 1.0, 1, &now_us);
  EXPECT_EQ(controller.level(), 0);
  EXPECT_EQ(controller.stats().recoveries, 1u);

  // A good streak broken by one bad interval starts over. Back up to level 1
  // first (the switch window counts good, then three bad ones escalate)...
  FeedIntervals(controller, 100.0, 4, &now_us);
  ASSERT_EQ(controller.level(), 1);
  // ...then 3 good, a break (the first switch window is the 4th good, the
  // second is bad and resets the streak), then 4 more good: 8 good windows
  // in total but never 5 consecutive — no recovery.
  FeedIntervals(controller, 1.0, 3, &now_us);
  FeedIntervals(controller, 100.0, 2, &now_us);
  FeedIntervals(controller, 1.0, 4, &now_us);
  EXPECT_EQ(controller.level(), 1) << "bad interval must reset the good streak";
  EXPECT_EQ(controller.stats().recoveries, 1u);
}

TEST(OverloadControllerTest, MinimumSojournSeesThroughBursts) {
  // CoDel semantics: a queue that fully drains at least once per interval is
  // bursty, not overloaded — the interval *minimum* is what counts.
  OverloadController controller(FastLadder());
  double now_us = 1.0;
  for (int interval = 0; interval < 10; ++interval) {
    controller.ObserveSojourn(500.0, now_us + 1.0);  // Burst spike...
    controller.ObserveSojourn(1.0, now_us + 2.0);    // ...but it drains.
    now_us += controller.options().interval_ms * 1e3;
    controller.ObserveSojourn(500.0, now_us);
  }
  EXPECT_EQ(controller.level(), 0);
}

TEST(OverloadControllerTest, QuietGapsCarryNoSignal) {
  // An idle stretch is unmeasured, not "good": two bad intervals separated
  // by a long quiet gap still form a streak, and a gap never recovers the
  // ladder on its own.
  OverloadController controller(FastLadder());
  double now_us = 1.0;
  controller.ObserveSojourn(100.0, now_us);
  FeedIntervals(controller, 100.0, 2, &now_us);
  ASSERT_EQ(controller.level(), 0);
  now_us += 1e9;  // ~10k empty intervals.
  controller.ObserveSojourn(100.0, now_us);
  EXPECT_EQ(controller.level(), 1)
      << "the streak must survive the unmeasured gap";
  now_us += 1e9;
  controller.ObserveSojourn(100.0, now_us);
  EXPECT_EQ(controller.level(), 1) << "a gap alone must not recover either";
}

TEST(OverloadControllerTest, ShedPolicyMatrix) {
  OverloadController controller(FastLadder());
  const bool kWarm = true, kCold = false;
  const bool kExpensive = true, kCheap = false;

  controller.ForceLevelForTest(0);
  EXPECT_FALSE(controller.ShouldShed(kCold, kExpensive));
  EXPECT_FALSE(controller.ShouldShed(kCold, kCheap));

  for (int level = 1; level <= 2; ++level) {
    controller.ForceLevelForTest(level);
    EXPECT_TRUE(controller.ShouldShed(kCold, kExpensive)) << level;
    EXPECT_FALSE(controller.ShouldShed(kCold, kCheap)) << level;
    EXPECT_FALSE(controller.ShouldShed(kWarm, kExpensive)) << level;
  }

  controller.ForceLevelForTest(3);
  EXPECT_TRUE(controller.ShouldShed(kCold, kCheap)) << "brownout: warm-only";
  EXPECT_FALSE(controller.ShouldShed(kWarm, kExpensive))
      << "warm work is never shed at any level";
}

TEST(OverloadControllerTest, RetryHintDoublesPerLevel) {
  OverloadController controller(FastLadder());
  controller.ForceLevelForTest(1);
  EXPECT_EQ(controller.RetryAfterMs(), 50.0);
  controller.ForceLevelForTest(2);
  EXPECT_EQ(controller.RetryAfterMs(), 100.0);
  controller.ForceLevelForTest(3);
  EXPECT_EQ(controller.RetryAfterMs(), 200.0);
}

TEST(OverloadControllerTest, TransitionCallbackSeesEveryStep) {
  OverloadController controller(FastLadder());
  std::vector<std::pair<int, int>> transitions;
  controller.SetTransitionCallback(
      [&](int from, int to) { transitions.emplace_back(from, to); });

  double now_us = 1.0;
  controller.ObserveSojourn(100.0, now_us);
  FeedIntervals(controller, 100.0, 6, &now_us);  // 0 -> 1 -> 2.
  FeedIntervals(controller, 1.0, 5, &now_us);    // 2 -> 1.
  const std::vector<std::pair<int, int>> want = {{0, 1}, {1, 2}, {2, 1}};
  EXPECT_EQ(transitions, want);
}

TEST(OverloadControllerTest, ForcedLevelSuspendsTheSignal) {
  OverloadController controller(FastLadder());
  controller.ForceLevelForTest(2);
  double now_us = 1.0;
  controller.ObserveSojourn(1.0, now_us);
  FeedIntervals(controller, 1.0, 20, &now_us);
  EXPECT_EQ(controller.level(), 2) << "forced level ignores good intervals";
  FeedIntervals(controller, 100.0, 20, &now_us);
  EXPECT_EQ(controller.level(), 2) << "and bad ones";

  controller.ForceLevelForTest(-1);  // Hand control back to the signal.
  FeedIntervals(controller, 1.0, 5, &now_us);
  EXPECT_EQ(controller.level(), 1);
  FeedIntervals(controller, 1.0, 5, &now_us);
  EXPECT_EQ(controller.level(), 0);
}

TEST(TenantRegistryTest, CanonicalMapsEmptyToDefault) {
  EXPECT_EQ(TenantRegistry::Canonical(""), "default");
  EXPECT_EQ(TenantRegistry::Canonical("alice"), "alice");
}

TEST(TenantRegistryTest, SoleTenantMayFillTheWholeQueue) {
  TenantRegistry::Options options;
  options.capacity_slots = 4;
  TenantRegistry registry(options);

  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(registry.Admit("solo").ok()) << "slot " << i;
  }
  const Status fifth = registry.Admit("solo");
  ASSERT_FALSE(fifth.ok());
  EXPECT_EQ(fifth.code(), ErrorCode::kResourceExhausted);
  EXPECT_TRUE(IsRetryable(fifth.code()));
  EXPECT_NE(fifth.message().find("fair share"), std::string::npos)
      << fifth.message();

  const std::vector<TenantRegistry::TenantStats> stats = registry.Stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].name, "solo");
  EXPECT_EQ(stats[0].queued, 4);
  EXPECT_EQ(stats[0].submitted, 5u);  // Arrivals, including the shed one.
  EXPECT_EQ(stats[0].shed_total, 1u);
}

TEST(TenantRegistryTest, RollbackReturnsTheQueuedSlot) {
  TenantRegistry::Options options;
  options.capacity_slots = 2;
  TenantRegistry registry(options);
  ASSERT_TRUE(registry.Admit("t").ok());
  ASSERT_TRUE(registry.Admit("t").ok());
  ASSERT_FALSE(registry.Admit("t").ok());
  registry.OnAdmitRollback("t");
  EXPECT_TRUE(registry.Admit("t").ok());
}

TEST(TenantRegistryTest, LightTenantAdmitsPastASaturatedHeavyOne) {
  TenantRegistry::Options options;
  options.capacity_slots = 4;
  TenantRegistry registry(options);

  // "heavy" floods until its fair share rejects it...
  int admitted = 0;
  while (admitted < 16 && registry.Admit("heavy").ok()) ++admitted;
  ASSERT_GE(admitted, 1);
  ASSERT_FALSE(registry.Admit("heavy").ok());
  // ...and "light"'s first request still fits inside its own share.
  EXPECT_TRUE(registry.Admit("light").ok());
}

TEST(TenantRegistryTest, OutcomeAndCostAccounting) {
  TenantRegistry::Options options;
  options.ema_alpha = 1.0;  // EMA == last observation, easy to assert.
  TenantRegistry registry(options);

  ASSERT_TRUE(registry.Admit("t").ok());
  registry.OnExecuteStart("t");
  registry.OnDone("t", /*ok=*/true, /*cpu_ms=*/100.0);
  ASSERT_TRUE(registry.Admit("t").ok());
  registry.OnExecuteStart("t");
  registry.OnDone("t", /*ok=*/false, /*cpu_ms=*/20.0);
  registry.OnShed("t");

  const std::vector<TenantRegistry::TenantStats> stats = registry.Stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].inflight, 0);
  EXPECT_EQ(stats[0].queued, 0);
  EXPECT_EQ(stats[0].completed, 1u);
  EXPECT_EQ(stats[0].failed, 1u);
  EXPECT_EQ(stats[0].shed_total, 1u);
  EXPECT_EQ(stats[0].cpu_ms, 120.0);
  EXPECT_EQ(stats[0].ema_cost_ms, 20.0);
}

TEST(TenantRegistryTest, ExpensiveTenantGetsFewerSlotsThanCheapOne) {
  // DRF prices admission in two resources: queue slots and expected cpu-ms.
  // A tenant whose EMA cost is 100x another's has cpu-ms as its dominant
  // resource and must be capped below the full queue while the cheap
  // tenant's next request still fits.
  TenantRegistry::Options options;
  options.capacity_slots = 4;
  options.ema_alpha = 1.0;
  TenantRegistry registry(options);

  ASSERT_TRUE(registry.Admit("spender").ok());
  registry.OnExecuteStart("spender");
  registry.OnDone("spender", true, 100.0);
  ASSERT_TRUE(registry.Admit("frugal").ok());
  registry.OnExecuteStart("frugal");
  registry.OnDone("frugal", true, 1.0);

  // frugal holds one queued slot while spender floods.
  ASSERT_TRUE(registry.Admit("frugal").ok());
  int admitted = 0;
  while (admitted < 4 && registry.Admit("spender").ok()) ++admitted;
  EXPECT_GE(admitted, 1);
  EXPECT_LT(admitted, 3) << "a 100x-cost tenant must not take "
                            "a cheap tenant's share of the queue";
  EXPECT_TRUE(registry.Admit("frugal").ok())
      << "the cheap tenant must still be admitted";
}

DagWorkflow TestFlow() {
  Result<NamedFlow> named = TableThreeFlow("TS-Q6", 0.01);
  EXPECT_TRUE(named.ok()) << named.status().ToString();
  return std::move(named).value().flow;
}

/// Service armed with the overload controller (target > 0) whose every flow
/// classifies as expensive unless stated otherwise.
ServiceOptions ArmedOptions() {
  ServiceOptions options;
  options.overload_target_sojourn_ms = 50.0;
  options.expensive_job_threshold = 1;
  return options;
}

TEST(ServiceBrownoutTest, ColdExpensiveWorkIsShedWithRetryHint) {
  EstimationService service(ArmedOptions());
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());
  ASSERT_NE(service.overload_controller(), nullptr);
  service.overload_controller()->ForceLevelForTest(1);

  ServiceRequest request;
  request.workflow = "q6";
  Result<WorkflowEstimate> shed = service.Submit(std::move(request)).get();
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), ErrorCode::kResourceExhausted);
  EXPECT_TRUE(IsRetryable(shed.status().code()));
  EXPECT_GT(shed.status().retry_after_ms(), 0.0);

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.overload_level, 1);
  EXPECT_GE(stats.overload_shed, 1u);
  EXPECT_GE(stats.shed, 1u);
}

TEST(ServiceBrownoutTest, WarmWorkIsServedDegradedWithoutAttribution) {
  EstimationService service(ArmedOptions());
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());
  OverloadController* controller = service.overload_controller();
  ASSERT_NE(controller, nullptr);

  // Serve once healthy: warms the (workflow, nodes) key and proves explain
  // normally fills the critical path.
  controller->ForceLevelForTest(0);
  ServiceRequest warmup;
  warmup.workflow = "q6";
  warmup.explain = true;
  Result<WorkflowEstimate> healthy = service.Submit(std::move(warmup)).get();
  ASSERT_TRUE(healthy.ok());
  EXPECT_FALSE(healthy.value().degraded);
  EXPECT_FALSE(healthy.value().critical_path.empty());

  // Under pressure the same request is warm: served, but degraded — no
  // attribution work is spent on it.
  controller->ForceLevelForTest(1);
  ServiceRequest again;
  again.workflow = "q6";
  again.explain = true;
  Result<WorkflowEstimate> degraded = service.Submit(std::move(again)).get();
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded.value().degraded);
  EXPECT_EQ(degraded.value().degrade_level, 1);
  EXPECT_TRUE(degraded.value().critical_path.empty());
}

TEST(ServiceBrownoutTest, FullBrownoutShedsEverythingCold) {
  ServiceOptions options = ArmedOptions();
  options.expensive_job_threshold = 1000;  // Everything classifies cheap...
  EstimationService service(options);
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());
  service.overload_controller()->ForceLevelForTest(3);

  ServiceRequest request;
  request.workflow = "q6";
  Result<WorkflowEstimate> shed = service.Submit(std::move(request)).get();
  ASSERT_FALSE(shed.ok()) << "...but level 3 sheds even cheap cold work";
  EXPECT_EQ(shed.status().code(), ErrorCode::kResourceExhausted);
  EXPECT_GT(shed.status().retry_after_ms(), 0.0);
}

TEST(ServiceBrownoutTest, StateCapFailuresAreRewrittenRetryable) {
  ServiceOptions options = ArmedOptions();
  options.expensive_job_threshold = 1000;  // Admit it (cheap at level 2)...
  options.brownout_max_states = 1;         // ...then hit the brownout cap.
  EstimationService service(options);
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());
  service.overload_controller()->ForceLevelForTest(2);

  ServiceRequest request;
  request.workflow = "q6";
  Result<WorkflowEstimate> capped = service.Submit(std::move(request)).get();
  ASSERT_FALSE(capped.ok());
  // Under brownout the estimator's state-limit trip is the service's own
  // doing, so it must surface as retryable pushback, not INTERNAL.
  EXPECT_EQ(capped.status().code(), ErrorCode::kResourceExhausted);
  EXPECT_TRUE(IsRetryable(capped.status().code()));
  EXPECT_GT(capped.status().retry_after_ms(), 0.0);
  EXPECT_NE(capped.status().message().find("brownout"), std::string::npos)
      << capped.status().message();
}

TEST(ServiceBrownoutTest, PerTenantStatsFlowThroughService) {
  EstimationService service;
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());

  ServiceRequest request;
  request.workflow = "q6";
  request.tenant = "alice";
  ASSERT_TRUE(service.Submit(std::move(request)).get().ok());
  ServiceRequest anon;
  anon.workflow = "q6";
  ASSERT_TRUE(service.Submit(std::move(anon)).get().ok());

  const ServiceStats stats = service.Stats();
  ASSERT_EQ(stats.tenants.size(), 2u);  // Name-ordered: alice, default.
  EXPECT_EQ(stats.tenants[0].name, "alice");
  EXPECT_EQ(stats.tenants[0].completed, 1u);
  EXPECT_EQ(stats.tenants[0].inflight, 0);
  EXPECT_EQ(stats.tenants[0].queued, 0);
  EXPECT_GT(stats.tenants[0].ema_cost_ms, 0.0);
  EXPECT_EQ(stats.tenants[1].name, "default");
  EXPECT_EQ(stats.tenants[1].completed, 1u);
}

TEST(ProtocolOverloadTest, TenantAndOverloadReachTheStatsVerb) {
  EstimationService service;
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());
  Protocol protocol(&service);

  Result<Json> served = Json::Parse(protocol.HandleLine(
      R"({"op":"estimate","workflow":"q6","tenant":"alice","id":1})"));
  ASSERT_TRUE(served.ok());
  EXPECT_TRUE(served.value().GetBool("ok", false));

  const std::string stats = protocol.HandleLine(R"({"op":"stats"})");
  EXPECT_NE(stats.find("\"tenants\""), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"alice\""), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"overload\""), std::string::npos) << stats;
}

TEST(ProtocolOverloadTest, ShedResponsesCarryTheRetryHint) {
  EstimationService service(ArmedOptions());
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());
  service.overload_controller()->ForceLevelForTest(3);
  Protocol protocol(&service);

  Result<Json> parsed = Json::Parse(
      protocol.HandleLine(R"({"op":"estimate","workflow":"q6","id":2})"));
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed.value().GetBool("ok", true));
  const Json* error = parsed.value().Get("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->GetString("code", ""), "RESOURCE_EXHAUSTED");
  EXPECT_TRUE(error->GetBool("retryable", false));
  EXPECT_GT(error->GetNumber("retry_after_ms", 0.0), 0.0);
}

TEST(ProtocolOverloadTest, DegradedAnswersAreTaggedOnTheWire) {
  EstimationService service(ArmedOptions());
  ASSERT_TRUE(service.RegisterWorkflow("q6", TestFlow()).ok());
  OverloadController* controller = service.overload_controller();
  Protocol protocol(&service);

  controller->ForceLevelForTest(0);
  Result<Json> healthy = Json::Parse(
      protocol.HandleLine(R"({"op":"estimate","workflow":"q6","id":3})"));
  ASSERT_TRUE(healthy.ok());
  ASSERT_TRUE(healthy.value().GetBool("ok", false));
  EXPECT_FALSE(healthy.value().Get("result")->GetBool("degraded", false));

  controller->ForceLevelForTest(1);
  Result<Json> degraded = Json::Parse(
      protocol.HandleLine(R"({"op":"estimate","workflow":"q6","id":4})"));
  ASSERT_TRUE(degraded.ok());
  ASSERT_TRUE(degraded.value().GetBool("ok", false)) << "warm -> still served";
  const Json* result = degraded.value().Get("result");
  ASSERT_NE(result, nullptr);
  EXPECT_TRUE(result->GetBool("degraded", false));
  EXPECT_GE(result->GetNumber("degrade_level", 0.0), 1.0);
}

}  // namespace
}  // namespace dagperf
